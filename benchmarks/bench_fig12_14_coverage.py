"""Figures 12-14: runtime coverage of reduction regions.

Executes every corpus program through the interpreter (the expensive
part this harness times) and regenerates the coverage panels plus the
§6.2 headline numbers (mean histogram coverage ≈ 68%; EP ≈ 46%; sgemm
as the scalar exception).
"""

import pytest

from conftest import write_artifact
from repro.evaluation.coverage import run_coverage, summary_against_paper


_RESULTS = {}


@pytest.mark.parametrize(
    "suite_name,figure",
    [("NAS", "fig12"), ("Parboil", "fig13"), ("Rodinia", "fig14")],
)
def test_coverage_panel(benchmark, suite_name, figure):
    result = benchmark.pedantic(
        run_coverage, args=(suite_name,), rounds=1, iterations=1
    )
    _RESULTS[suite_name] = result
    text = result.render() + "\n\n" + result.render_bars()
    print()
    print(write_artifact(f"{figure}_{suite_name.lower()}.txt", text))
    histogram_rows = [r for r in result.rows if r.histogram_coverage > 0]
    expected = {"NAS": 3, "Parboil": 2, "Rodinia": 1}[suite_name]
    assert len(histogram_rows) == expected


def test_coverage_headlines(benchmark):
    assert len(_RESULTS) == 3, "run the panels first"
    text = benchmark.pedantic(
        summary_against_paper, args=(_RESULTS,), rounds=1, iterations=1
    )
    print()
    print(write_artifact("fig12_14_totals.txt", text))
    rows = [
        r
        for result in _RESULTS.values()
        for r in result.rows
        if r.histogram_coverage > 0
    ]
    mean = sum(r.histogram_coverage for r in rows) / len(rows)
    # Paper: 68% average histogram coverage; shapes must agree.
    assert 0.55 < mean < 0.85
    ep = next(r for r in _RESULTS["NAS"].rows if r.benchmark == "EP")
    assert 0.3 < ep.histogram_coverage < 0.6  # paper: 46%
    sgemm = next(
        r for r in _RESULTS["Parboil"].rows if r.benchmark == "sgemm"
    )
    assert sgemm.scalar_coverage > 0.5  # the §6.2 exception
