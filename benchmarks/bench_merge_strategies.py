"""Ablation: histogram merge strategy (§4 vs §6.3's smarter codegen).

The paper's generated code privatizes the histogram per thread and
merges element-wise; §6.3 observes that IS's original version instead
distributes keys into disjoint bins ("a smarter code generation
approach could narrow this gap").  This harness compares, on the IS
measurements, the simulated time of:

* privatize+merge (our §4 scheme) across thread counts,
* bucketed two-pass distribution (no merge),
* atomic updates (no privatization).
"""

from conftest import write_artifact
from repro.evaluation.render import table
from repro.evaluation.speedup import evaluate_benchmark
from repro.idioms import find_reductions
from repro.runtime import Interpreter, MachineModel, Memory, ParallelExecutor
from repro.transform import outline_loop, plan_all
from repro.workloads import program


def test_merge_strategy_ablation(benchmark):
    def measure():
        bench = program("IS")
        module = bench.fresh_module()
        report = find_reductions(module)
        tasks = []
        for function_reductions in report.functions:
            plans, _ = plan_all(module, function_reductions)
            tasks.extend(outline_loop(module, plan) for plan in plans)
        memory = Memory(module)
        interp = Interpreter(module, memory)
        interp.call(module.get_function("main"), [])
        t_seq = interp.instructions_executed
        executor = ParallelExecutor(module, tasks, threads=64)
        result = executor.run()
        return t_seq, result

    t_seq, result = benchmark.pedantic(measure, rounds=1, iterations=1)
    machine = MachineModel()
    rows = []
    for threads in (8, 16, 32, 64):
        # Re-scale the measured shard costs for the thread count.
        privatized = result.sequential_cost
        bucketed = result.sequential_cost
        atomic = result.sequential_cost
        for record in result.regions:
            work = record.total_work()
            privatized += (
                work / threads
                + machine.spawn_path_cost(threads)
                + machine.alloc_path_cost(threads, record.private_elements)
                + machine.merge_path_cost(threads, record.private_elements)
            )
            bucketed += (
                2 * work / threads + machine.spawn_path_cost(threads)
            )
            atomic += (
                work / threads
                + record.iterations * machine.atomic_update_cost
            )
        rows.append([
            threads,
            f"{t_seq / privatized:.2f}x",
            f"{t_seq / bucketed:.2f}x",
            f"{t_seq / atomic:.2f}x",
        ])
    text = table(
        ["threads", "privatize+merge (§4)", "bucketed (IS original)",
         "atomic"],
        rows,
        title="Merge strategy ablation on IS",
    )
    print()
    print(write_artifact("ablation_merge_strategies.txt", text))
    # The gap §6.3 describes: bucketing beats privatization on IS.
    last = rows[-1]
    assert float(last[2].rstrip("x")) > float(last[1].rstrip("x"))
