"""Gateway benchmark: multi-client latency and admission control.

Scenario, recorded in ``results/BENCH_gateway.json``: one gateway
(two persistent workers, function granularity, a deliberately small
admission budget) under a deterministic multi-client load —

* a **saturating batch client** that keeps two corpus chunks in
  flight at all times; every admission past its budget is answered
  with a structured reject-plus-retry-after frame, which the client
  honours as backoff (the backpressure loop the gateway exists for);
* two **interactive clients** on their own connections (and so their
  own admission budgets), each submitting single-program
  ``interactive``-class requests back to back and measuring
  submit-to-report latency.

Acceptance bars:

* every interactive report is digest-identical to the serial
  ``detect_corpus(jobs=1)`` reference — the socket never perturbs a
  result, under contention included;
* admission control demonstrably fired: at least one rejection, every
  rejection carrying ``retry_after > 0``;
* the saturated batch client still made progress (completed chunks);
* interactive p99 latency stays bounded while the batch client
  saturates the pool — the stride scheduler's 4:1 interactive weight
  seen from the wire.
"""

import json
import threading
import time

from conftest import write_artifact
from repro.evaluation.render import table
from repro.pipeline import (
    GatewayClient,
    GatewayRejected,
    GatewayServer,
    PipelineOptions,
    detect_corpus,
)
from repro.workloads import corpus_keys

KEYS = corpus_keys()

BATCH_CHUNK = 6       # programs per batch request
BATCH_IN_FLIGHT = 2   # chunks the batch client tries to keep pending
INTERACTIVE_CLIENTS = 2
INTERACTIVE_REQUESTS = 8  # per client
BUDGET = 48           # pending-unit budget: ~1.5 chunks at function
                      # granularity, so the second in-flight chunk
                      # rides the idle-admission rule and the *third*
                      # submit is rejected — admission fires by design


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = max(0, min(len(ordered) - 1,
                       round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _batch_worker(port, stop, record):
    """Keep BATCH_IN_FLIGHT chunks pending; honour reject backoff."""
    with GatewayClient(port=port, timeout=600.0) as client:
        pending = []
        chunk = 0
        while not stop.is_set():
            if len(pending) < BATCH_IN_FLIGHT:
                base = (chunk * BATCH_CHUNK) % len(KEYS)
                keys = [KEYS[(base + i) % len(KEYS)]
                        for i in range(BATCH_CHUNK)]
                try:
                    started = time.perf_counter()
                    pending.append(
                        (client.submit(keys=keys), started)
                    )
                    chunk += 1
                    continue
                except GatewayRejected as exc:
                    record["rejections"].append(exc.retry_after)
                    time.sleep(min(exc.retry_after, 0.5))
            if pending:
                request, started = pending.pop(0)
                report = client.result(request)
                record["latencies"].append(
                    time.perf_counter() - started
                )
                record["programs"] += len(report.programs)
        for request, started in pending:
            report = client.result(request)
            record["latencies"].append(time.perf_counter() - started)
            record["programs"] += len(report.programs)


def _interactive_worker(port, offset, record, serial_by_key):
    """Single-program interactive requests, submit-to-report timed."""
    with GatewayClient(port=port, timeout=600.0) as client:
        for i in range(INTERACTIVE_REQUESTS):
            key = KEYS[(offset + i * 3) % len(KEYS)]
            started = time.perf_counter()
            request = client.submit(keys=[key], priority="interactive")
            report = client.result(request)
            record["latencies"].append(time.perf_counter() - started)
            record["programs"] += len(report.programs)
            if report.programs != (serial_by_key[key],):
                record["mismatches"].append(key)


def test_gateway_multi_client_latency_and_admission():
    serial = detect_corpus(jobs=1)
    serial_by_key = {p.key: p for p in serial.programs}

    options = PipelineOptions(jobs=2, granularity="function")
    batch_record = {"latencies": [], "rejections": [], "programs": 0}
    interactive_records = [
        {"latencies": [], "programs": 0, "mismatches": []}
        for _ in range(INTERACTIVE_CLIENTS)
    ]
    with GatewayServer(options, port=0, budget=BUDGET) as server:
        stop = threading.Event()
        batch_thread = threading.Thread(
            target=_batch_worker,
            args=(server.port, stop, batch_record),
            daemon=True,
        )
        started = time.perf_counter()
        batch_thread.start()
        interactive_threads = [
            threading.Thread(
                target=_interactive_worker,
                args=(server.port, 7 + 11 * i, record, serial_by_key),
                daemon=True,
            )
            for i, record in enumerate(interactive_records)
        ]
        for thread in interactive_threads:
            thread.start()
        for thread in interactive_threads:
            thread.join(timeout=600)
            assert not thread.is_alive(), "interactive client hung"
        interactive_window = time.perf_counter() - started
        stop.set()
        batch_thread.join(timeout=600)
        assert not batch_thread.is_alive(), "batch client hung"
        elapsed = time.perf_counter() - started
        assert server.queued_units() == 0
        stats = server.stats
        gateway_gap = server.engine.mean_dispatch_gap()
        gateway_gap_samples = server.engine.idle_samples

    # Served results are byte-trustworthy under contention.
    for record in interactive_records:
        assert record["mismatches"] == []
    # Admission control fired, and every reject carried a usable hint.
    assert stats["rejections"] >= 1
    assert batch_record["rejections"]
    assert all(hint > 0 for hint in batch_record["rejections"])
    # The saturated batch client still made progress.
    assert batch_record["programs"] >= BATCH_CHUNK
    # Interactive latency stayed bounded while batch saturated the
    # pool (generous absolute bar: this is a correctness-of-shape
    # bound for CI, the recorded numbers carry the real story).
    interactive_latencies = [
        latency
        for record in interactive_records
        for latency in record["latencies"]
    ]
    interactive_p99 = _percentile(interactive_latencies, 0.99)
    assert interactive_p99 < 60.0

    interactive_programs = sum(
        record["programs"] for record in interactive_records
    )

    # Worker dispatch gap A/B: the same load shape served with strict
    # depth-one dispatch versus the default one-unit prefetch window.
    # The gap is worker-side idle between consecutive units — the
    # supervisor round-trip prefetching exists to hide; reports must
    # be fingerprint-identical either way.
    ab = {}
    ab_fingerprints = set()
    from repro.pipeline import ServingEngine

    for label, prefetch in (("depth_one", 0), ("prefetch", 1)):
        ab_options = PipelineOptions(
            jobs=2, granularity="function", prefetch_units=prefetch
        )
        with ServingEngine(ab_options) as engine:
            ab_started = time.perf_counter()
            report = engine.serve(KEYS[:12])
            ab[label] = {
                "prefetch_units": prefetch,
                "mean_gap_s": round(engine.mean_dispatch_gap(), 6),
                "gap_samples": engine.idle_samples,
                "wall_s": round(time.perf_counter() - ab_started, 3),
            }
            ab_fingerprints.add(report.fingerprint())
    assert len(ab_fingerprints) == 1, (
        "prefetch changed a report fingerprint"
    )
    # Correctness-of-shape bound for CI (0.5 ms noise allowance); the
    # recorded numbers carry the real comparison.
    assert (ab["prefetch"]["mean_gap_s"]
            <= ab["depth_one"]["mean_gap_s"] + 0.0005), (
        "prefetch did not shrink the dispatch gap"
    )
    payload = {
        "workers": options.jobs,
        "granularity": options.granularity,
        "budget_units": BUDGET,
        "batch": {
            "clients": 1,
            "chunk_programs": BATCH_CHUNK,
            "target_in_flight": BATCH_IN_FLIGHT,
            "requests_completed": len(batch_record["latencies"]),
            "programs": batch_record["programs"],
            "p50_s": round(_percentile(batch_record["latencies"], 0.5), 4)
            if batch_record["latencies"] else None,
            "p99_s": round(_percentile(batch_record["latencies"], 0.99), 4)
            if batch_record["latencies"] else None,
            "throughput_programs_per_s": round(
                batch_record["programs"] / elapsed, 3
            ),
        },
        "interactive": {
            "clients": INTERACTIVE_CLIENTS,
            "requests_per_client": INTERACTIVE_REQUESTS,
            "programs": interactive_programs,
            "p50_s": round(
                _percentile(interactive_latencies, 0.5), 4
            ),
            "p99_s": round(interactive_p99, 4),
            "throughput_programs_per_s": round(
                interactive_programs / interactive_window, 3
            ),
        },
        "admission": {
            "rejections": stats["rejections"],
            "retry_after_min_s": round(
                min(batch_record["rejections"]), 4
            ),
            "retry_after_max_s": round(
                max(batch_record["rejections"]), 4
            ),
        },
        "dispatch": {
            "prefetch_units": options.prefetch_units,
            "mean_gap_s": round(gateway_gap, 6),
            "gap_samples": gateway_gap_samples,
            "ab": ab,
            "ab_reports_fingerprint_identical": True,
        },
        "server_stats": stats,
        "interactive_reports_identical_to_serial": True,
        "elapsed_s": round(elapsed, 2),
    }
    write_artifact("BENCH_gateway.json", json.dumps(payload, indent=2))

    rows = [
        [
            "interactive",
            INTERACTIVE_CLIENTS,
            len(interactive_latencies),
            f"{payload['interactive']['p50_s']:.3f}",
            f"{payload['interactive']['p99_s']:.3f}",
            f"{payload['interactive']['throughput_programs_per_s']:.2f}",
        ],
        [
            "batch",
            1,
            len(batch_record["latencies"]),
            f"{payload['batch']['p50_s']:.3f}",
            f"{payload['batch']['p99_s']:.3f}",
            f"{payload['batch']['throughput_programs_per_s']:.2f}",
        ],
    ]
    text = table(
        ["class", "clients", "requests", "p50 s", "p99 s",
         "programs/s"],
        rows,
        title=(
            f"gateway under load: {stats['rejections']} admission "
            f"rejection(s), retry-after "
            f"{payload['admission']['retry_after_min_s']}–"
            f"{payload['admission']['retry_after_max_s']}s, "
            f"budget {BUDGET} units"
        ),
    )
    print()
    print(write_artifact("bench_gateway.txt", text))
