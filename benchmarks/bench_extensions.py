"""Extension idioms over the corpus (§8 future work).

Measures what the additional constraint programs recover beyond the
paper's evaluation: most notably the two mid-nest ``rms`` array
reductions (BT and SP) that §6.1 reports as found only manually/by
Polly, now detected by the nested-array-reduction spec — without
changing any Figure 8 count.
"""

from conftest import write_artifact
from repro.evaluation.render import table
from repro.idioms import find_extended_reductions, find_reductions
from repro.workloads import all_programs


def test_extensions_over_corpus(benchmark):
    def run():
        rows = []
        for prog in all_programs():
            module = prog.compile()
            extended = find_extended_reductions(module)
            if (extended.dot_products or extended.argminmax
                    or extended.nested_array):
                rows.append([
                    f"{prog.suite}/{prog.name}",
                    len(extended.dot_products),
                    len(extended.argminmax),
                    len(extended.nested_array),
                ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(
        ["benchmark", "dot products", "argmin/argmax", "nested array"],
        rows,
        title="§8 extension idioms over the corpus",
    )
    print()
    print(write_artifact("extensions_corpus.txt", text))

    nested = {row[0]: row[3] for row in rows if row[3]}
    # The two rms-style norms of §6.1, recovered.
    assert nested.get("NAS/BT") == 1
    assert nested.get("NAS/SP") == 1

    # Base counts are untouched: Figure 8 stays paper-exact.
    for prog in all_programs():
        scalars, histograms = find_reductions(prog.compile()).counts()
        assert scalars == prog.expectation.ours_scalars
        assert histograms == prog.expectation.ours_histograms
