"""Figures 9-11: SCoPs found by the Polly baseline per benchmark."""

import pytest

from conftest import write_artifact
from repro.evaluation.scops import (
    run_all_scops,
    run_scops,
    summary_against_paper,
)


@pytest.mark.parametrize(
    "suite_name,figure",
    [("NAS", "fig9"), ("Parboil", "fig10"), ("Rodinia", "fig11")],
)
def test_scop_panel(benchmark, suite_name, figure):
    result = benchmark.pedantic(
        run_scops, args=(suite_name,), rounds=1, iterations=1
    )
    assert all(row.expected_ok for row in result.rows)
    text = result.render()
    print()
    print(write_artifact(f"{figure}_{suite_name.lower()}.txt", text))


def test_scop_statistics(benchmark):
    results = benchmark.pedantic(run_all_scops, rounds=1, iterations=1)
    total = sum(r.total_scops for r in results.values())
    zero = sum(r.zero_scop_programs for r in results.values())
    assert total == 62
    assert zero == 23
    text = summary_against_paper(results)
    print()
    print(write_artifact("fig9_11_totals.txt", text))
