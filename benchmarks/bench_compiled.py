"""Compiled-engine micro-benchmark: flat plans vs the interpreter.

The PR-7 acceptance measurement, recorded under ``compiled_engine`` in
``results/BENCH_pipeline.json``:

* **differential**: on every function of the 40-program corpus, every
  shipped spec's compiled detection equals the interpreted oracle's —
  the identical solution list — and the eval accounting reconciles
  (``interpreted.constraint_evals == compiled.constraint_evals +
  compiled.evals_pruned``);
* **fingerprints**: a compiled-engine corpus report is
  detection-fingerprint-identical to the naive reference
  ``detect_corpus(jobs=1, shared_cache=False, engine="interpreted")``;
* **speedup**: corpus-wide detection wall-clock, compiled/shared vs
  interpreted/per-call (the PR-1 baseline).  Legs are interleaved
  round by round and the per-round ratio's **median** is reported —
  legs inside one round share machine conditions, so the ratio is
  robust to load swings that wreck absolute best-of-N timings.  The
  acceptance bar is ≥ 5x (``REPRO_MIN_SOLVER_SPEEDUP`` overrides for
  noisy CI runners; the recorded number carries the real story), and
  the compiled engine must never be slower in any single round.
"""

import json
import os
import statistics
import time

from conftest import RESULTS_DIR, write_artifact
from repro.constraints import (
    SharedSolverCache,
    SolverContext,
    SolverStats,
    detect,
)
from repro.constraints.plan import compile_plan
from repro.evaluation.render import table
from repro.idioms import IdiomRegistry
from repro.pipeline import detect_corpus
from repro.workloads import corpus

#: Interleaved measurement rounds (median-of-rounds reported).
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "5"))

#: The asserted speedup floor, compiled/shared vs interpreted/per-call.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_SOLVER_SPEEDUP", "5.0"))

LEGS = (
    ("interpreted/per-call", "interpreted", False),
    ("interpreted/shared", "interpreted", True),
    ("compiled/shared", "compiled", True),
    ("compiled/per-call", "compiled", False),
)


def _corpus_contexts():
    """One solver context per defined function of the whole corpus."""
    contexts = []
    for program in corpus.all_programs():
        module = program.compile()
        for function in module.defined_functions():
            contexts.append(SolverContext(function, module))
    return contexts


def _run_leg(contexts, specs, engine, shared):
    """One corpus-wide detection pass; returns (wall, stats)."""
    stats = SolverStats()
    started = time.perf_counter()
    for ctx in contexts:
        cache = SharedSolverCache()
        for spec in specs:
            detect(ctx, spec, stats=stats,
                   cache=cache if shared else SharedSolverCache(),
                   engine=engine)
    return time.perf_counter() - started, stats


def test_compiled_engine_differential_and_speedup():
    registry = IdiomRegistry()
    specs = [registry.spec(name) for name in registry.names()]
    contexts = _corpus_contexts()
    for spec in specs:  # plan compilation is one-time, off the clock
        compile_plan(spec)

    # -- differential: every function, every spec, both engines ------
    mismatches = 0
    for ctx in contexts:
        for spec in specs:
            interpreted = detect(ctx, spec, cache=SharedSolverCache(),
                                 engine="interpreted")
            compiled = detect(ctx, spec, cache=SharedSolverCache(),
                              engine="compiled")
            if compiled != interpreted:
                mismatches += 1
    assert mismatches == 0

    # -- fingerprints: compiled report ≡ the naive reference ----------
    reference = detect_corpus(jobs=1, shared_cache=False,
                              engine="interpreted")
    report = detect_corpus(jobs=1, engine="compiled")
    assert report.fingerprint(effort=False) == reference.fingerprint(
        effort=False
    )

    # -- interleaved wall-clock measurement ---------------------------
    _run_leg(contexts, specs, "compiled", True)  # warm the caches/JIT
    best: dict = {}
    stats_of: dict = {}
    ratios = []
    for _ in range(ROUNDS):
        walls = {}
        for label, engine, shared in LEGS:
            wall, stats = _run_leg(contexts, specs, engine, shared)
            walls[label] = wall
            stats_of[label] = stats
            if label not in best or wall < best[label]:
                best[label] = wall
        # The compiled path is never slower, in any single round.
        assert walls["compiled/shared"] <= walls["interpreted/per-call"]
        assert walls["compiled/shared"] <= walls["interpreted/shared"]
        ratios.append(
            walls["interpreted/per-call"] / walls["compiled/shared"]
        )
    speedup = statistics.median(ratios)
    assert speedup >= MIN_SPEEDUP, (
        f"compiled engine {speedup:.2f}x < {MIN_SPEEDUP}x floor "
        f"(round ratios: {[round(r, 2) for r in ratios]})"
    )

    # -- eval accounting reconciles across engines --------------------
    interp = stats_of["interpreted/per-call"]
    comp = stats_of["compiled/per-call"]
    assert (comp.constraint_evals + comp.evals_pruned
            == interp.constraint_evals)
    assert comp.conjuncts_pruned > 0

    # -- record into BENCH_pipeline.json ------------------------------
    path = os.path.join(RESULTS_DIR, "BENCH_pipeline.json")
    payload = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload["compiled_engine"] = {
        "rounds": ROUNDS,
        "contexts": len(contexts),
        "specs": len(specs),
        "legs": {
            label: {
                "wall_seconds": round(best[label], 4),
                "constraint_evals": stats_of[label].constraint_evals,
                "evals_pruned": stats_of[label].evals_pruned,
            }
            for label, _, _ in LEGS
        },
        "round_ratios": [round(r, 3) for r in ratios],
        "speedup_median": round(speedup, 3),
        "speedup_best_of_best": round(
            best["interpreted/per-call"] / best["compiled/shared"], 3
        ),
        "asserted_floor": MIN_SPEEDUP,
        "detection_fingerprint_identical_to_naive": True,
    }
    write_artifact("BENCH_pipeline.json", json.dumps(payload, indent=2))

    rows = [
        [label, f"{best[label] * 1000:.0f} ms",
         stats_of[label].constraint_evals,
         stats_of[label].evals_pruned]
        for label, _, _ in LEGS
    ]
    text = table(
        ["engine/cache", "wall (best)", "constraint evals", "evals pruned"],
        rows,
        title=(
            f"corpus detection: compiled {speedup:.2f}x vs interpreted "
            f"(median of {ROUNDS} interleaved rounds)"
        ),
    )
    print()
    print(write_artifact("bench_compiled.txt", text))
