"""Shared helpers for the figure-regenerating benchmark harness."""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def write_artifact(name: str, text: str) -> str:
    """Persist a rendered table/figure under results/ and return it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return text
