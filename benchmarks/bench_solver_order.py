"""Ablation: label enumeration order (§3.3).

"There is no canonical order on the set I ... The exact choice of this
enumeration does not affect the functionality but will be very
important for the runtime behavior of this method."

Two experiments:

* on EP's kernel, the curated order versus a *structure-scrambled*
  order (blocks bound before the branch structure that would propose
  them) — bounded but measurably worse;
* on a small kernel (mri-q's Q accumulation), the curated order versus
  the fully *reversed* order, where early value labels cannot be
  proposed at all and the solver falls back to enumerating the whole
  value universe — the §3.2 blow-up in miniature.  (On EP-sized
  functions the reversed order is intractable, which is exactly the
  paper's point.)
"""

import time

from conftest import write_artifact
from repro.constraints import SolverContext, SolverStats, detect
from repro.evaluation.render import table
from repro.idioms.scalar_reduction import (
    SCALAR_REDUCTION_LABEL_ORDER,
    scalar_reduction_spec,
)
from repro.workloads import program

#: Blocks and values bound before the branch structure.
SCRAMBLED_ORDER = (
    "body", "exit", "latch", "entry", "header", "test", "iterator",
    "next_iter", "iter_begin", "iter_step", "iter_end", "acc",
    "acc_update", "acc_init",
)


def _run(ctx, spec):
    stats = SolverStats()
    started = time.perf_counter()
    solutions = detect(ctx, spec, stats=stats)
    return solutions, stats, time.perf_counter() - started


def test_enumeration_order_ablation(benchmark):
    curated = scalar_reduction_spec()
    assert set(SCRAMBLED_ORDER) == set(SCALAR_REDUCTION_LABEL_ORDER)

    ep_module = program("EP").fresh_module()
    ep_ctx = SolverContext(
        ep_module.get_function("gaussian_pairs"), ep_module
    )

    def run_curated():
        return _run(ep_ctx, curated)

    solutions, _, _ = benchmark.pedantic(run_curated, rounds=3,
                                         iterations=1)
    assert len(solutions) == 2  # lsx and lsy

    rows = []
    scrambled = curated.reordered(SCRAMBLED_ORDER)
    for name, ctx_spec in (
        ("EP / curated", (ep_ctx, curated)),
        ("EP / scrambled blocks", (ep_ctx, scrambled)),
    ):
        ctx, spec = ctx_spec
        solutions, stats, elapsed = _run(ctx, spec)
        assert len(solutions) == 2
        rows.append([name, len(solutions), stats.assignments_tried,
                     stats.fallbacks_to_universe,
                     f"{elapsed * 1000:.1f} ms"])

    # The miniature §3.2 blow-up: full reversal on a small function.
    mri_module = program("mri-q").fresh_module()
    mri_ctx = SolverContext(mri_module.get_function("compute_q"),
                            mri_module)
    reversed_spec = curated.reordered(
        tuple(reversed(curated.label_order))
    )
    for name, spec in (("mri-q / curated", curated),
                       ("mri-q / reversed", reversed_spec)):
        solutions, stats, elapsed = _run(mri_ctx, spec)
        assert len(solutions) == 1
        rows.append([name, len(solutions), stats.assignments_tried,
                     stats.fallbacks_to_universe,
                     f"{elapsed * 1000:.1f} ms"])

    text = table(
        ["configuration", "solutions", "assignments",
         "universe fallbacks", "time"],
        rows,
        title="§3.3 ablation: enumeration order vs search effort",
    )
    print()
    print(write_artifact("ablation_solver_order.txt", text))
    assert rows[1][2] > rows[0][2]  # scrambled works harder on EP
    assert rows[3][2] > rows[2][2]  # reversed works harder on mri-q
