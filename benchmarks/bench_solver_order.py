"""Ablation: label enumeration order (§3.3) and incremental checking.

"There is no canonical order on the set I ... The exact choice of this
enumeration does not affect the functionality but will be very
important for the runtime behavior of this method."

Three experiments — the third compares the incremental solver (check
only conjuncts affected by the newest binding) against the naive
full-tree walk, plus the automatic ``suggest_order`` heuristic against
the curated order.  The original two:

* on EP's kernel, the curated order versus a *structure-scrambled*
  order (blocks bound before the branch structure that would propose
  them) — bounded but measurably worse;
* on a small kernel (mri-q's Q accumulation), the curated order versus
  the fully *reversed* order, where early value labels cannot be
  proposed at all and the solver falls back to enumerating the whole
  value universe — the §3.2 blow-up in miniature.  (On EP-sized
  functions the reversed order is intractable, which is exactly the
  paper's point.)
"""

import time

from conftest import write_artifact
from repro.constraints import (
    SolverContext,
    SolverStats,
    detect,
    suggest_order,
)
from repro.evaluation.render import table
from repro.idioms.forloop import for_loop_spec
from repro.idioms.scalar_reduction import (
    SCALAR_REDUCTION_LABEL_ORDER,
    scalar_reduction_spec,
)
from repro.workloads import program

#: Blocks and values bound before the branch structure.
SCRAMBLED_ORDER = (
    "body", "exit", "latch", "entry", "header", "test", "iterator",
    "next_iter", "iter_begin", "iter_step", "iter_end", "acc",
    "acc_update", "acc_init",
)


def _run(ctx, spec):
    stats = SolverStats()
    started = time.perf_counter()
    solutions = detect(ctx, spec, stats=stats)
    return solutions, stats, time.perf_counter() - started


def test_enumeration_order_ablation(benchmark):
    curated = scalar_reduction_spec()
    assert set(SCRAMBLED_ORDER) == set(SCALAR_REDUCTION_LABEL_ORDER)

    ep_module = program("EP").fresh_module()
    ep_ctx = SolverContext(
        ep_module.get_function("gaussian_pairs"), ep_module
    )

    def run_curated():
        return _run(ep_ctx, curated)

    solutions, _, _ = benchmark.pedantic(run_curated, rounds=3,
                                         iterations=1)
    assert len(solutions) == 2  # lsx and lsy

    rows = []
    scrambled = curated.reordered(SCRAMBLED_ORDER)
    for name, ctx_spec in (
        ("EP / curated", (ep_ctx, curated)),
        ("EP / scrambled blocks", (ep_ctx, scrambled)),
    ):
        ctx, spec = ctx_spec
        solutions, stats, elapsed = _run(ctx, spec)
        assert len(solutions) == 2
        rows.append([name, len(solutions), stats.assignments_tried,
                     stats.fallbacks_to_universe,
                     f"{elapsed * 1000:.1f} ms"])

    # The miniature §3.2 blow-up: full reversal on a small function.
    mri_module = program("mri-q").fresh_module()
    mri_ctx = SolverContext(mri_module.get_function("compute_q"),
                            mri_module)
    reversed_spec = curated.reordered(
        tuple(reversed(curated.label_order))
    )
    for name, spec in (("mri-q / curated", curated),
                       ("mri-q / reversed", reversed_spec)):
        solutions, stats, elapsed = _run(mri_ctx, spec)
        assert len(solutions) == 1
        rows.append([name, len(solutions), stats.assignments_tried,
                     stats.fallbacks_to_universe,
                     f"{elapsed * 1000:.1f} ms"])

    # Cost-aware suggest_order, fed the curated run's per-(label,
    # bound-set) statistics: never worse than the curated order itself.
    # Fresh contexts per run so both measurements are cold-cache.
    for name, function in (("EP", "gaussian_pairs"),
                           ("mri-q", "compute_q")):
        def fresh_ctx():
            module = program(name).fresh_module()
            return SolverContext(module.get_function(function), module)

        _, curated_stats, _ = _run(fresh_ctx(), curated)
        aware = curated.reordered(
            suggest_order(curated, feedback=curated_stats)
        )
        solutions, stats, elapsed = _run(fresh_ctx(), aware)
        assert stats.constraint_evals <= curated_stats.constraint_evals
        rows.append([f"{name} / feedback-aware", len(solutions),
                     stats.assignments_tried,
                     stats.fallbacks_to_universe,
                     f"{elapsed * 1000:.1f} ms"])

    text = table(
        ["configuration", "solutions", "assignments",
         "universe fallbacks", "time"],
        rows,
        title="§3.3 ablation: enumeration order vs search effort",
    )
    print()
    print(write_artifact("ablation_solver_order.txt", text))
    assert rows[1][2] > rows[0][2]  # scrambled works harder on EP
    assert rows[3][2] > rows[2][2]  # reversed works harder on mri-q


def test_incremental_solver_ablation():
    """Incremental conjunct indexing vs the naive full-tree walk.

    Acceptance metric for the incremental solver: on the for-loop spec
    the indexed path performs strictly fewer per-solution constraint
    evaluations than re-walking the whole tree at every binding, with
    no change in the solutions found.
    """
    spec = for_loop_spec()
    rows = []
    for workload, function in (("EP", "gaussian_pairs"),
                               ("mri-q", "compute_q")):
        module = program(workload).fresh_module()
        ctx = SolverContext(module.get_function(function), module)
        runs = {}
        for mode, incremental in (("incremental", True), ("naive", False)):
            stats = SolverStats()
            started = time.perf_counter()
            solutions = detect(ctx, spec, stats=stats,
                               incremental=incremental)
            elapsed = time.perf_counter() - started
            runs[mode] = (solutions, stats)
            per_solution = stats.constraint_evals / max(1, stats.solutions)
            rows.append([f"{workload} / {mode}", len(solutions),
                         stats.constraint_evals, f"{per_solution:.0f}",
                         stats.proposal_cache_hits,
                         f"{elapsed * 1000:.1f} ms"])
        inc_solutions, inc_stats = runs["incremental"]
        naive_solutions, naive_stats = runs["naive"]
        # No change in solutions found...
        assert inc_solutions == naive_solutions
        assert inc_stats.assignments_tried == naive_stats.assignments_tried
        # ...with strictly fewer per-solution constraint evaluations.
        assert inc_stats.constraint_evals < naive_stats.constraint_evals

    # The automatic order heuristic is usable end-to-end.
    module = program("mri-q").fresh_module()
    ctx = SolverContext(module.get_function("compute_q"), module)
    auto = spec.reordered(suggest_order(spec))
    stats = SolverStats()
    solutions = detect(ctx, auto, stats=stats)
    assert {id(s["header"]) for s in solutions} == {
        id(s["header"]) for s in detect(ctx, spec)
    }
    rows.append(["mri-q / suggest_order", len(solutions),
                 stats.constraint_evals,
                 f"{stats.constraint_evals / max(1, stats.solutions):.0f}",
                 stats.proposal_cache_hits, "-"])

    # Cost-aware ordering: feedback is the SolverStats of a previous
    # run of the shipped (curated) order on the same function — the
    # per-(label, bound-set) statistics follow the cheapest measured
    # continuation, so the suggested order is never worse than the
    # order that produced the feedback.  Acceptance bar: ≤ curated
    # constraint evals on both EP and mri-q.
    for workload, function in (("EP", "gaussian_pairs"),
                               ("mri-q", "compute_q")):
        fb_module = program(workload).fresh_module()
        fb_ctx = SolverContext(fb_module.get_function(function), fb_module)
        curated_stats = SolverStats()
        curated_solutions = detect(fb_ctx, spec, stats=curated_stats)
        cost_aware = spec.reordered(
            suggest_order(spec, feedback=curated_stats)
        )
        aware_stats = SolverStats()
        aware_solutions = detect(fb_ctx, cost_aware, stats=aware_stats)
        assert {id(s["header"]) for s in aware_solutions} == {
            id(s["header"]) for s in curated_solutions
        }
        assert aware_stats.constraint_evals <= curated_stats.constraint_evals
        rows.append(
            [f"{workload} / suggest_order+feedback", len(aware_solutions),
             aware_stats.constraint_evals,
             f"{aware_stats.constraint_evals / max(1, aware_stats.solutions):.0f}",
             aware_stats.proposal_cache_hits, "-"])

    text = table(
        ["configuration", "solutions", "constraint evals",
         "evals/solution", "proposal cache hits", "time"],
        rows,
        title="incremental solver: constraint evaluations vs naive walk",
    )
    print()
    print(write_artifact("ablation_incremental_solver.txt", text))
