"""Solver feedback store benchmark: the corpus-wide eval reduction of
a feedback-warmed run, and the determinism of the artifact itself.

Scenario, recorded in ``results/BENCH_feedback.json``:

* **recording** — one curated-order corpus run; its per-spec solver
  statistics merge into a persisted feedback artifact
  (``save_feedback``);
* **cold** — the uncurated deployment: every spec reordered by the
  *static* ``suggest_order`` heuristic (the order a spec without a
  hand-curated ``order:`` gets), no feedback.  Same detections, far
  more search;
* **warmed** — the *same uncurated deployment* plus the artifact: the
  store's orders are derived against the static-ordered registry (the
  deployment's own view — crucially, this measures the artifact's
  contribution, not the pre-existing curated-vs-static gap) and
  override the static baseline.  Cost-aware ``suggest_order`` replays
  the cheapest measured continuation per spec, so the artifact
  carries the ordering knowledge the deployment lacks.

Acceptance bars:

* warmed evals **< cold** evals (the headline corpus-wide reduction —
  with the artifact's contribution isolated: both runs start from the
  same uncurated orders, only the artifact differs);
* warmed evals **≤ curated** evals (feedback is never worse than the
  order that produced it);
* consuming the artifact on the *default* (curated) registry is a
  no-op by cost: the recording's own orders are replayed exactly;
* identical detections in every configuration
  (``fingerprint(effort=False)``);
* the default warmed run's **full** fingerprint (search effort
  included) is identical across ``jobs=1``/``jobs=N``, fork/spawn,
  and program/function granularity — and all of those runs re-record
  **byte-identical** feedback artifacts.
"""

import json
import multiprocessing
import os
import tempfile

from conftest import write_artifact
from repro.constraints import suggest_order
from repro.evaluation.render import table
from repro.idioms.registry import IdiomRegistry
from repro.pipeline import (
    detect_corpus,
    feedback_from_report,
    load_feedback,
    save_feedback,
)


def _static_orders() -> dict:
    """Every built-in spec under the static (uncurated) heuristic."""
    registry = IdiomRegistry()
    return {
        entry.name: suggest_order(entry.spec) for entry in registry
    }


def test_feedback_store_corpus_reduction():
    with tempfile.TemporaryDirectory() as tmp:
        artifact = os.path.join(tmp, "feedback.json")

        # 1. Record a curated-order run and persist its feedback.
        recording = detect_corpus(jobs=1, extended=True)
        save_feedback(feedback_from_report(recording), artifact)
        store = load_feedback(artifact)

        # 2. Cold uncurated deployment: static suggest_order everywhere.
        static = _static_orders()
        cold = detect_corpus(jobs=1, extended=True, spec_orders=static)

        # 3. The same uncurated deployment warmed by the artifact: the
        # store's orders are derived against the deployment's own
        # (static-ordered) registry, then override the static
        # baseline — so cold and warmed differ by the artifact alone.
        deployed = IdiomRegistry()
        deployed.apply_orders(static)
        warm_orders = dict(static)
        warm_orders.update(store.spec_orders(deployed))
        warmed = detect_corpus(jobs=1, extended=True,
                               spec_orders=warm_orders)

        # 3b. Consuming the artifact on the default (curated) registry
        # replays the recording's own orders — a no-op by cost, and
        # the configuration whose determinism the matrix below pins.
        replay = detect_corpus(jobs=1, extended=True,
                               feedback_from=artifact)

        # Reordering moves search cost, never detections.
        for report in (cold, warmed, replay):
            assert report.fingerprint(effort=False) == (
                recording.fingerprint(effort=False)
            )
        # The headline reduction, and the never-worse bars.
        assert warmed.total_constraint_evals < cold.total_constraint_evals
        assert (warmed.total_constraint_evals
                <= recording.total_constraint_evals)
        assert (replay.total_constraint_evals
                <= recording.total_constraint_evals)

        # 4. Determinism matrix for the warmed configuration: the full
        # fingerprint (effort included) and the re-recorded artifact
        # bytes must agree across every sharding shape.
        matrix = {
            "jobs1-program": dict(jobs=1),
            "jobs4-program": dict(jobs=4),
            "jobs4-function": dict(jobs=4, granularity="function"),
        }
        for method in multiprocessing.get_all_start_methods():
            if method in ("fork", "spawn"):
                matrix[f"jobs2-function-{method}"] = dict(
                    jobs=2, granularity="function", start_method=method
                )
        fingerprints = {}
        blobs = {}
        for name, kwargs in matrix.items():
            report = detect_corpus(extended=True, feedback_from=artifact,
                                   **kwargs)
            fingerprints[name] = report.fingerprint()
            path = os.path.join(tmp, f"{name}.json")
            save_feedback(feedback_from_report(report), path)
            with open(path, "rb") as handle:
                blobs[name] = handle.read()
        reference = fingerprints["jobs1-program"]
        assert all(fp == reference for fp in fingerprints.values()), (
            fingerprints
        )
        reference_blob = blobs["jobs1-program"]
        assert all(blob == reference_blob for blob in blobs.values())

    reduction = 1.0 - (
        warmed.total_constraint_evals / cold.total_constraint_evals
    )
    payload = {
        "corpus_programs": len(recording.programs),
        "curated_constraint_evals": recording.total_constraint_evals,
        "cold_static_constraint_evals": cold.total_constraint_evals,
        "warmed_constraint_evals": warmed.total_constraint_evals,
        "curated_replay_constraint_evals": replay.total_constraint_evals,
        "eval_reduction_vs_cold": round(reduction, 4),
        "feedback_specs": len(store),
        "feedback_fingerprint": store.fingerprint(),
        "detections_fingerprint": recording.fingerprint(effort=False),
        "warmed_report_fingerprint": reference,
        "warmed_fingerprints_identical_across": sorted(matrix),
        "feedback_artifact_byte_identical_across": sorted(matrix),
    }
    write_artifact("BENCH_feedback.json", json.dumps(payload, indent=2))

    rows = [
        ["curated (recording)", recording.total_constraint_evals, "1.00x"],
        ["cold static orders", cold.total_constraint_evals,
         f"{cold.total_constraint_evals / recording.total_constraint_evals:.2f}x"],
        ["static + artifact (warmed)", warmed.total_constraint_evals,
         f"{warmed.total_constraint_evals / recording.total_constraint_evals:.2f}x"],
        ["curated + artifact (replay)", replay.total_constraint_evals,
         f"{replay.total_constraint_evals / recording.total_constraint_evals:.2f}x"],
    ]
    text = table(
        ["configuration", "constraint evals", "vs curated"],
        rows,
        title=(
            f"solver feedback store: corpus-wide constraint evals "
            f"({reduction * 100:.1f}% saved vs cold)"
        ),
    )
    print()
    print(write_artifact("bench_feedback.txt", text))


def test_feedback_of_a_static_run_is_honest():
    """Feedback recorded *from* a static-order run replays that run —
    it cannot invent improvements it never measured, so a deployment
    warming itself from its own recording never regresses.

    Note ``spec_orders`` takes precedence over ``feedback_from``, so
    the warm configuration is built explicitly: the store's orders are
    derived against the *static-ordered* registry (the deployment's
    own view) and merged over the static baseline.
    """
    with tempfile.TemporaryDirectory() as tmp:
        artifact = os.path.join(tmp, "static-feedback.json")
        static = _static_orders()
        cold = detect_corpus(jobs=1, spec_orders=static)
        save_feedback(feedback_from_report(cold), artifact)

        deployed = IdiomRegistry()
        deployed.apply_orders(static)
        derived = load_feedback(artifact).spec_orders(deployed)
        warm_orders = dict(static)
        warm_orders.update(derived)
        replay = detect_corpus(jobs=1, spec_orders=warm_orders)
        assert replay.fingerprint(effort=False) == cold.fingerprint(
            effort=False
        )
        assert replay.total_constraint_evals <= cold.total_constraint_evals


def test_exploration_discovers_a_strictly_better_order():
    """The explore–exploit acceptance bar.

    A deterministic ε-greedy exploration run (ε=0.25, seed=1) pairs a
    perturbed-order candidate run against the incumbent on a sampled
    subset of functions, records exact per-order savings, and the
    derived winner must strictly beat the curated orders corpus-wide
    and on at least one suite — while regressing none.  The explored
    report itself stays fingerprint-identical to the plain run
    (digests always come from the incumbent leg), and the explored
    artifact is byte-identical across jobs, granularity, and start
    method.  The numbers land in ``results/BENCH_feedback.json``
    under ``exploration``.
    """
    from collections import defaultdict

    epsilon, seed = 0.25, 1
    base = detect_corpus(jobs=1)
    explored = detect_corpus(jobs=1, explore=epsilon, explore_seed=seed)
    assert explored.fingerprint() == base.fingerprint()

    store = feedback_from_report(explored)
    assert store.orders  # the sample measured per-order outcomes
    derived = store.spec_orders(IdiomRegistry())
    assert derived  # at least one measured order won its Pareto test

    tuned = detect_corpus(jobs=1, spec_orders=derived)
    # Same detections, strictly less search than the curated orders.
    assert tuned.fingerprint(effort=False) == base.fingerprint(
        effort=False
    )
    assert tuned.total_constraint_evals < base.total_constraint_evals

    def by_suite(report):
        evals = defaultdict(int)
        for digest in report.programs:
            evals[digest.suite] += sum(
                stats.constraint_evals
                for stats in digest.spec_stats.values()
            )
        return dict(evals)

    base_suites = by_suite(base)
    tuned_suites = by_suite(tuned)
    strictly_better = sorted(
        suite for suite in base_suites
        if tuned_suites[suite] < base_suites[suite]
    )
    assert strictly_better  # ≥ 1 suite strictly beats curated
    assert all(tuned_suites[suite] <= base_suites[suite]
               for suite in base_suites)  # and none regress

    # The explored artifact's determinism matrix: byte-identical
    # across jobs, granularity, and start method (exploration samples
    # per function, so the sample is sharding-invariant).
    matrix = {
        "jobs1-program": dict(jobs=1),
        "jobs3-program": dict(jobs=3),
        "jobs3-function": dict(jobs=3, granularity="function"),
    }
    for method in multiprocessing.get_all_start_methods():
        if method in ("fork", "spawn"):
            matrix[f"jobs2-function-{method}"] = dict(
                jobs=2, granularity="function", start_method=method
            )
    with tempfile.TemporaryDirectory() as tmp:
        blobs = {}
        for name, kwargs in matrix.items():
            report = detect_corpus(explore=epsilon, explore_seed=seed,
                                   **kwargs)
            assert report.fingerprint() == base.fingerprint()
            path = os.path.join(tmp, f"{name}.json")
            save_feedback(feedback_from_report(report), path)
            with open(path, "rb") as handle:
                blobs[name] = handle.read()
        reference_blob = blobs["jobs1-program"]
        assert all(blob == reference_blob for blob in blobs.values())

    # Fold the exploration leg into the benchmark artifact (the
    # reduction test earlier in this file writes the base payload).
    from conftest import RESULTS_DIR

    artifact_path = os.path.join(RESULTS_DIR, "BENCH_feedback.json")
    payload = {}
    if os.path.exists(artifact_path):
        with open(artifact_path) as handle:
            payload = json.load(handle)
    payload["exploration"] = {
        "epsilon": epsilon,
        "seed": seed,
        "curated_constraint_evals": base.total_constraint_evals,
        "explored_tuned_constraint_evals": tuned.total_constraint_evals,
        "paired_saving": (base.total_constraint_evals
                          - tuned.total_constraint_evals),
        "adopted_orders": {
            name: list(order) for name, order in sorted(derived.items())
        },
        "suite_constraint_evals": {
            suite: {"curated": base_suites[suite],
                    "explored": tuned_suites[suite]}
            for suite in sorted(base_suites)
        },
        "strictly_better_suites": strictly_better,
        "explored_artifact_fingerprint": store.fingerprint(),
        "artifact_byte_identical_across": sorted(matrix),
    }
    write_artifact("BENCH_feedback.json", json.dumps(payload, indent=2))
