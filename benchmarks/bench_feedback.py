"""Solver feedback store benchmark: the corpus-wide eval reduction of
a feedback-warmed run, and the determinism of the artifact itself.

Scenario, recorded in ``results/BENCH_feedback.json``:

* **recording** — one curated-order corpus run; its per-spec solver
  statistics merge into a persisted feedback artifact
  (``save_feedback``);
* **cold** — the uncurated deployment: every spec reordered by the
  *static* ``suggest_order`` heuristic (the order a spec without a
  hand-curated ``order:`` gets), no feedback.  Same detections, far
  more search;
* **warmed** — the *same uncurated deployment* plus the artifact: the
  store's orders are derived against the static-ordered registry (the
  deployment's own view — crucially, this measures the artifact's
  contribution, not the pre-existing curated-vs-static gap) and
  override the static baseline.  Cost-aware ``suggest_order`` replays
  the cheapest measured continuation per spec, so the artifact
  carries the ordering knowledge the deployment lacks.

Acceptance bars:

* warmed evals **< cold** evals (the headline corpus-wide reduction —
  with the artifact's contribution isolated: both runs start from the
  same uncurated orders, only the artifact differs);
* warmed evals **≤ curated** evals (feedback is never worse than the
  order that produced it);
* consuming the artifact on the *default* (curated) registry is a
  no-op by cost: the recording's own orders are replayed exactly;
* identical detections in every configuration
  (``fingerprint(effort=False)``);
* the default warmed run's **full** fingerprint (search effort
  included) is identical across ``jobs=1``/``jobs=N``, fork/spawn,
  and program/function granularity — and all of those runs re-record
  **byte-identical** feedback artifacts.
"""

import json
import multiprocessing
import os
import tempfile

from conftest import write_artifact
from repro.constraints import suggest_order
from repro.evaluation.render import table
from repro.idioms.registry import IdiomRegistry
from repro.pipeline import (
    detect_corpus,
    feedback_from_report,
    load_feedback,
    save_feedback,
)


def _static_orders() -> dict:
    """Every built-in spec under the static (uncurated) heuristic."""
    registry = IdiomRegistry()
    return {
        entry.name: suggest_order(entry.spec) for entry in registry
    }


def test_feedback_store_corpus_reduction():
    with tempfile.TemporaryDirectory() as tmp:
        artifact = os.path.join(tmp, "feedback.json")

        # 1. Record a curated-order run and persist its feedback.
        recording = detect_corpus(jobs=1, extended=True)
        save_feedback(feedback_from_report(recording), artifact)
        store = load_feedback(artifact)

        # 2. Cold uncurated deployment: static suggest_order everywhere.
        static = _static_orders()
        cold = detect_corpus(jobs=1, extended=True, spec_orders=static)

        # 3. The same uncurated deployment warmed by the artifact: the
        # store's orders are derived against the deployment's own
        # (static-ordered) registry, then override the static
        # baseline — so cold and warmed differ by the artifact alone.
        deployed = IdiomRegistry()
        deployed.apply_orders(static)
        warm_orders = dict(static)
        warm_orders.update(store.spec_orders(deployed))
        warmed = detect_corpus(jobs=1, extended=True,
                               spec_orders=warm_orders)

        # 3b. Consuming the artifact on the default (curated) registry
        # replays the recording's own orders — a no-op by cost, and
        # the configuration whose determinism the matrix below pins.
        replay = detect_corpus(jobs=1, extended=True,
                               feedback_from=artifact)

        # Reordering moves search cost, never detections.
        for report in (cold, warmed, replay):
            assert report.fingerprint(effort=False) == (
                recording.fingerprint(effort=False)
            )
        # The headline reduction, and the never-worse bars.
        assert warmed.total_constraint_evals < cold.total_constraint_evals
        assert (warmed.total_constraint_evals
                <= recording.total_constraint_evals)
        assert (replay.total_constraint_evals
                <= recording.total_constraint_evals)

        # 4. Determinism matrix for the warmed configuration: the full
        # fingerprint (effort included) and the re-recorded artifact
        # bytes must agree across every sharding shape.
        matrix = {
            "jobs1-program": dict(jobs=1),
            "jobs4-program": dict(jobs=4),
            "jobs4-function": dict(jobs=4, granularity="function"),
        }
        for method in multiprocessing.get_all_start_methods():
            if method in ("fork", "spawn"):
                matrix[f"jobs2-function-{method}"] = dict(
                    jobs=2, granularity="function", start_method=method
                )
        fingerprints = {}
        blobs = {}
        for name, kwargs in matrix.items():
            report = detect_corpus(extended=True, feedback_from=artifact,
                                   **kwargs)
            fingerprints[name] = report.fingerprint()
            path = os.path.join(tmp, f"{name}.json")
            save_feedback(feedback_from_report(report), path)
            with open(path, "rb") as handle:
                blobs[name] = handle.read()
        reference = fingerprints["jobs1-program"]
        assert all(fp == reference for fp in fingerprints.values()), (
            fingerprints
        )
        reference_blob = blobs["jobs1-program"]
        assert all(blob == reference_blob for blob in blobs.values())

    reduction = 1.0 - (
        warmed.total_constraint_evals / cold.total_constraint_evals
    )
    payload = {
        "corpus_programs": len(recording.programs),
        "curated_constraint_evals": recording.total_constraint_evals,
        "cold_static_constraint_evals": cold.total_constraint_evals,
        "warmed_constraint_evals": warmed.total_constraint_evals,
        "curated_replay_constraint_evals": replay.total_constraint_evals,
        "eval_reduction_vs_cold": round(reduction, 4),
        "feedback_specs": len(store),
        "feedback_fingerprint": store.fingerprint(),
        "detections_fingerprint": recording.fingerprint(effort=False),
        "warmed_report_fingerprint": reference,
        "warmed_fingerprints_identical_across": sorted(matrix),
        "feedback_artifact_byte_identical_across": sorted(matrix),
    }
    write_artifact("BENCH_feedback.json", json.dumps(payload, indent=2))

    rows = [
        ["curated (recording)", recording.total_constraint_evals, "1.00x"],
        ["cold static orders", cold.total_constraint_evals,
         f"{cold.total_constraint_evals / recording.total_constraint_evals:.2f}x"],
        ["static + artifact (warmed)", warmed.total_constraint_evals,
         f"{warmed.total_constraint_evals / recording.total_constraint_evals:.2f}x"],
        ["curated + artifact (replay)", replay.total_constraint_evals,
         f"{replay.total_constraint_evals / recording.total_constraint_evals:.2f}x"],
    ]
    text = table(
        ["configuration", "constraint evals", "vs curated"],
        rows,
        title=(
            f"solver feedback store: corpus-wide constraint evals "
            f"({reduction * 100:.1f}% saved vs cold)"
        ),
    )
    print()
    print(write_artifact("bench_feedback.txt", text))


def test_feedback_of_a_static_run_is_honest():
    """Feedback recorded *from* a static-order run replays that run —
    it cannot invent improvements it never measured, so a deployment
    warming itself from its own recording never regresses.

    Note ``spec_orders`` takes precedence over ``feedback_from``, so
    the warm configuration is built explicitly: the store's orders are
    derived against the *static-ordered* registry (the deployment's
    own view) and merged over the static baseline.
    """
    with tempfile.TemporaryDirectory() as tmp:
        artifact = os.path.join(tmp, "static-feedback.json")
        static = _static_orders()
        cold = detect_corpus(jobs=1, spec_orders=static)
        save_feedback(feedback_from_report(cold), artifact)

        deployed = IdiomRegistry()
        deployed.apply_orders(static)
        derived = load_feedback(artifact).spec_orders(deployed)
        warm_orders = dict(static)
        warm_orders.update(derived)
        replay = detect_corpus(jobs=1, spec_orders=warm_orders)
        assert replay.fingerprint(effort=False) == cold.fingerprint(
            effort=False
        )
        assert replay.total_constraint_evals <= cold.total_constraint_evals
