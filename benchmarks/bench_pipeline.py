"""Corpus-scale pipeline benchmark: serial PR-1 engine vs the staged,
cache-sharing, sharded pipeline.

Acceptance metric of the pipeline refactor, recorded in
``results/BENCH_pipeline.json``:

* the sharded run (``jobs>1``) produces a report **identical** to the
  serial one (same fingerprint, timings aside);
* the shared-cache engine produces the **same detections** as PR-1's
  per-``detect``-call engine with **lower total constraint_evals**
  (the solved for-loop prefix is replayed by every extends-family
  spec instead of re-enumerated); and
* the sharded shared-cache pipeline has **lower wall-clock** than the
  serial PR-1 engine — on a single core purely from the cache savings,
  on a multicore machine additionally from sharding.
"""

import json
import multiprocessing
import time

from conftest import write_artifact
from repro.evaluation.render import table
from repro.pipeline import detect_corpus

#: Shard count for the parallel configuration (>1 by construction).
JOBS = max(2, min(4, multiprocessing.cpu_count()))

ROUNDS = 3


def _measure(**kwargs):
    """Best-of-N wall clock plus the (identical) report of the runs."""
    best = None
    report = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        report = detect_corpus(**kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return report, best


def test_pipeline_vs_serial_pr1_engine(benchmark):
    def run_sharded():
        return detect_corpus(jobs=JOBS, extended=True, baselines=True)

    benchmark.pedantic(run_sharded, rounds=1, iterations=1)

    configurations = {
        "serial-per-call": dict(jobs=1, extended=True, baselines=True,
                                shared_cache=False),
        "serial-shared": dict(jobs=1, extended=True, baselines=True),
        "sharded-shared": dict(jobs=JOBS, extended=True, baselines=True),
    }
    runs = {
        name: _measure(**kwargs) for name, kwargs in configurations.items()
    }

    per_call, per_call_wall = runs["serial-per-call"]
    shared, shared_wall = runs["serial-shared"]
    sharded, sharded_wall = runs["sharded-shared"]

    # Identical reports: sharded ≡ serial byte-for-byte, and both
    # engines agree on every detection (effort differs by design).
    assert sharded.fingerprint() == shared.fingerprint()
    assert sharded.programs == shared.programs
    assert sharded.fingerprint(effort=False) == per_call.fingerprint(
        effort=False
    )
    assert sharded.counts() == (84, 6)

    # Lower search effort and lower wall-clock than the PR-1 engine.
    assert sharded.total_constraint_evals < per_call.total_constraint_evals
    assert shared.total_constraint_evals < per_call.total_constraint_evals
    assert sharded_wall < per_call_wall

    payload = {
        "jobs": JOBS,
        "cpu_count": multiprocessing.cpu_count(),
        "programs": len(sharded.programs),
        "rounds": ROUNDS,
        "configurations": {
            name: {
                "jobs": report.jobs,
                "wall_seconds": round(wall, 4),
                "constraint_evals": report.total_constraint_evals,
                "fingerprint": report.fingerprint(),
                "detection_fingerprint": report.fingerprint(effort=False),
            }
            for name, (report, wall) in runs.items()
        },
        "speedup_vs_pr1": round(per_call_wall / sharded_wall, 3),
        "eval_reduction_vs_pr1": round(
            1 - sharded.total_constraint_evals
            / per_call.total_constraint_evals,
            3,
        ),
    }
    write_artifact("BENCH_pipeline.json", json.dumps(payload, indent=2))

    rows = [
        [name, report.jobs, report.total_constraint_evals,
         f"{wall * 1000:.0f} ms"]
        for name, (report, wall) in runs.items()
    ]
    text = table(
        ["configuration", "jobs", "constraint evals", "wall (best of 3)"],
        rows,
        title="corpus pipeline: PR-1 engine vs shared caches vs sharding",
    )
    print()
    print(write_artifact("bench_pipeline.txt", text))
