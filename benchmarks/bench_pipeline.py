"""Corpus-scale pipeline benchmark: serial PR-1 engine vs the staged,
cache-sharing, sharded pipeline — plus the persistent serving engine
and measured-cost sharding.

Acceptance metric of the pipeline refactor, recorded in
``results/BENCH_pipeline.json``:

* the sharded run (``jobs>1``) produces a report **identical** to the
  serial one (same fingerprint, timings aside);
* the shared-cache engine produces the **same detections** as PR-1's
  per-``detect``-call engine with **lower total constraint_evals**
  (the solved for-loop prefix is replayed by every extends-family
  spec instead of re-enumerated); and
* the sharded shared-cache pipeline has **lower wall-clock** than the
  serial PR-1 engine — on a single core purely from the cache savings,
  on a multicore machine additionally from sharding.

Acceptance metric of the serving engine + measured-cost sharding,
recorded in ``results/BENCH_serving.json``:

* the persistent engine's served report is **fingerprint-identical**
  to the ``jobs=1`` batch run, cold and warm;
* an ``INTERACTIVE`` submit **overtakes** a queued full-corpus
  ``BATCH`` job (weighted-fair dequeue): at interactive completion the
  batch job must still have pending units, and both reports stay
  fingerprint-identical to batch mode;
* sharding on **measured costs** (the recorded ``stage_seconds`` of a
  stabilized profiling pass) yields a **lower per-worker wall-clock
  makespan** than the static source-length proxy.  The makespan is
  evaluated against an *independently re-measured* profile — the
  schedule built from run A's costs must win under run B's costs, so
  the comparison cannot be circular — and summed over a grid of shard
  counts where each worker holds only a few programs and proxy error
  cannot average out.
"""

import json
import multiprocessing
import os
import time

from conftest import RESULTS_DIR, write_artifact
from repro.evaluation.render import table
from repro.pipeline import (
    CorpusReport,
    JobClass,
    PipelineOptions,
    ProgramDigest,
    ServingEngine,
    detect_corpus,
    make_shards,
    measured_weights,
    plan_units,
    report_to_json,
)

#: Shard count for the parallel configuration (>1 by construction).
JOBS = max(2, min(4, multiprocessing.cpu_count()))

ROUNDS = 3


def _measure(**kwargs):
    """Best-of-N wall clock plus the (identical) report of the runs."""
    best = None
    report = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        report = detect_corpus(**kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return report, best


def test_pipeline_vs_serial_pr1_engine(benchmark):
    def run_sharded():
        return detect_corpus(jobs=JOBS, extended=True, baselines=True)

    benchmark.pedantic(run_sharded, rounds=1, iterations=1)

    configurations = {
        "interpreted-per-call": dict(jobs=1, extended=True, baselines=True,
                                     shared_cache=False,
                                     engine="interpreted"),
        "interpreted-shared": dict(jobs=1, extended=True, baselines=True,
                                   engine="interpreted"),
        "serial-per-call": dict(jobs=1, extended=True, baselines=True,
                                shared_cache=False),
        "serial-shared": dict(jobs=1, extended=True, baselines=True),
        "sharded-shared": dict(jobs=JOBS, extended=True, baselines=True),
    }
    runs = {
        name: _measure(**kwargs) for name, kwargs in configurations.items()
    }

    interpreted, interpreted_wall = runs["interpreted-per-call"]
    interp_shared, interp_shared_wall = runs["interpreted-shared"]
    per_call, per_call_wall = runs["serial-per-call"]
    shared, shared_wall = runs["serial-shared"]
    sharded, sharded_wall = runs["sharded-shared"]

    # The compiled engine (the default) detects exactly what the
    # interpreted oracle detects, at lower end-to-end wall-clock, and
    # its eval counters reconcile through the recorded pruning.  The
    # solver-layer speedup (≥5x acceptance bar) is measured and
    # asserted by bench_compiled.py, which interleaves its legs; these
    # are the end-to-end pipeline numbers.
    assert shared.fingerprint(effort=False) == interp_shared.fingerprint(
        effort=False
    )
    assert per_call.fingerprint(effort=False) == interpreted.fingerprint(
        effort=False
    )
    assert shared_wall < interp_shared_wall
    assert per_call_wall < interpreted_wall
    assert shared.total_constraint_evals < interp_shared.total_constraint_evals

    # Identical reports: sharded ≡ serial byte-for-byte, and both
    # engines agree on every detection (effort differs by design).
    assert sharded.fingerprint() == shared.fingerprint()
    assert sharded.programs == shared.programs
    assert sharded.fingerprint(effort=False) == per_call.fingerprint(
        effort=False
    )
    assert sharded.counts() == (84, 6)

    # Lower search effort and lower wall-clock than the PR-1 engine.
    assert sharded.total_constraint_evals < per_call.total_constraint_evals
    assert shared.total_constraint_evals < per_call.total_constraint_evals
    assert sharded_wall < per_call_wall

    payload = {
        "jobs": JOBS,
        "cpu_count": multiprocessing.cpu_count(),
        "programs": len(sharded.programs),
        "rounds": ROUNDS,
        "configurations": {
            name: {
                "jobs": report.jobs,
                "wall_seconds": round(wall, 4),
                "constraint_evals": report.total_constraint_evals,
                "fingerprint": report.fingerprint(),
                "detection_fingerprint": report.fingerprint(effort=False),
            }
            for name, (report, wall) in runs.items()
        },
        "speedup_vs_pr1": round(per_call_wall / sharded_wall, 3),
        "eval_reduction_vs_pr1": round(
            1 - sharded.total_constraint_evals
            / per_call.total_constraint_evals,
            3,
        ),
        # End-to-end engine comparison (per-stage overheads included;
        # the solver-layer ratio is bench_compiled.py's compiled_engine
        # section).
        "engine_speedup_end_to_end": {
            "per_call": round(interpreted_wall / per_call_wall, 3),
            "shared": round(interp_shared_wall / shared_wall, 3),
        },
    }
    existing = {}
    existing_path = os.path.join(RESULTS_DIR, "BENCH_pipeline.json")
    if os.path.exists(existing_path):
        with open(existing_path) as handle:
            existing = json.load(handle)
    # Preserve bench_compiled.py's solver-layer section when present.
    if "compiled_engine" in existing:
        payload["compiled_engine"] = existing["compiled_engine"]
    write_artifact("BENCH_pipeline.json", json.dumps(payload, indent=2))

    rows = [
        [name, report.jobs, report.total_constraint_evals,
         f"{wall * 1000:.0f} ms"]
        for name, (report, wall) in runs.items()
    ]
    text = table(
        ["configuration", "jobs", "constraint evals", "wall (best of 3)"],
        rows,
        title="corpus pipeline: PR-1 engine vs shared caches vs sharding",
    )
    print()
    print(write_artifact("bench_pipeline.txt", text))


# -- serving engine + measured-cost sharding ----------------------------------

#: Shard counts for the measured-vs-static comparison: small shards,
#: where per-program proxy error cannot average out.
WEIGHT_GRID = (12, 16, 20)

#: Serial profiling runs per stabilized profile (per-stage minimum).
PROFILE_ROUNDS = 4


def _stabilized_profile() -> CorpusReport:
    """Measured per-program costs with timing noise minimized.

    Several serial runs, keeping each program's per-stage minimum —
    the reproducible structural cost, not one run's scheduling jitter.
    """
    runs = [
        detect_corpus(jobs=1, extended=True, baselines=True)
        for _ in range(PROFILE_ROUNDS)
    ]
    programs = []
    for i, digest in enumerate(runs[0].programs):
        per_stage: dict = {}
        for run in runs:
            for stage, seconds in run.programs[i].stage_seconds.items():
                per_stage[stage] = min(
                    per_stage.get(stage, seconds), seconds
                )
        programs.append(
            ProgramDigest(
                name=digest.name, suite=digest.suite,
                functions=digest.functions, extended=digest.extended,
                icc=digest.icc, polly_scops=digest.polly_scops,
                polly_reductions=digest.polly_reductions,
                stage_seconds=per_stage,
            )
        )
    return CorpusReport(programs=tuple(programs))


def test_serving_engine_and_measured_weights():
    """Acceptance for the serving engine and measured-cost sharding.

    Determinism: the persistent pool serves reports byte-identical to
    the batch engine, cold and warm.  Cost: measured-weight shards
    beat static-proxy shards on per-worker wall-clock, evaluated
    against an independent re-profile (never the weights themselves).
    """
    batch = detect_corpus(jobs=1, extended=True, baselines=True)

    # -- persistent serving engine: identical reports, cold and warm.
    options = PipelineOptions(jobs=2, extended=True, baselines=True,
                              granularity="function")
    with ServingEngine(options) as engine:
        started = time.perf_counter()
        cold = engine.serve()
        cold_wall = time.perf_counter() - started
        started = time.perf_counter()
        warm = engine.serve()
        warm_wall = time.perf_counter() - started

        # -- priority classes: an interactive submit overtakes a deep
        # batch backlog (weighted-fair dequeue), without changing
        # either report.
        keys = engine.keys()
        batch_job = engine.submit(priority=JobClass.BATCH)
        batch_units = batch_job._pending_units
        started = time.perf_counter()
        interactive_job = engine.submit(keys[:2],
                                        priority=JobClass.INTERACTIVE)
        interactive_report = interactive_job.result()
        interactive_wall = time.perf_counter() - started
        overtaken = batch_job._pending_units
        assert overtaken > 0  # the batch backlog was overtaken
        assert batch_job.result().fingerprint() == batch.fingerprint()
        assert interactive_report.programs == batch.programs[:2]
    assert cold.fingerprint() == batch.fingerprint()
    assert warm.fingerprint() == batch.fingerprint()
    assert cold.programs == batch.programs

    # -- measured-cost sharding vs the static proxy.
    units = plan_units([p.key for p in batch.programs], "program")

    def makespan(shards, truth) -> float:
        return max(
            sum(truth[unit.key] for unit in shard) for shard in shards
        )

    # Timing-based comparisons on shared/contended machines can catch
    # a noise burst in either profile; re-profile up to three times
    # before declaring a regression rather than gating CI on one
    # unlucky measurement.
    for attempt in range(3):
        profile = _stabilized_profile()
        evaluation = _stabilized_profile()
        weight = measured_weights(profile)
        truth = {
            digest.key: sum(digest.stage_seconds.values())
            for digest in evaluation.programs
        }
        per_jobs = {}
        static_total = measured_total = 0.0
        for jobs in WEIGHT_GRID:
            static_span = makespan(make_shards(units, jobs), truth)
            measured_span = makespan(
                make_shards(units, jobs, weight=weight), truth
            )
            per_jobs[jobs] = (static_span, measured_span)
            static_total += static_span
            measured_total += measured_span
        if measured_total < static_total:
            break

    # The acceptance bar: schedules built from measured costs beat the
    # static proxy on the wall-clock an independent profile implies.
    assert measured_total < static_total

    payload = {
        "cpu_count": multiprocessing.cpu_count(),
        "programs": len(batch.programs),
        "serving": {
            "workers": options.jobs,
            "granularity": options.granularity,
            "cold_wall_seconds": round(cold_wall, 4),
            "warm_wall_seconds": round(warm_wall, 4),
            "fingerprint_identical_to_batch": True,
        },
        "priority": {
            "batch_units_submitted": batch_units,
            "batch_units_pending_at_interactive_completion": overtaken,
            "interactive_programs": 2,
            "interactive_wall_seconds": round(interactive_wall, 4),
            "fingerprints_unchanged": True,
        },
        "measured_vs_static": {
            "profile_rounds": PROFILE_ROUNDS,
            "profile_attempts": attempt + 1,
            "jobs_grid": list(WEIGHT_GRID),
            "per_jobs_makespan_seconds": {
                str(jobs): {
                    "static": round(static_span, 5),
                    "measured": round(measured_span, 5),
                }
                for jobs, (static_span, measured_span) in per_jobs.items()
            },
            "static_total_seconds": round(static_total, 5),
            "measured_total_seconds": round(measured_total, 5),
            "win_percent": round(
                (static_total - measured_total) / static_total * 100, 2
            ),
        },
        "weights_profile": report_to_json(profile),
    }
    write_artifact("BENCH_serving.json", json.dumps(payload, indent=2))

    rows = [
        [str(jobs), f"{static_span * 1000:.1f} ms",
         f"{measured_span * 1000:.1f} ms",
         f"{(static_span - measured_span) / static_span * 100:+.1f}%"]
        for jobs, (static_span, measured_span) in per_jobs.items()
    ]
    rows.append(["TOTAL", f"{static_total * 1000:.1f} ms",
                 f"{measured_total * 1000:.1f} ms",
                 f"{(static_total - measured_total) / static_total * 100:+.1f}%"])
    text = table(
        ["jobs", "static-proxy makespan", "measured-cost makespan",
         "win"],
        rows,
        title="measured-cost sharding vs the static proxy "
              "(cross-validated per-worker wall-clock)",
    )
    print()
    print(write_artifact("bench_serving.txt", text))
