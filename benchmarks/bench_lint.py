"""Spec-lint micro-benchmark: the static analyzer over the registry.

The PR-8 acceptance measurement, recorded in ``results/BENCH_lint.json``:

* **clean**: the six shipped specs produce zero errors and zero
  warnings under ``--strict`` semantics — only ICSL009 engine-pruning
  notes remain, and their per-spec counts reconcile exactly with
  ``compile_plan(spec).conjuncts_pruned``;
* **determinism**: the rendered text report and the ``--json`` report
  are byte-identical across repeated runs (the report is a build
  artifact, so byte-stability is the contract);
* **cost**: wall-clock for the per-spec analyses alone and for the
  full registry sweep including the cross-spec subsumption pass on the
  synthesized micro-universe.  The sweep is the opt-in registry-gate
  price, so it must stay cheap: the asserted ceiling is
  ``REPRO_MAX_LINT_SECONDS`` (default 5s, generous for shared CI
  runners; the recorded number carries the real story).
"""

import json
import os
import time

from conftest import RESULTS_DIR, write_artifact
from repro.constraints import analyze_spec, lint_spec_files
from repro.constraints.analysis import exit_code, render_report, report_json
from repro.constraints.plan import compile_plan
from repro.constraints.specfile import BUILTIN_SPEC_FILES, builtin_spec_path
from repro.evaluation.render import table
from repro.idioms import IdiomRegistry

#: Measurement rounds (best-of-N wall clock reported).
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "5"))

#: Ceiling on one full registry sweep (per-spec + cross-spec).
MAX_LINT_SECONDS = float(os.environ.get("REPRO_MAX_LINT_SECONDS", "5.0"))


def _shipped_paths():
    return [builtin_spec_path(name) for name in BUILTIN_SPEC_FILES]


def test_lint_registry_sweep():
    paths = _shipped_paths()
    registry = IdiomRegistry()
    specs = [registry.spec(name) for name in registry.names()]
    for spec in specs:  # plan compilation is one-time, off the clock
        compile_plan(spec)

    # -- clean: shipped specs carry notes only ------------------------
    diags, parse_failed = lint_spec_files(paths)
    assert not parse_failed
    assert all(diag.severity == "note" for diag in diags)
    assert exit_code(diags, strict=True) == 0

    # -- reconciliation: note counts == the plan compiler's counter ---
    per_spec_rows = []
    for spec in specs:
        spec_diags = analyze_spec(spec)
        pruned = sum(
            diag.count or 0 for diag in spec_diags
            if diag.code in ("ICSL006", "ICSL007", "ICSL009")
        )
        assert pruned == compile_plan(spec).conjuncts_pruned
        per_spec_rows.append(
            [spec.name, len(spec.label_order), len(spec_diags), pruned]
        )

    # -- determinism: reports are byte-identical across runs ----------
    again, _ = lint_spec_files(paths)
    assert (report_json(diags, strict=True, files=paths)
            == report_json(again, strict=True, files=paths))
    assert (render_report(diags, notes=True)
            == render_report(again, notes=True))

    # -- cost: per-spec analyses vs the full cross-spec sweep ---------
    lint_spec_files(paths)  # warm the micro-universe cache
    best_per_spec = best_sweep = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for spec in specs:
            analyze_spec(spec)
        per_spec_wall = time.perf_counter() - started
        started = time.perf_counter()
        lint_spec_files(paths)
        sweep_wall = time.perf_counter() - started
        if best_per_spec is None or per_spec_wall < best_per_spec:
            best_per_spec = per_spec_wall
        if best_sweep is None or sweep_wall < best_sweep:
            best_sweep = sweep_wall
    assert best_sweep <= MAX_LINT_SECONDS, (
        f"registry lint sweep {best_sweep:.2f}s > {MAX_LINT_SECONDS}s ceiling"
    )

    # -- record into BENCH_lint.json ----------------------------------
    payload = {
        "rounds": ROUNDS,
        "specs": len(specs),
        "diagnostics": len(diags),
        "notes_only": True,
        "strict_exit_code": 0,
        "pruning_reconciles_with_plans": True,
        "reports_byte_deterministic": True,
        "per_spec_wall_seconds": round(best_per_spec, 4),
        "full_sweep_wall_seconds": round(best_sweep, 4),
        "asserted_ceiling_seconds": MAX_LINT_SECONDS,
    }
    write_artifact("BENCH_lint.json", json.dumps(payload, indent=2))

    rows = per_spec_rows + [
        ["(full sweep incl. cross-spec)", "", len(diags),
         f"{best_sweep * 1000:.0f} ms"],
    ]
    text = table(
        ["spec", "labels", "diagnostics", "pruned / wall"],
        rows,
        title=(
            f"spec lint: {len(specs)} shipped specs clean under --strict "
            f"(sweep best-of-{ROUNDS}: {best_sweep * 1000:.0f} ms)"
        ),
    )
    print()
    print(write_artifact("bench_lint.txt", text))
