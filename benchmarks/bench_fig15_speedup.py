"""Figure 15: speedup of exploited reductions versus the originals.

For each of EP, IS, histo, tpacf and kmeans: detect, outline, execute
sequentially and as privatized shards on the simulated 64-core machine,
and model the original hand-parallelized version's strategy.  The
benchmark time is dominated by real (interpreted) execution of the
workloads.
"""

import pytest

from conftest import write_artifact
from repro.evaluation.speedup import evaluate_benchmark
from repro.workloads.corpus import FIGURE15_BENCHMARKS

_ROWS = {}

#: Acceptable measured ranges: the *shape* of Figure 15 (who wins and
#: by roughly what factor), not the Opteron's absolute numbers.
_EXPECTED = {
    "EP": (1.3, 2.2),
    "IS": (2.0, 4.5),
    "histo": (1.5, 3.2),
    "tpacf": (15.0, 60.0),
}


@pytest.mark.parametrize("name", FIGURE15_BENCHMARKS)
def test_figure15_benchmark(benchmark, name):
    row = benchmark.pedantic(
        evaluate_benchmark, args=(name,), rounds=1, iterations=1
    )
    _ROWS[name] = row
    if name == "kmeans":
        assert row.ours is None
        assert "multiple histogram updates" in row.failure_reason
    else:
        assert row.ours is not None
        assert row.results_match, "parallel run diverged from sequential"
        low, high = _EXPECTED[name]
        assert low < row.ours < high, (name, row.ours)


def test_figure15_shape_and_render(benchmark):
    assert len(_ROWS) == len(FIGURE15_BENCHMARKS), "run the panels first"
    from repro.evaluation.speedup import SpeedupResult

    result = benchmark.pedantic(
        lambda: SpeedupResult(rows=[_ROWS[n] for n in
                                    FIGURE15_BENCHMARKS]),
        rounds=1, iterations=1,
    )
    text = result.render() + "\n\n" + result.render_bars()
    print()
    print(write_artifact("fig15_speedup.txt", text))
    # Shape checks from §6.3:
    assert _ROWS["EP"].original > _ROWS["EP"].ours        # coarse wins
    assert _ROWS["IS"].original > _ROWS["IS"].ours        # bucketing wins
    assert _ROWS["histo"].ours > _ROWS["histo"].original  # atomics lose
    assert _ROWS["tpacf"].original < 1.0                  # slowdown
    assert _ROWS["tpacf"].ours > 10.0                     # near-linear
