"""§6.1 detection cost: solver wall-clock per benchmark program.

The paper reports a 3.77s mean for the LLVM/C++ implementation on the
real suites; this harness measures our solver over the 40-program
corpus and regenerates the paper-vs-measured table.
"""

from conftest import write_artifact
from repro.evaluation.compile_time import run_compile_time


def test_compile_time(benchmark):
    result = benchmark.pedantic(run_compile_time, rounds=1, iterations=1)
    assert len(result.seconds) == 40
    text = result.render()
    print()
    print(write_artifact("compile_time.txt", text))
