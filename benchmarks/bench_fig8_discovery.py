"""Figure 8a/8b/8c: reductions detected per benchmark and per tool.

Regenerates the three panels of Figure 8 (and the §6.1 totals) while
benchmarking the full detection pipeline — constraint solving over a
whole suite per round.
"""

import pytest

from conftest import write_artifact
from repro.evaluation.discovery import run_discovery, summary_against_paper


@pytest.mark.parametrize(
    "suite_name,figure",
    [("NAS", "fig8a"), ("Parboil", "fig8b"), ("Rodinia", "fig8c")],
)
def test_figure8(benchmark, suite_name, figure):
    from repro.workloads import clear_cache

    def run():
        clear_cache()  # include compilation, like the paper's pass
        return run_discovery(suite_name)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # `ok` demands paper-matching rows AND zero UnitFailure records: a
    # partial report (served units abandoned after retries) must fail
    # the figure, not render as a quietly-smaller panel.
    assert result.ok
    text = result.render()
    print()
    print(write_artifact(f"{figure}_{suite_name.lower()}.txt", text))


def test_figure8_totals(benchmark):
    from repro.evaluation.discovery import run_all_discovery

    results = benchmark.pedantic(run_all_discovery, rounds=1, iterations=1)
    scalars = sum(r.totals[0] for r in results.values())
    histograms = sum(r.totals[1] for r in results.values())
    assert (scalars, histograms) == (84, 6)
    text = summary_against_paper(results)
    print()
    print(write_artifact("fig8_totals.txt", text))
