"""PEP 517/660 build backend shim for offline environments.

``pip install -e .`` normally creates an isolated build environment and
downloads ``setuptools``/``wheel`` into it.  This repository targets
fully offline machines, so the backend instead re-exposes the host
interpreter's ``setuptools`` inside pip's isolated environment and
delegates every hook to ``setuptools.build_meta``.
"""

import sys
import sysconfig


def _ensure_host_site_packages() -> None:
    for key in ("purelib", "platlib"):
        path = sysconfig.get_paths().get(key)
        if path and path not in sys.path:
            sys.path.append(path)


_ensure_host_site_packages()

from setuptools import build_meta as _backend  # noqa: E402


def get_requires_for_build_wheel(config_settings=None):
    """No extra requirements; the host environment provides everything."""
    return []


def get_requires_for_build_editable(config_settings=None):
    """No extra requirements; the host environment provides everything."""
    return []


def get_requires_for_build_sdist(config_settings=None):
    """No extra requirements; the host environment provides everything."""
    return []


def __getattr__(name):
    """Delegate all PEP 517/660 hooks to setuptools.build_meta."""
    return getattr(_backend, name)
