"""Quickstart: compile mini-C, detect reductions, run them in parallel.

Run with::

    python examples/quickstart.py
"""

from repro import (
    MachineModel,
    ParallelExecutor,
    compile_source,
    find_reductions,
    outline_loop,
    plan_all,
)
from repro.runtime.parallel import run_sequential

SOURCE = """
double values[4096];
int hist[64];
int keys[4096];
int n;
double total;

void setup(void) {
    for (int i = 0; i < n; i++) {
        values[i] = fmod(0.618 * i + 0.31, 1.0);
        keys[i] = (i * 7 + i / 5) % 64;
    }
}

void count_keys(void) {
    for (int i = 0; i < n; i++) {
        hist[keys[i]] = hist[keys[i]] + 1;
    }
}

double sum_values(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s = s + values[i];
    }
    return s;
}

int main(void) {
    n = 4096;
    setup();
    count_keys();
    total = sum_values();
    print_double(total);
    print_int(hist[0] + hist[63]);
    return 0;
}
"""


def main() -> None:
    # 1. Compile mini-C to canonical SSA.
    module = compile_source(SOURCE, "quickstart")

    # 2. Detect reductions with the constraint solver.
    report = find_reductions(module)
    print(report.summary())
    for scalar in report.scalars:
        print(f"  scalar reduction  {scalar.name}  op={scalar.op.value} "
              f"arrays={[b.short_name() for b in scalar.input_bases]}")
    for histogram in report.histograms:
        kind = "affine" if histogram.idx_affine else "indirect"
        print(f"  histogram         {histogram.name}  op="
              f"{histogram.op.value} ({kind} index)")

    # 3. Plan + outline the parallel tasks (§4 of the paper).
    tasks = []
    for function_reductions in report.functions:
        plans, failures = plan_all(module, function_reductions)
        for failure in failures:
            print(f"  transform refused: {failure}")
        for plan in plans:
            task = outline_loop(module, plan)
            print(f"  outlined task     {task.task.name}")
            tasks.append(task)

    # 4. Run sequentially and with 64 simulated threads; compare.
    _, seq_memory, seq_interp = run_sequential(module)
    executor = ParallelExecutor(module, tasks, threads=64)
    result = executor.run()
    assert result.output == seq_interp.output, "results must match!"

    machine = MachineModel(cores=64)
    t_seq = seq_interp.instructions_executed
    t_par = result.simulated_time(machine)
    print(f"\nsequential cost : {t_seq:>10} instruction-cycles")
    print(f"parallel cost   : {t_par:>10.0f} (64 simulated cores)")
    print(f"speedup         : {t_seq / t_par:.2f}x")
    print(f"outputs         : {result.output} (identical to sequential)")


if __name__ == "__main__":
    main()
