"""Extending the constraint language with a new idiom.

The paper's key architectural claim (§3, §8) is that the constraint
formulation *decouples specification from detection*: new idioms are
new constraint programs, not new detection algorithms.  This example
defines a *dot-product* idiom from the existing atoms — a for loop
whose accumulator update is ``acc + a[i] * b[i]`` over two distinct
arrays — and runs the unmodified generic solver on it.

Run with::

    python examples/custom_idiom.py
"""

from repro import compile_source
from repro.constraints import (
    ComputedOnlyFrom,
    ConstraintAnd,
    Distinct,
    FlowPolicy,
    IdiomSpec,
    InBlock,
    Opcode,
    PhiIncomingFromBlock,
    PhiOfTwo,
    SolverContext,
    detect,
)
from repro.idioms.forloop import (
    FOR_LOOP_LABEL_ORDER,
    for_loop_constraint,
    loop_invariant_in,
)


def _policies(ctx, assignment):
    acc = assignment["acc"]
    iterator = assignment["iterator"]
    data = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                      index_sources=(iterator,), require_affine_index=True)
    control = FlowPolicy(rejected=(iterator, acc),
                         index_sources=(iterator,),
                         require_affine_index=True)
    return data, control


def dot_product_spec() -> IdiomSpec:
    """acc' = acc + load(gep(base_a, i)) * load(gep(base_b, i))."""
    labels = FOR_LOOP_LABEL_ORDER + (
        "acc", "update", "acc_init", "product", "load_a", "load_b",
        "gep_a", "gep_b", "base_a", "base_b",
    )
    constraint = ConstraintAnd(
        for_loop_constraint(),
        PhiOfTwo("acc", "update", "acc_init"),
        InBlock("acc", "header"),
        PhiIncomingFromBlock("acc", "update", "latch"),
        PhiIncomingFromBlock("acc", "acc_init", "entry"),
        loop_invariant_in("acc_init", "entry"),
        # The update is acc + (a[i] * b[i]).
        Opcode("update", "fadd", ("acc", "product"), commutative=True),
        Opcode("product", "fmul", ("load_a", "load_b"), commutative=True),
        Opcode("load_a", "load", ("gep_a",)),
        Opcode("load_b", "load", ("gep_b",)),
        Opcode("gep_a", "gep", ("base_a", None)),
        Opcode("gep_b", "gep", ("base_b", None)),
        Distinct("base_a", "base_b"),
        Distinct("acc", "iterator"),
        ComputedOnlyFrom("update", "header", _policies,
                         extra_labels=("acc", "iterator")),
    )
    return IdiomSpec("dot-product", labels, constraint)


SOURCE = """
double xs[256]; double ys[256]; double ws[256]; int n;

double plain_dot(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + xs[i] * ys[i];
    return s;
}

double weighted_norm(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + ws[i] * ws[i];
    return s;
}

double plain_sum(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + xs[i];
    return s;
}
"""


def main() -> None:
    module = compile_source(SOURCE, "custom")
    spec = dot_product_spec()
    print(f"idiom {spec.name!r}: {len(spec.label_order)} labels")
    for function in module.defined_functions():
        ctx = SolverContext(function, module)
        solutions = detect(ctx, spec)
        if solutions:
            for solution in solutions:
                a = solution["base_a"].short_name()
                b = solution["base_b"].short_name()
                print(f"  {function.name}: dot product over {a} x {b}")
        else:
            print(f"  {function.name}: no dot product")
    # plain_dot matches; weighted_norm does not (same array twice —
    # Distinct(base_a, base_b) rejects it); plain_sum has no product.


if __name__ == "__main__":
    main()
