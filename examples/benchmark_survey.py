"""Survey the full 40-program corpus: the Figure 8 panels + §6.1 totals.

Run with::

    python examples/benchmark_survey.py
"""

from repro.evaluation.discovery import run_all_discovery, summary_against_paper
from repro.evaluation.scops import run_all_scops
from repro.evaluation.scops import summary_against_paper as scop_summary


def main() -> None:
    discovery = run_all_discovery()
    for suite_name, result in discovery.items():
        print(result.render())
        print()
    print(summary_against_paper(discovery))
    print()
    scops = run_all_scops()
    for suite_name, result in scops.items():
        print(result.render())
        print()
    print(scop_summary(scops))


if __name__ == "__main__":
    main()
