"""The paper's running example (Figure 2): NAS EP's gaussian histogram.

Walks through exactly the §2 story:

* the loop carries two scalar reductions (sx, sy) and one histogram
  (q[l]) behind data-dependent control flow and pure math calls;
* changing the branch condition to ``t1 <= sx`` (a control dependence
  on an intermediate result) destroys all three reductions;
* once detected, privatization parallelizes the loop.

Run with::

    python examples/ep_histogram.py
"""

from repro import compile_source, find_reductions, outline_loop, plan_all
from repro.runtime import MachineModel, ParallelExecutor
from repro.runtime.parallel import run_sequential

EP = """
const int NK = 4096;
double x[8192]; double q[16]; double sx; double sy;

void vranlc(void) {
    for (int i = 0; i < 2 * NK; i++) {
        x[i] = fmod(0.618033988 * (i + 1) + 0.318309886, 1.0);
    }
}

void gaussian_pairs(void) {
    double lsx = 0.0;
    double lsy = 0.0;
    for (int i = 0; i < NK; i++) {
        double x1 = 2.0 * x[2 * i] - 1.0;
        double x2 = 2.0 * x[2 * i + 1] - 1.0;
        double t1 = x1 * x1 + x2 * x2;
        if (t1 <= 1.0) {
            double t2 = sqrt(-2.0 * log(t1) / t1);
            double t3 = x1 * t2;
            double t4 = x2 * t2;
            int l = (int) fmax(fabs(t3), fabs(t4));
            q[l] = q[l] + 1.0;
            lsx = lsx + t3;
            lsy = lsy + t4;
        }
    }
    sx = lsx;
    sy = lsy;
}

int main(void) {
    vranlc();
    gaussian_pairs();
    print_double(sx);
    print_double(sy);
    print_double(q[0] + q[1] + q[2]);
    return 0;
}
"""

#: §2's counterexample: the condition reads the accumulator.
EP_BROKEN = EP.replace("if (t1 <= 1.0)", "if (t1 <= lsx)")


def main() -> None:
    print("=== Figure 2: the EP kernel ===")
    module = compile_source(EP, "ep")
    report = find_reductions(module)
    print(report.summary())
    for scalar in report.scalars:
        print(f"  scalar   : {scalar.name} (op {scalar.op.value})")
    for histogram in report.histograms:
        print(f"  histogram: {histogram.name} (op {histogram.op.value}); "
              f"runtime checks: "
              f"{[c.describe() for c in histogram.runtime_checks]}")

    print("\n=== §2 counterexample: condition changed to t1 <= sx ===")
    broken = compile_source(EP_BROKEN, "ep_broken")
    broken_report = find_reductions(broken)
    print(broken_report.summary())
    assert broken_report.counts() == (0, 0), (
        "a control dependence on an intermediate result must kill "
        "the reductions"
    )
    print("  all reductions correctly rejected")

    print("\n=== §4: privatized parallel execution ===")
    tasks = []
    for function_reductions in report.functions:
        plans, _ = plan_all(module, function_reductions)
        tasks.extend(outline_loop(module, plan) for plan in plans)
    _, _, seq = run_sequential(module)
    executor = ParallelExecutor(module, tasks, threads=64)
    result = executor.run()
    assert result.output == seq.output
    machine = MachineModel()
    speedup = seq.instructions_executed / result.simulated_time(machine)
    print(f"  sequential output : {seq.output}")
    print(f"  parallel output   : {result.output}")
    print(f"  simulated speedup : {speedup:.2f}x on 64 cores "
          f"(paper: +62% full-program, coverage-limited)")


if __name__ == "__main__":
    main()
