/* The two §3.1 idioms in one file: a scalar sum reduction and an
 * indirect ("true") histogram.  `python -m repro detect` finds both;
 * `python -m repro parallelize` outlines and runs them on the
 * simulated multicore machine. */

double a[32]; int hist[8]; int keys[32]; int n;

double total(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + a[i];
    return s;
}

void count(void) {
    for (int i = 0; i < n; i++) hist[keys[i]]++;
}

int main(void) {
    n = 32;
    for (int i = 0; i < n; i++) { a[i] = fmod(i * 0.7, 1.0); keys[i] = i % 8; }
    count();
    print_double(total());
    return 0;
}
