"""Legacy setup shim.

The offline environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on modern environments) work everywhere.

The shipped ``.icsl`` idiom specification files under
``repro/constraints/specs/`` are package data: the spec-file path is
the first-class detection path, so installs must carry them (see also
``MANIFEST.in`` for sdists).
"""

from setuptools import find_packages, setup

setup(
    name="repro-general-reductions",
    version="0.3.0",
    description=(
        "Constraint-based discovery and exploitation of general "
        "reductions (CGO 2017 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.constraints": ["specs/*.icsl"]},
    include_package_data=True,
    python_requires=">=3.10",
)
