"""Legacy setup shim.

The offline environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on modern environments) work everywhere.
"""

from setuptools import setup

setup()
