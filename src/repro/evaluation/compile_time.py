"""Experiment text-compile: detection time per benchmark program.

§6.1 reports "the compile time cost of our detection algorithm was on
average 3.77 seconds per benchmark program" for the C++/LLVM
implementation.  This experiment measures our Python solver's wall
clock over the same 40-program corpus — absolute values differ (and,
amusingly, the Python prototype analyses far smaller programs much
faster), but the harness demonstrates that detection cost is measured
the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..idioms import find_reductions
from ..workloads import all_programs
from . import paper
from .render import table


@dataclass
class CompileTimeResult:
    """Solver wall-clock per program."""

    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        """Mean detection seconds per program."""
        if not self.seconds:
            return 0.0
        return sum(self.seconds.values()) / len(self.seconds)

    @property
    def slowest(self) -> tuple[str, float]:
        """The most expensive program."""
        name = max(self.seconds, key=self.seconds.get)
        return name, self.seconds[name]

    def render(self) -> str:
        """Paper-vs-measured summary."""
        name, worst = self.slowest
        rows = [
            ["mean detection seconds/program", paper.COMPILE_SECONDS_MEAN,
             round(self.mean, 4)],
            ["slowest program", "-", f"{name} ({worst:.3f}s)"],
            ["programs analysed", 40, len(self.seconds)],
        ]
        return table(["quantity", "paper (LLVM/C++)", "measured (this repo)"],
                     rows, title="§6.1 detection cost")


def run_compile_time() -> CompileTimeResult:
    """Measure detection wall-clock over the full corpus."""
    result = CompileTimeResult()
    for program in all_programs():
        module = program.compile()
        report = find_reductions(module)
        result.seconds[f"{program.suite}/{program.name}"] = (
            report.solve_seconds
        )
    return result
