"""Plain-text rendering of experiment results (tables and bar charts)."""

from __future__ import annotations


def table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width table with a separator under the header."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cell.ljust(width) for cell, width in zip(cells[0], widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def bar_chart(
    labels: list[str],
    values: list[float],
    title: str = "",
    width: int = 40,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal ASCII bar chart (linear scale)."""
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(
            f"{label.rjust(label_width)} |{bar} {fmt.format(value)}"
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)
