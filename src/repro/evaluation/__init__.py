"""Experiment harness: one module per table/figure of the paper.

* ``discovery``   — Figure 8a/8b/8c (+ §6.1 totals)
* ``scops``       — Figures 9-11 (+ §6.1 SCoP statistics)
* ``coverage``    — Figures 12-14 (+ §6.2 headline numbers)
* ``speedup``     — Figure 15 (+ §6.3 numbers)
* ``compile_time``— §6.1 detection cost
* ``paper``       — every number the paper states, for comparison
"""

from . import compile_time, coverage, discovery, paper, render, scops, speedup
from .compile_time import CompileTimeResult, run_compile_time
from .coverage import CoverageResult, run_all_coverage, run_coverage
from .discovery import DiscoveryResult, run_all_discovery, run_discovery
from .scops import ScopResult, run_all_scops, run_scops
from .speedup import SpeedupResult, SpeedupRow, evaluate_benchmark, run_figure15

__all__ = [
    "paper",
    "render",
    "discovery",
    "scops",
    "coverage",
    "speedup",
    "compile_time",
    "run_discovery",
    "run_all_discovery",
    "DiscoveryResult",
    "run_scops",
    "run_all_scops",
    "ScopResult",
    "run_coverage",
    "run_all_coverage",
    "CoverageResult",
    "run_figure15",
    "evaluate_benchmark",
    "SpeedupResult",
    "SpeedupRow",
    "run_compile_time",
    "CompileTimeResult",
]
