"""Experiment fig12/fig13/fig14: runtime coverage of reduction regions.

Executes every corpus program through the interpreter and measures the
fraction of dynamic instructions spent inside detected scalar-reduction
and histogram-reduction loops (§6.2), including the headline statistic:
histogram regions average ~68% of the runtime in the programs that
contain them, while scalar regions are mostly irrelevant — except
sgemm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..idioms import find_reductions
from ..runtime import profile_coverage
from ..workloads import suite
from . import paper
from .render import bar_chart, table


@dataclass
class CoverageRow:
    """One benchmark's reduction-region coverage."""

    benchmark: str
    scalar_coverage: float
    histogram_coverage: float
    total_instructions: int


@dataclass
class CoverageResult:
    """One suite's Figure 12/13/14 panel."""

    suite: str
    rows: list[CoverageRow] = field(default_factory=list)

    def render(self) -> str:
        """The panel as a table."""
        rows = [
            [r.benchmark, r.scalar_coverage, r.histogram_coverage,
             r.total_instructions]
            for r in self.rows
        ]
        return table(
            ["benchmark", "scalar cov", "histogram cov", "instructions"],
            rows,
            title=f"Figures 12-14 ({self.suite}): runtime coverage",
        )

    def render_bars(self) -> str:
        """Histogram coverage as a bar chart (the figures' dark bars)."""
        return bar_chart(
            [r.benchmark for r in self.rows],
            [r.histogram_coverage for r in self.rows],
            title=f"{self.suite}: histogram-region coverage",
        )


def run_coverage(suite_name: str) -> CoverageResult:
    """Reproduce one coverage panel (executes every program)."""
    result = CoverageResult(suite_name)
    for program in suite(suite_name):
        module = program.compile()
        report = find_reductions(module)
        profile = profile_coverage(module, report)
        result.rows.append(
            CoverageRow(
                benchmark=program.name,
                scalar_coverage=round(profile.scalar_coverage, 4),
                histogram_coverage=round(profile.histogram_coverage, 4),
                total_instructions=profile.total_instructions,
            )
        )
    return result


def run_all_coverage() -> dict[str, CoverageResult]:
    """All three coverage panels."""
    return {name: run_coverage(name) for name in
            ("NAS", "Parboil", "Rodinia")}


def summary_against_paper(results: dict[str, CoverageResult]) -> str:
    """§6.2 headline numbers, paper vs measured."""
    histogram_rows = [
        r
        for result in results.values()
        for r in result.rows
        if r.histogram_coverage > 0
    ]
    mean_cov = (
        sum(r.histogram_coverage for r in histogram_rows)
        / len(histogram_rows)
        if histogram_rows
        else 0.0
    )
    ep = next(
        (r for r in results["NAS"].rows if r.benchmark == "EP"), None
    )
    sgemm = next(
        (r for r in results["Parboil"].rows if r.benchmark == "sgemm"), None
    )
    rows = [
        ["mean histogram coverage (histogram programs)",
         paper.MEAN_HISTOGRAM_COVERAGE, round(mean_cov, 3)],
        ["EP reduction coverage", paper.EP_COVERAGE,
         ep.histogram_coverage if ep else None],
        ["sgemm scalar coverage (the §6.2 exception)", "high",
         sgemm.scalar_coverage if sgemm else None],
    ]
    return table(["quantity", "paper", "measured"], rows,
                 title="§6.2 coverage: paper vs measured")
