"""Experiment fig9/fig10/fig11: SCoPs per benchmark (Polly baseline).

Reports, per program, how many static control parts the Polly model
finds and how many of them contain reductions — plus the §6.1 suite
statistics (23 of 40 programs with zero SCoPs; the four NAS stencil
codes holding 59.6% of all SCoPs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import polly
from ..workloads import suite
from . import paper
from .render import table


@dataclass
class ScopRow:
    """One benchmark's SCoP population."""

    benchmark: str
    scops: int
    reduction_scops: int
    expected_ok: bool

    @property
    def other_scops(self) -> int:
        """SCoPs not carrying reductions (the grey bars of Fig. 9-11)."""
        return self.scops - self.reduction_scops


@dataclass
class ScopResult:
    """One suite's Figure 9/10/11 panel."""

    suite: str
    rows: list[ScopRow] = field(default_factory=list)

    @property
    def total_scops(self) -> int:
        """All SCoPs in the suite."""
        return sum(r.scops for r in self.rows)

    @property
    def zero_scop_programs(self) -> int:
        """Programs in which Polly finds nothing."""
        return sum(1 for r in self.rows if r.scops == 0)

    def render(self) -> str:
        """The panel as a table."""
        rows = [
            [r.benchmark, r.reduction_scops, r.other_scops, r.scops,
             "ok" if r.expected_ok else "MISMATCH"]
            for r in self.rows
        ]
        rows.append(["TOTAL", sum(r.reduction_scops for r in self.rows),
                     sum(r.other_scops for r in self.rows),
                     self.total_scops, ""])
        return table(
            ["benchmark", "reduction SCoPs", "other SCoPs", "total",
             "check"],
            rows,
            title=f"Figures 9-11 ({self.suite}): SCoPs found by Polly",
        )


def run_scops(suite_name: str) -> ScopResult:
    """Reproduce one SCoP panel."""
    result = ScopResult(suite_name)
    for program in suite(suite_name):
        module = program.compile()
        report = polly.analyze_module(module)
        scops, reduction_scops = report.counts()
        expectation = program.expectation
        result.rows.append(
            ScopRow(
                benchmark=program.name,
                scops=scops,
                reduction_scops=reduction_scops,
                expected_ok=(
                    scops == expectation.scops
                    and reduction_scops == expectation.reduction_scops
                ),
            )
        )
    return result


def run_all_scops() -> dict[str, ScopResult]:
    """All three SCoP panels."""
    return {name: run_scops(name) for name in ("NAS", "Parboil", "Rodinia")}


def summary_against_paper(results: dict[str, ScopResult]) -> str:
    """The §6.1 SCoP statistics, paper vs measured."""
    total = sum(r.total_scops for r in results.values())
    zero = sum(r.zero_scop_programs for r in results.values())
    nas = results["NAS"]
    stencils = sum(
        r.scops for r in nas.rows if r.benchmark in ("LU", "BT", "SP", "MG")
    )
    rows = [
        ["total SCoPs", paper.TOTAL_SCOPS, total],
        ["programs with zero SCoPs", paper.ZERO_SCOP_PROGRAMS, zero],
        ["SCoPs in LU/BT/SP/MG", paper.STENCIL_PROGRAM_SCOPS, stencils],
        ["stencil share of all SCoPs",
         paper.STENCIL_SCOP_FRACTION,
         round(stencils / total, 3) if total else 0.0],
    ]
    for suite_name, result in results.items():
        rows.append(
            [f"zero-SCoP fraction ({suite_name})",
             paper.ZERO_SCOP_FRACTION[suite_name],
             round(result.zero_scop_programs / len(result.rows), 3)]
        )
    return table(["quantity", "paper", "measured"], rows,
                 title="§6.1 SCoP statistics: paper vs measured")
