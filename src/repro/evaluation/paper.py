"""Paper-reported reference numbers (for paper-vs-measured tables).

Everything stated numerically in §6 of Ginsbach & O'Boyle (CGO 2017)
is collected here so the harness can print measured values next to the
published ones.  Per-benchmark bar heights that the paper only shows
graphically are not invented; the corpus encodes the stated facts
(totals, maxima, named hits/misses) and EXPERIMENTS.md documents the
reconstruction.
"""

from __future__ import annotations

#: §6.1 totals for our detector.
TOTAL_SCALAR_REDUCTIONS = 84
TOTAL_HISTOGRAM_REDUCTIONS = 6

#: §6.1: icc detections per suite ("25 out of 38 in NAS, 3 out of 11 in
#: Parboil and 23 out of 38 in Rodinia").
ICC_PER_SUITE = {"NAS": 25, "Parboil": 3, "Rodinia": 23}

#: §6.1: Polly+Reductions hits ("just 2 scalar reductions in the NAS
#: benchmarks (BT and SP), 1 in Parboil (sgemm) and 1 in Rodinia
#: (leukocyte)").
POLLY_PER_SUITE = {"NAS": 2, "Parboil": 1, "Rodinia": 1}
POLLY_HIT_BENCHMARKS = ("BT", "SP", "sgemm", "leukocyte")

#: §6.1: suite-level maxima and named counts.
UA_REDUCTIONS = 11
CUTCP_REDUCTIONS = 7
PARTICLEFILTER_REDUCTIONS = 9
HISTOGRAMS_PER_SUITE = {"NAS": 3, "Parboil": 2, "Rodinia": 1}
RODINIA_PROGRAMS_WITH_REDUCTIONS = 15

#: §6.1: SCoP statistics (Figures 9-11).
ZERO_SCOP_PROGRAMS = 23
ZERO_SCOP_FRACTION = {"NAS": 0.40, "Parboil": 0.636, "Rodinia": 0.632}
TOTAL_SCOPS = 62
STENCIL_PROGRAM_SCOPS = 37  # LU, BT, SP and MG together
STENCIL_SCOP_FRACTION = 0.596

#: §6.1: mean detection time per benchmark program, seconds (LLVM/C++).
COMPILE_SECONDS_MEAN = 3.77

#: §6.2: mean histogram-region runtime coverage over the programs that
#: contain histograms.
MEAN_HISTOGRAM_COVERAGE = 0.68
#: §6.3: EP's reduction region covers 46% of the runtime.
EP_COVERAGE = 0.46

#: §6.3 / Figure 15: speedups versus the sequential baseline.
#: ``ours`` is the automatic reduction parallelization; ``original`` is
#: the hand-parallelized version shipped with the suites.  None means
#: the paper gives no exact number (EP's original is only shown to be
#: higher than ours; kmeans' transform fails, with the original —
#: entirely reduction-based — standing in for the achievable speedup).
FIGURE15 = {
    "EP": {"ours": 1.62, "original": None, "note": "coarse parallelism wins"},
    "IS": {"ours": 2.9, "original": 6.3, "note": "bin distribution wins"},
    "histo": {"ours": 2.2771, "original": 1.0,
              "note": "original achieves no speedup"},
    "tpacf": {"ours": 35.7, "original": 0.9,
              "note": "original's critical section causes slowdown"},
    "kmeans": {"ours": None, "original": None,
               "note": "transform fails: multiple histogram updates in "
                       "a nested loop"},
}

#: §6.3: theoretical EP bound from Amdahl at 46% coverage on 64 cores.
EP_AMDAHL_BOUND = 1.83
