"""Experiment fig8a/fig8b/fig8c: reductions detected per benchmark.

For every program of a suite, runs our constraint-based detector plus
the icc and Polly baseline models, and reports the per-benchmark counts
that Figure 8 plots, together with the §6.1 totals.

Detection runs through the corpus pipeline
(:func:`repro.pipeline.detect_corpus`): one batched run over the
requested suites — sharded across processes when ``jobs > 1`` — whose
deterministically merged digests feed the panels, so the paper driver
and the production path cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pipeline import CorpusReport, detect_corpus
from ..workloads import suite
from . import paper
from .render import table


@dataclass
class DiscoveryRow:
    """One benchmark's detection outcome across tools."""

    benchmark: str
    ours_scalars: int
    ours_histograms: int
    icc: int
    polly: int
    expected_ok: bool
    #: True when the pipeline abandoned the program's units (see
    #: :attr:`~repro.pipeline.CorpusReport.failures`); the counts are
    #: zeros and must not be mistaken for "nothing detected".
    failed: bool = False


@dataclass
class DiscoveryResult:
    """One suite's Figure 8 panel."""

    suite: str
    rows: list[DiscoveryRow] = field(default_factory=list)
    #: The report's :class:`~repro.pipeline.UnitFailure` records for
    #: this suite — surfaced on the panel so a partial report can never
    #: silently masquerade as a full one.
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All rows matched the paper *and* no unit failed."""
        return not self.failures and all(r.expected_ok for r in self.rows)

    @property
    def totals(self) -> tuple[int, int, int, int]:
        """(ours scalar, ours histogram, icc, polly) suite totals."""
        return (
            sum(r.ours_scalars for r in self.rows),
            sum(r.ours_histograms for r in self.rows),
            sum(r.icc for r in self.rows),
            sum(r.polly for r in self.rows),
        )

    def render(self) -> str:
        """The Figure 8 panel as a table."""
        rows = [
            [r.benchmark, r.ours_scalars, r.ours_histograms, r.icc,
             r.polly,
             "FAILED" if r.failed
             else ("ok" if r.expected_ok else "MISMATCH")]
            for r in self.rows
        ]
        scalars, histograms, icc_total, polly_total = self.totals
        rows.append(
            ["TOTAL", scalars, histograms, icc_total, polly_total, ""]
        )
        text = table(
            ["benchmark", "scalar", "histogram", "icc", "polly", "check"],
            rows,
            title=f"Figure 8 ({self.suite}): reductions detected",
        )
        if self.failures:
            lines = [text, "", f"{len(self.failures)} FAILED unit(s):"]
            lines.extend(
                f"  {failure.describe()}" for failure in self.failures
            )
            text = "\n".join(lines)
        return text


def run_discovery(
    suite_name: str,
    jobs: int = 1,
    report: CorpusReport | None = None,
    granularity: str = "program",
    weights_from: str | None = None,
    feedback_from: str | None = None,
) -> DiscoveryResult:
    """Reproduce one panel of Figure 8.

    ``report`` reuses an existing pipeline run (``run_all_discovery``
    shares one batched run across all three panels); otherwise the
    pipeline runs here, sharded over ``jobs`` worker processes at the
    requested granularity — the panels are identical either way, by
    the pipeline's fingerprint contract (feedback-reordered runs
    included: a reorder moves search cost, never detections).

    A report carrying :class:`~repro.pipeline.UnitFailure` records —
    a served run whose units exhausted their retry budget — renders
    those programs as ``FAILED`` rows (zero counts, never
    ``expected_ok``) and lists the failures under the panel, so a
    partial report is visibly partial.
    """
    if report is None:
        report = detect_corpus(
            jobs=jobs, baselines=True, suites=(suite_name,),
            granularity=granularity, weights_from=weights_from,
            feedback_from=feedback_from,
        )
    result = DiscoveryResult(suite_name)
    failed_keys = {
        failure.key for failure in report.failures
    }
    result.failures = [
        failure for failure in report.failures
        if failure.suite == suite_name
    ]
    for program in suite(suite_name):
        if (program.name, program.suite) in failed_keys:
            result.rows.append(
                DiscoveryRow(
                    benchmark=program.name,
                    ours_scalars=0, ours_histograms=0, icc=0, polly=0,
                    expected_ok=False, failed=True,
                )
            )
            continue
        digest = report.program(program.name, program.suite)
        scalars, histograms = digest.counts()
        icc_count = digest.icc
        polly_count = digest.polly_reductions
        expectation = program.expectation
        result.rows.append(
            DiscoveryRow(
                benchmark=program.name,
                ours_scalars=scalars,
                ours_histograms=histograms,
                icc=icc_count,
                polly=polly_count,
                expected_ok=(
                    scalars == expectation.ours_scalars
                    and histograms == expectation.ours_histograms
                    and icc_count == expectation.icc
                    and polly_count == expectation.polly_reductions
                ),
            )
        )
    return result


def run_all_discovery(
    jobs: int = 1,
    granularity: str = "program",
    weights_from: str | None = None,
    feedback_from: str | None = None,
) -> dict[str, DiscoveryResult]:
    """All three Figure 8 panels from one batched pipeline run."""
    report = detect_corpus(jobs=jobs, baselines=True,
                           granularity=granularity,
                           weights_from=weights_from,
                           feedback_from=feedback_from)
    return {
        name: run_discovery(name, report=report)
        for name in ("NAS", "Parboil", "Rodinia")
    }


def summary_against_paper(results: dict[str, DiscoveryResult]) -> str:
    """Paper-vs-measured totals (§6.1)."""
    scalars = sum(r.totals[0] for r in results.values())
    histograms = sum(r.totals[1] for r in results.values())
    rows = [
        ["scalar reductions (ours)", paper.TOTAL_SCALAR_REDUCTIONS, scalars],
        ["histogram reductions (ours)", paper.TOTAL_HISTOGRAM_REDUCTIONS,
         histograms],
    ]
    for suite_name, result in results.items():
        rows.append(
            [f"icc reductions ({suite_name})",
             paper.ICC_PER_SUITE[suite_name], result.totals[2]]
        )
        rows.append(
            [f"Polly reductions ({suite_name})",
             paper.POLLY_PER_SUITE[suite_name], result.totals[3]]
        )
    return table(["quantity", "paper", "measured"], rows,
                 title="§6.1 totals: paper vs measured")
