"""Experiment fig15: speedup of exploited reductions (§6.3).

For each benchmark with significant histogram coverage (EP, IS, histo,
tpacf, kmeans) this experiment

1. detects the reductions, plans and outlines the parallel tasks (§4),
2. runs the program sequentially and with the reduction loops executed
   as privatized shards on the simulated 64-core machine (validating
   that both runs produce the same results),
3. models the *original* hand-parallelized version's strategy on the
   same measurements — coarse outer parallelism (EP), bin distribution
   (IS), atomic updates (histo), a critical section (tpacf) and
   reduction parallelism (kmeans, where our transform fails exactly as
   in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analysis.loops import LoopInfo
from ..idioms import find_reductions
from ..runtime import Interpreter, MachineModel, Memory, ParallelExecutor
from ..runtime.parallel import ParallelRunResult
from ..transform import outline_loop, plan_all
from ..workloads import program
from ..workloads.corpus import FIGURE15_BENCHMARKS
from . import paper
from .render import bar_chart, table


@dataclass
class SpeedupRow:
    """One Figure 15 benchmark."""

    benchmark: str
    ours: float | None
    original: float | None
    original_strategy: str
    failure_reason: str | None = None
    results_match: bool | None = None
    paper_ours: float | None = None
    paper_original: float | None = None


@dataclass
class SpeedupResult:
    """The whole Figure 15 experiment."""

    rows: list[SpeedupRow] = field(default_factory=list)
    threads: int = 64

    def render(self) -> str:
        """Figure 15 as a table."""
        rows = []
        for r in self.rows:
            rows.append([
                r.benchmark,
                "fail" if r.ours is None else f"{r.ours:.2f}x",
                "-" if r.original is None else f"{r.original:.2f}x",
                r.original_strategy,
                "-" if r.paper_ours is None else f"{r.paper_ours:.2f}x",
                "-" if r.paper_original is None else
                f"{r.paper_original:.2f}x",
                r.failure_reason or ("ok" if r.results_match else ""),
            ])
        return table(
            ["benchmark", "ours", "original", "strategy", "paper ours",
             "paper orig", "note"],
            rows,
            title=f"Figure 15: speedup vs sequential ({self.threads} "
                  f"threads)",
        )

    def render_bars(self) -> str:
        """Our speedups as a bar chart."""
        rows = [r for r in self.rows if r.ours is not None]
        return bar_chart(
            [r.benchmark for r in rows],
            [r.ours for r in rows],
            title="Figure 15: reduction-parallel speedup (ours)",
        )


def evaluate_benchmark(
    name: str,
    threads: int = 64,
    machine: MachineModel | None = None,
) -> SpeedupRow:
    """Run the Figure 15 experiment for one benchmark."""
    machine = machine or MachineModel(cores=threads)
    bench = program(name)
    module = bench.fresh_module()
    report = find_reductions(module)

    tasks = []
    failures = []
    histogram_loop_failed = False
    for function_reductions in report.functions:
        plans, function_failures = plan_all(module, function_reductions)
        failures.extend(function_failures)
        histogram_headers = {
            id(h.loop.header) for h in function_reductions.histograms
        }
        for failure in function_failures:
            if id(failure.loop.header) in histogram_headers:
                histogram_loop_failed = True
        for plan in plans:
            tasks.append(outline_loop(module, plan))

    # Sequential baseline.
    memory = Memory(module)
    interp = Interpreter(module, memory)
    interp.call(module.get_function("main"), [])
    t_seq = interp.instructions_executed
    seq_output = list(interp.output)
    seq_memory = memory.snapshot()

    row = SpeedupRow(
        benchmark=name,
        ours=None,
        original=None,
        original_strategy=bench.original_strategy or "none",
        paper_ours=paper.FIGURE15.get(name, {}).get("ours"),
        paper_original=paper.FIGURE15.get(name, {}).get("original"),
    )

    parallel_result: ParallelRunResult | None = None
    if histogram_loop_failed or not tasks:
        reasons = "; ".join(str(f) for f in failures) or "no plans"
        row.failure_reason = f"transform failed: {reasons}"
    else:
        executor = ParallelExecutor(module, tasks, threads=threads)
        parallel_result = executor.run()
        row.results_match = _results_match(
            seq_output, parallel_result.output, seq_memory,
            parallel_result.memory.snapshot(),
        )
        t_par = parallel_result.simulated_time(machine)
        row.ours = t_seq / t_par if t_par > 0 else None

    row.original = _original_speedup(
        bench.original_strategy, module, interp, t_seq, parallel_result,
        report, threads, machine,
    )
    return row


def run_figure15(
    threads: int = 64, machine: MachineModel | None = None
) -> SpeedupResult:
    """Reproduce Figure 15 across all five benchmarks."""
    result = SpeedupResult(threads=threads)
    for name in FIGURE15_BENCHMARKS:
        result.rows.append(evaluate_benchmark(name, threads, machine))
    return result


# -- original parallel version models (§6.3) -----------------------------------


def _original_speedup(strategy, module, seq_interp, t_seq, parallel_result,
                      report, threads, machine: MachineModel):
    if strategy is None:
        return None
    if strategy == "coarse":
        # Coarse outer parallelism: every loop region runs in parallel.
        loop_instructions = _loop_instructions(module, seq_interp)
        coverage = loop_instructions / t_seq if t_seq else 0.0
        denominator = (1 - coverage) + coverage / threads
        return 1.0 / (denominator + machine.spawn_path_cost(threads) / t_seq)
    if strategy == "reduction":
        # What reduction parallelism would achieve (the paper includes
        # kmeans "as speedup achievable by reduction parallelism").
        histogram_instructions = _histogram_instructions(seq_interp, report)
        coverage = histogram_instructions / t_seq if t_seq else 0.0
        region = (
            coverage / threads
            + (machine.spawn_path_cost(threads)
               + machine.merge_path_cost(threads, 64)) / t_seq
        )
        return 1.0 / ((1 - coverage) + region)
    if parallel_result is None:
        return None
    outside = parallel_result.sequential_cost
    if strategy == "bucketed":
        # IS's original: distribute keys into disjoint bins first (an
        # extra pass over the data), then no merge is needed.
        total = outside
        for record in parallel_result.regions:
            total += (
                2 * record.total_work() / threads
                + machine.spawn_path_cost(threads)
            )
        return t_seq / total
    if strategy == "atomic":
        # histo's original: atomic bin updates; contention serializes
        # the read-modify-writes.
        total = outside
        for record in parallel_result.regions:
            total += (
                record.total_work() / threads
                + record.iterations * machine.atomic_update_cost
            )
        return t_seq / total
    if strategy == "critical":
        # tpacf's original: a critical section around every update
        # (§6.3: "implemented poorly using a critical section").
        total = outside
        for record in parallel_result.regions:
            total += (
                record.total_work() / threads
                + record.iterations * machine.critical_section_cost
            )
        return t_seq / total
    return None


def _loop_instructions(module, interp: Interpreter) -> int:
    total = 0
    for function in module.defined_functions():
        loop_info = LoopInfo(function)
        counted = set()
        for loop in loop_info.loops:
            for block in loop.blocks:
                if id(block) not in counted:
                    counted.add(id(block))
                    total += interp.block_counts.get(id(block), 0)
    return total


def _histogram_instructions(interp: Interpreter, report) -> int:
    total = 0
    counted = set()
    for histogram in report.histograms:
        for block in histogram.loop.blocks:
            if id(block) not in counted:
                counted.add(id(block))
                total += interp.block_counts.get(id(block), 0)
    return total


def _results_match(seq_output, par_output, seq_memory, par_memory) -> bool:
    if len(seq_output) != len(par_output):
        return False
    for a, b in zip(seq_output, par_output):
        if not _values_close(a, b):
            return False
    for name, seq_data in seq_memory.items():
        par_data = par_memory.get(name)
        if par_data is None or len(par_data) != len(seq_data):
            return False
        for a, b in zip(seq_data, par_data):
            if not math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-6):
                return False
    return True


def _values_close(a: str, b: str) -> bool:
    if a == b:
        return True
    try:
        return math.isclose(float(a), float(b), rel_tol=1e-6, abs_tol=1e-4)
    except ValueError:
        return False
