"""Scalar reduction idiom — §3.1.1 of the paper.

On top of the for-loop tuple, a scalar reduction binds three more
labels:

* ``acc`` — the accumulator PHI in the loop header (condition 2: a
  scalar value updated every iteration — the PHI *is* the per-iteration
  value);
* ``acc_init`` — its value on loop entry (loop invariant);
* ``acc_update`` — its value after one iteration (conditions 3+4: a
  term of the old value, values read from arrays at indices affine in
  the iterator, and loop constants only — enforced by generalized graph
  domination, with branch conditions additionally forbidden from using
  the accumulator, which rejects the §2 ``t1 <= sx`` counterexample).
"""

from __future__ import annotations

from ..constraints import (
    Assignment,
    ComputedOnlyFrom,
    ConstraintAnd,
    Distinct,
    FlowPolicy,
    IdiomSpec,
    InBlock,
    PhiIncomingFromBlock,
    PhiOfTwo,
    SolverContext,
)
from ..constraints.predicates import update_in_loop
from .forloop import FOR_LOOP_LABEL_ORDER, for_loop_constraint, loop_invariant_in

SCALAR_REDUCTION_LABEL_ORDER: tuple[str, ...] = FOR_LOOP_LABEL_ORDER + (
    "acc",
    "acc_update",
    "acc_init",
)


def _reduction_policies(ctx: SolverContext, assignment: Assignment):
    """Allowed-input sets for the scalar reduction flow constraint.

    Data slice: the accumulator itself, loads from loop-invariant arrays
    at affine indices, loop invariants, pure calls.  Control slice: the
    same *minus* the accumulator — conditions may not observe partial
    results.  The iterator may appear in address computations but not in
    the reduced value (§3.1.1 condition 4).
    """
    acc = assignment["acc"]
    iterator = assignment["iterator"]
    data = FlowPolicy(
        extra_sources=(acc,),
        rejected=(iterator,),
        index_sources=(iterator,),
        require_affine_index=True,
    )
    control = FlowPolicy(
        extra_sources=(),
        rejected=(iterator, acc),
        index_sources=(iterator,),
        require_affine_index=True,
    )
    return data, control


def scalar_reduction_constraint() -> ConstraintAnd:
    """The full scalar reduction conjunction (for-loop + accumulator)."""
    return ConstraintAnd(
        for_loop_constraint(),
        PhiOfTwo("acc", "acc_update", "acc_init"),
        InBlock("acc", "header"),
        PhiIncomingFromBlock("acc", "acc_update", "latch"),
        PhiIncomingFromBlock("acc", "acc_init", "entry"),
        Distinct("acc", "iterator"),
        Distinct("acc", "acc_update"),
        loop_invariant_in("acc_init", "entry"),
        update_in_loop("header", "acc_update"),
        ComputedOnlyFrom(
            "acc_update",
            "header",
            _reduction_policies,
            extra_labels=("acc", "iterator"),
        ),
    )


def scalar_reduction_spec() -> IdiomSpec:
    """The complete scalar reduction idiom specification."""
    return IdiomSpec(
        "scalar-reduction",
        SCALAR_REDUCTION_LABEL_ORDER,
        scalar_reduction_constraint(),
    )
