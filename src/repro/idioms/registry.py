"""The idiom registry — spec files as the first-class detection path.

§3.4 proposes reading idiom specifications from external files at
runtime "avoiding the need for recompilation to experiment with
analysis passes".  :class:`IdiomRegistry` makes that the default: the
shipped ``specs/*.icsl`` files — the three Fig. 5/§3.1 core idioms
*and* the three §8 extension idioms — are loaded at startup (falling
back to the native Python specs only if the package data is missing or
unparsable), user spec files can be added with :meth:`load_file`, and
both :func:`~repro.idioms.detect.find_reductions` and
:func:`~repro.idioms.extensions.find_extended_reductions` resolve
every spec they run through the registry — so new reduction scenarios
are new text files, not new Python.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator

from ..constraints import IdiomSpec, SpecFileError, load_spec_file
from ..constraints.specfile import BUILTIN_SPEC_FILES, builtin_spec_path

#: Built-in idiom names; anything else is a custom idiom.
BUILTIN_IDIOMS: tuple[str, ...] = tuple(BUILTIN_SPEC_FILES)

#: The Fig. 5/§3.1 core idioms ``find_reductions`` runs (Figure 8).
CORE_IDIOMS: tuple[str, ...] = ("for-loop", "scalar-reduction", "histogram")

#: The §8 extension idioms ``find_extended_reductions`` runs.
EXTENSION_IDIOMS: tuple[str, ...] = (
    "dot-product", "argminmax", "nested-array-reduction",
)

#: Labels the post-processing stages read from solver assignments; a
#: spec replacing a built-in must keep binding them (detect.py's and
#: extensions.py's record builders and ForLoopMatch index assignments
#: by these names).
REQUIRED_LABELS: dict[str, frozenset[str]] = {
    "for-loop": frozenset({
        "header", "body", "latch", "entry", "exit", "test",
        "iterator", "next_iter", "iter_begin", "iter_step", "iter_end",
    }),
    "scalar-reduction": frozenset({
        "header", "iterator", "acc", "acc_init", "acc_update",
    }),
    "histogram": frozenset({
        "header", "iterator", "base", "idx", "hist_load", "hist_store",
        "update",
    }),
    "dot-product": frozenset({
        "header", "acc", "base_a", "base_b",
    }),
    "argminmax": frozenset({
        "header", "best", "pos", "cmp",
    }),
    "nested-array-reduction": frozenset({
        "header", "arr_store", "arr_load", "update", "base",
    }),
}


@dataclass
class RegisteredIdiom:
    """One registry entry: the spec plus where it came from."""

    name: str
    spec: IdiomSpec
    kind: str  # a built-in idiom's own name, or "custom"
    source: str  # spec file path, or "native" for the Python fallback


def _native_spec(name: str) -> IdiomSpec:
    """The native Python spec for a built-in idiom (fallback path)."""
    if name == "for-loop":
        from .forloop import for_loop_spec

        return for_loop_spec()
    if name == "scalar-reduction":
        from .scalar_reduction import scalar_reduction_spec

        return scalar_reduction_spec()
    if name == "histogram":
        from .histogram import histogram_spec

        return histogram_spec()
    if name == "dot-product":
        from .extensions import dot_product_spec

        return dot_product_spec()
    if name == "argminmax":
        from .extensions import argminmax_spec

        return argminmax_spec()
    if name == "nested-array-reduction":
        from .extensions import nested_array_reduction_spec

        return nested_array_reduction_spec()
    raise KeyError(f"no native spec for idiom {name!r}")


class IdiomRegistry:
    """Loads and serves idiom specifications by name."""

    def __init__(self, builtins: bool = True, lint: bool = False):
        #: Opt-in lint gate: when set, :meth:`register` runs the static
        #: analyzer (:mod:`repro.constraints.analysis`) over every spec
        #: and rejects those with unsuppressed *errors* — warnings and
        #: notes never gate a load, so the gate cannot change which
        #: specs a clean registry serves.
        self.lint = lint
        self._idioms: dict[str, RegisteredIdiom] = {}
        if builtins:
            self._load_builtins()

    # -- loading ----------------------------------------------------------

    def _load_builtins(self) -> None:
        known: dict[str, IdiomSpec] = {}
        for name in BUILTIN_IDIOMS:
            path = builtin_spec_path(name)
            try:
                spec = load_spec_file(path, known=dict(known))[name]
                source = path
            except (OSError, KeyError, SpecFileError):
                spec = _native_spec(name)
                source = "native"
            known[name] = spec
            self.register(spec, source=source)

    def register(self, spec: IdiomSpec, source: str = "api") -> RegisteredIdiom:
        """Register (or replace) an idiom spec under its own name.

        A spec replacing a built-in must keep the labels the
        post-processing stages read (:data:`REQUIRED_LABELS`), so an
        experimental variant cannot crash detection with a missing
        assignment key.
        """
        kind = spec.name if spec.name in BUILTIN_IDIOMS else "custom"
        required = REQUIRED_LABELS.get(spec.name, frozenset())
        missing = required - set(spec.label_order)
        if missing:
            raise SpecFileError(
                f"idiom {spec.name!r} replaces a built-in but does not "
                f"bind required label(s) {sorted(missing)}"
            )
        if self.lint:
            from ..constraints.analysis import analyze_spec

            errors = [
                diag for diag in analyze_spec(spec)
                if diag.severity == "error"
            ]
            if errors:
                raise SpecFileError(
                    f"idiom {spec.name!r} rejected by the lint gate:\n"
                    + "\n".join(diag.render() for diag in errors)
                )
        entry = RegisteredIdiom(spec.name, spec, kind, source)
        self._idioms[spec.name] = entry
        return entry

    def load_file(self, path: str) -> list[RegisteredIdiom]:
        """Load every idiom from a user spec file into the registry.

        Idioms already registered (including built-ins) are visible to
        the file's ``extends`` clauses, and a file idiom with a
        built-in's name *replaces* the built-in — that is the
        experimentation knob §3.4 asks for.
        """
        known = {name: entry.spec for name, entry in self._idioms.items()}
        specs = load_spec_file(path, known=known)
        if not specs:
            raise SpecFileError(f"no idioms defined in {path!r}")
        return [
            self.register(spec, source=os.path.abspath(path))
            for spec in specs.values()
        ]

    def apply_orders(
        self, orders: "dict[str, tuple[str, ...]] | None"
    ) -> list[RegisteredIdiom]:
        """Re-register idioms with new label enumeration orders.

        ``orders`` maps idiom names to permutations of their label
        sets — the form the solver-feedback store derives from recorded
        :class:`~repro.constraints.SolverStats` (and the pipeline ships
        to its workers as ``PipelineOptions.spec_orders``).  Entries
        for unregistered idioms are ignored, so one corpus-wide store
        can serve registries with different custom spec files loaded.

        Two invariants keep a reorder *safe*:

        * an order must be a permutation of the spec's labels (checked
          here) — so solutions are unchanged by construction, and the
          :data:`REQUIRED_LABELS` contract keeps holding;
        * a spec that ``extends`` a base keeps the base's (possibly
          reordered) label order as its prefix — enforced by
          re-prefixing, so the solver's prefix replay survives any
          reorder.  Extending specs are rebuilt whenever their base
          was, even without an explicit entry, so base and extension
          always agree on one enumeration of the shared labels.

        Returns the entries that were actually rebuilt.
        """
        if not orders:
            return []
        rebuilt: dict[str, IdiomSpec] = {}
        changed: list[RegisteredIdiom] = []
        for entry in list(self):
            spec = entry.spec
            base = spec.base
            if base is not None and base.name in rebuilt:
                base = rebuilt[base.name]
            order = orders.get(spec.name)
            if order is None and base is spec.base:
                continue
            new_order = tuple(order) if order is not None else spec.label_order
            if set(new_order) != set(spec.label_order) or (
                len(new_order) != len(spec.label_order)
            ):
                raise SpecFileError(
                    f"idiom {spec.name!r}: order {new_order} is not a "
                    f"permutation of the spec's labels"
                )
            if base is not None:
                base_labels = set(base.label_order)
                new_order = tuple(base.label_order) + tuple(
                    label for label in new_order
                    if label not in base_labels
                )
            if new_order == spec.label_order and base is spec.base:
                continue
            new_spec = IdiomSpec(spec.name, new_order, spec.constraint,
                                 base=base, origin=spec.origin,
                                 lint_ignores=spec.lint_ignores)
            rebuilt[spec.name] = new_spec
            changed.append(self.register(new_spec, source=entry.source))
        return changed

    def current_orders(self) -> "dict[str, tuple[str, ...]]":
        """Every registered idiom's current label enumeration order.

        The exploit-side baseline exploration perturbs: a perturbed
        mapping is this one with exactly one spec's suffix transposed,
        fed back through :meth:`apply_orders` on a fresh registry.
        """
        return {entry.name: entry.spec.label_order for entry in self}

    # -- lookup -----------------------------------------------------------

    def spec(self, name: str) -> IdiomSpec:
        """The spec registered under ``name`` (KeyError if absent)."""
        try:
            return self._idioms[name].spec
        except KeyError:
            raise KeyError(
                f"unknown idiom {name!r}; registered: {sorted(self._idioms)}"
            ) from None

    def entry(self, name: str) -> RegisteredIdiom:
        return self._idioms[name]

    def names(self) -> list[str]:
        return list(self._idioms)

    def custom(self) -> list[RegisteredIdiom]:
        """All non-built-in idioms, in registration order."""
        return [e for e in self._idioms.values() if e.kind == "custom"]

    def __contains__(self, name: str) -> bool:
        return name in self._idioms

    def __iter__(self) -> Iterator[RegisteredIdiom]:
        return iter(self._idioms.values())

    def __len__(self) -> int:
        return len(self._idioms)

    def describe(self) -> str:
        """A human-readable table for ``--list-idioms``."""
        from ..constraints import compile_spec
        from ..constraints.plan import compile_plan

        lines = ["registered idioms:"]
        for entry in self:
            compiled = compile_spec(entry.spec)
            plan = compile_plan(entry.spec)
            source = entry.source
            if source not in ("native", "api"):
                source = os.path.basename(source)
            origin = "custom" if entry.kind == "custom" else "builtin"
            lines.append(
                f"  {entry.name:<18} {len(entry.spec.label_order):>2} labels"
                f"  {len(compiled.conjuncts):>2} constraints"
                f"  {plan.conjuncts_pruned:>2} pruned"
                f"  [{origin}, {source}]"
            )
        return "\n".join(lines)


_default: IdiomRegistry | None = None


def default_registry() -> IdiomRegistry:
    """The process-wide registry, created on first use."""
    global _default
    if _default is None:
        _default = IdiomRegistry()
    return _default


def reset_default_registry() -> None:
    """Drop the process-wide registry (tests)."""
    global _default
    _default = None
