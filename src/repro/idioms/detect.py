"""Top-level reduction detection driver.

``find_reductions(module)`` runs the scalar-reduction and histogram
idiom specifications over every function, post-processes the solver
matches (associativity classification, accumulator confinement,
privatization safety, alias check generation) and returns a
:class:`~repro.idioms.reports.DetectionReport`.

Specs are resolved through the :class:`~repro.idioms.registry.
IdiomRegistry` (the shipped ``.icsl`` files by default), so a caller
can swap in experimental specifications without touching this module.
"""

from __future__ import annotations

import time

from ..constraints import (
    FlowChecker,
    FlowPolicy,
    SharedSolverCache,
    SolverContext,
    SolverStats,
    detect,
)
from ..constraints.flow import root_base
from ..ir.function import Function
from ..ir.module import Module
from .postprocess import (
    accumulator_confined,
    alias_checks_for,
    base_memory_ops_confined,
    classify_update,
)
from .registry import IdiomRegistry, default_registry
from .reports import (
    DetectionReport,
    FunctionReductions,
    HistogramReduction,
    ReductionOp,
    ScalarReduction,
)


def find_reductions_in_function(
    function: Function,
    module: Module | None = None,
    registry: IdiomRegistry | None = None,
    shared_cache: bool = True,
    engine: str | None = None,
) -> FunctionReductions:
    """Detect and post-process all reductions of one function.

    ``shared_cache=True`` (the default) runs every spec against the
    context's :class:`~repro.constraints.SharedSolverCache`, so the
    scalar and histogram searches reuse one solved for-loop prefix and
    each other's memoized proposals.  ``shared_cache=False`` gives each
    ``detect`` call private state — the PR-1 engine, kept as the
    differential/benchmark baseline.  ``engine`` selects the solver
    execution engine per :func:`~repro.constraints.detect`
    (``"compiled"``/``"interpreted"``/None for the default);
    detections are engine-independent.
    """
    registry = registry if registry is not None else default_registry()
    scalar_spec = registry.spec("scalar-reduction")
    histogram_spec = registry.spec("histogram")
    ctx = SolverContext(function, module)
    stats = SolverStats()
    result = FunctionReductions(function, solver_context=ctx, stats=stats)

    def run(spec):
        cache = ctx.solver_cache if shared_cache else SharedSolverCache()
        # Each spec records into its own stats object — the feedback
        # store's per-spec signal — then merges into the function-wide
        # aggregate, so the total effort is exactly what a single
        # shared counter would have seen.
        spec_stat = SolverStats()
        solutions = detect(ctx, spec, stats=spec_stat, cache=cache,
                           engine=engine)
        result.spec_stats.setdefault(
            spec.name, SolverStats()
        ).merge(spec_stat)
        stats.merge(spec_stat)
        return solutions

    def presolve_base(spec):
        """Solve a spec's base prefix up front, attributed to the
        base's own name.

        The shared cache would compute the base lazily inside the
        first extending spec's search (charging the effort to *that*
        spec); solving it here costs exactly the same evals — the
        search runs once either way, so function totals and
        fingerprints are untouched — but records the base's
        enumeration statistics under the base spec's name, giving the
        feedback store an ordering signal for the base itself.
        """
        base = spec.base
        if base is None or ctx.solver_cache.solutions_for(base) is not None:
            return
        base_stat = SolverStats()
        solutions = detect(ctx, base, stats=base_stat,
                           cache=ctx.solver_cache, engine=engine)
        ctx.solver_cache.store_solutions(base, solutions)
        result.spec_stats.setdefault(
            base.name, SolverStats()
        ).merge(base_stat)
        stats.merge(base_stat)

    if shared_cache:
        presolve_base(scalar_spec)
        presolve_base(histogram_spec)

    seen_scalars: set[tuple[int, int]] = set()
    for assignment in run(scalar_spec):
        key = (id(assignment["header"]), id(assignment["acc"]))
        if key in seen_scalars:
            continue
        record = _build_scalar(ctx, assignment)
        if record is not None:
            seen_scalars.add(key)
            result.scalars.append(record)

    seen_histograms: set[tuple[int, int]] = set()
    for assignment in run(histogram_spec):
        key = (id(assignment["header"]), id(assignment["hist_store"]))
        if key in seen_histograms:
            continue
        record = _build_histogram(ctx, assignment)
        if record is not None:
            seen_histograms.add(key)
            result.histograms.append(record)

    return result


def find_reductions(
    module: Module,
    registry: IdiomRegistry | None = None,
    shared_cache: bool = True,
    engine: str | None = None,
) -> DetectionReport:
    """Detect reductions in every defined function of ``module``."""
    report = DetectionReport(module.name)
    started = time.perf_counter()
    for function in module.defined_functions():
        report.functions.append(
            find_reductions_in_function(
                function, module, registry=registry,
                shared_cache=shared_cache, engine=engine,
            )
        )
    report.solve_seconds = time.perf_counter() - started
    return report


def find_for_loops(
    function: Function,
    module: Module | None = None,
    registry: IdiomRegistry | None = None,
):
    """All canonical for-loop matches in one function (Fig. 5 alone)."""
    from .forloop import ForLoopMatch

    registry = registry if registry is not None else default_registry()
    ctx = SolverContext(function, module)
    matches = []
    seen: set[int] = set()
    for assignment in detect(ctx, registry.spec("for-loop")):
        key = id(assignment["header"])
        if key in seen:
            continue
        seen.add(key)
        matches.append(ForLoopMatch.from_assignment(ctx, assignment))
    return matches


# -- record construction -------------------------------------------------------


def _build_scalar(ctx: SolverContext, assignment) -> ScalarReduction | None:
    header = assignment["header"]
    loop = ctx.loop_info.loop_with_header(header)
    acc = assignment["acc"]
    update = assignment["acc_update"]
    iterator = assignment["iterator"]

    op = classify_update(acc, update)
    if op is None:
        return None

    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    data = FlowPolicy(
        extra_sources=(acc,),
        rejected=(iterator,),
        index_sources=(iterator,),
        require_affine_index=True,
    )
    control = FlowPolicy(
        rejected=(iterator, acc),
        index_sources=(iterator,),
        require_affine_index=True,
    )
    flow = checker.check(update, data, control)
    if not flow.ok:
        return None
    if not accumulator_confined(loop, acc, flow.visited):
        return None

    input_bases = []
    seen_bases: set[int] = set()
    for load in flow.loads:
        base = root_base(load.pointer)
        if id(base) not in seen_bases:
            seen_bases.add(id(base))
            input_bases.append(base)
    return ScalarReduction(
        function=ctx.function,
        loop=loop,
        header=header,
        iterator=iterator,
        acc=acc,
        acc_init=assignment["acc_init"],
        acc_update=update,
        op=op,
        input_bases=input_bases,
        input_loads=list(flow.loads),
    )


def _build_histogram(ctx: SolverContext, assignment) -> HistogramReduction | None:
    header = assignment["header"]
    loop = ctx.loop_info.loop_with_header(header)
    base = assignment["base"]
    idx = assignment["idx"]
    hist_load = assignment["hist_load"]
    hist_store = assignment["hist_store"]
    update = assignment["update"]
    iterator = assignment["iterator"]

    op = classify_update(hist_load, update)
    if op is None:
        return None
    if not base_memory_ops_confined(loop, base, hist_load, hist_store):
        return None

    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    data = FlowPolicy(
        extra_sources=(hist_load,),
        rejected=(iterator,),
        forbidden_bases=(base,),
        index_sources=(iterator,),
    )
    control = FlowPolicy(
        rejected=(iterator, hist_load),
        forbidden_bases=(base,),
        index_sources=(iterator,),
    )
    flow = checker.check(update, data, control)
    if not flow.ok:
        return None
    if not accumulator_confined(
        loop, hist_load, flow.visited, allowed_users=(hist_store,)
    ):
        return None

    idx_flow = checker.check(
        idx,
        FlowPolicy(
            rejected=(iterator,),
            forbidden_bases=(base,),
            index_sources=(iterator,),
        ),
    )
    if not idx_flow.ok:
        return None

    scev = ctx.scev
    idx_affine = scev.affine_at(idx, loop) is not None

    input_bases = []
    seen_bases: set[int] = set()
    for load in list(flow.loads) + list(idx_flow.loads):
        load_base = root_base(load.pointer)
        if id(load_base) not in seen_bases:
            seen_bases.add(id(load_base))
            input_bases.append(load_base)
    return HistogramReduction(
        function=ctx.function,
        loop=loop,
        header=header,
        iterator=iterator,
        base=base,
        idx=idx,
        hist_load=hist_load,
        hist_store=hist_store,
        update=update,
        op=op,
        idx_affine=idx_affine,
        input_bases=input_bases,
        runtime_checks=alias_checks_for(base, input_bases),
    )
