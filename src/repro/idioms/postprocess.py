"""Post-processing of solver matches.

§3.1.2: *"There are some additional necessary conditions that we can
not currently express in our constraint language.  These include the
associativity of the update operation as well as the check for array
aliasing.  Associativity is established in a post processing step,
aliasing problems could be avoided with simple runtime checks."*

This module is that post-processing step:

* :func:`classify_update` determines the associative combining operator
  relating an update value to its accumulator (or a histogram's stored
  value to the loaded bin) — matches failing classification are
  discarded;
* :func:`accumulator_confined` checks that the accumulator is not
  observed anywhere in the loop outside its own update computation;
* :func:`alias_checks_for` produces the runtime disambiguation
  requirements between the histogram array and the input arrays.
"""

from __future__ import annotations

from ..analysis.loops import Loop
from ..ir.instructions import (
    BinaryInst,
    CallInst,
    FCmpInst,
    ICmpInst,
    PhiInst,
    SelectInst,
)
from ..ir.values import Value
from .reports import AliasCheck, ReductionOp

#: Opcodes that commute and associate, with the merge op they induce.
_ASSOCIATIVE = {
    "add": ReductionOp.ADD,
    "fadd": ReductionOp.ADD,
    "mul": ReductionOp.MUL,
    "fmul": ReductionOp.MUL,
}

#: ``acc - delta`` merges like a sum (the deltas add up).
_SUBTRACTIVE = {"sub": ReductionOp.ADD, "fsub": ReductionOp.ADD}

_MINMAX_CALLS = {"fmin": ReductionOp.MIN, "fmax": ReductionOp.MAX,
                 "min": ReductionOp.MIN, "max": ReductionOp.MAX}

_GREATER = {"ogt", "oge", "sgt", "sge"}
_LESS = {"olt", "ole", "slt", "sle"}

#: Sentinel meaning "the value is the unmodified accumulator".
_IDENTITY = "identity"


def _dependents_of(source: Value) -> set[int]:
    """ids of every value whose computation reads ``source``."""
    result = {id(source)}
    work = [source]
    while work:
        value = work.pop()
        for user in value.users():
            if id(user) not in result:
                result.add(id(user))
                work.append(user)
    return result


def classify_update(source: Value, update: Value) -> ReductionOp | None:
    """The associative operator by which ``update`` combines into
    ``source``, or None when the update is not a mergeable reduction.

    Handles operator chains of one kind (``((acc+a)+b)``), conditional
    updates through PHIs and selects, min/max via ``fmin``/``fmax``
    calls and via compare+select, and rejects everything else —
    including updates that never actually modify the accumulator and
    updates where the accumulator appears more than once.
    """
    dependents = _dependents_of(source)
    if id(update) not in dependents:
        return None  # overwrite, not a reduction

    visiting: set[int] = set()

    def classify(value: Value):
        if value is source:
            return _IDENTITY
        if id(value) in visiting:
            return None  # recurrence through a different cycle
        visiting.add(id(value))
        try:
            return _classify_value(value)
        finally:
            visiting.discard(id(value))

    def _classify_value(value: Value):
        if id(value) not in dependents:
            return None
        if isinstance(value, BinaryInst):
            kind = _ASSOCIATIVE.get(value.opcode)
            subtractive = _SUBTRACTIVE.get(value.opcode)
            lhs_dep = id(value.lhs) in dependents
            rhs_dep = id(value.rhs) in dependents
            if lhs_dep and rhs_dep:
                return None  # accumulator used twice
            if kind is not None:
                inner = classify(value.lhs if lhs_dep else value.rhs)
                return _merge_chain(inner, kind)
            if subtractive is not None and lhs_dep:
                inner = classify(value.lhs)
                return _merge_chain(inner, subtractive)
            return None
        if isinstance(value, PhiInst):
            result = _IDENTITY
            for incoming, _ in value.incoming:
                if id(incoming) not in dependents:
                    return None  # one path abandons the accumulator
                arm = classify(incoming)
                result = _merge_arms(result, arm)
                if result is None:
                    return None
            return result
        if isinstance(value, SelectInst):
            return _classify_select(value)
        if isinstance(value, CallInst):
            op = _MINMAX_CALLS.get(value.callee.name)
            if op is None:
                return None
            dep_args = [a for a in value.args if id(a) in dependents]
            if len(dep_args) != 1:
                return None
            inner = classify(dep_args[0])
            if inner is _IDENTITY or inner is op:
                return op
            return None
        return None

    def _classify_select(value: SelectInst):
        cond = value.condition
        true_dep = id(value.if_true) in dependents
        false_dep = id(value.if_false) in dependents
        if id(cond) in dependents:
            # min/max pattern: select(cmp(a, b), a, b) with the
            # accumulator as one side.
            return _classify_minmax_select(value)
        if true_dep and false_dep:
            result = _merge_arms(classify(value.if_true),
                                 classify(value.if_false))
            return result
        if true_dep or false_dep:
            return None  # one arm abandons the accumulator
        return None

    def _classify_minmax_select(value: SelectInst):
        cond = value.condition
        if not isinstance(cond, (ICmpInst, FCmpInst)):
            return None
        a, b = cond.lhs, cond.rhs
        t, f = value.if_true, value.if_false
        if not ({id(t), id(f)} == {id(a), id(b)}):
            return None
        acc_side = t if classify(t) is _IDENTITY else (
            f if classify(f) is _IDENTITY else None
        )
        if acc_side is None:
            return None
        other = f if acc_side is t else t
        if id(other) in dependents:
            return None
        if cond.predicate in _GREATER:
            # select(a > b, a, b) == max;  select(a > b, b, a) == min
            if t is a:
                return ReductionOp.MAX
            return ReductionOp.MIN
        if cond.predicate in _LESS:
            if t is a:
                return ReductionOp.MIN
            return ReductionOp.MAX
        return None

    result = classify(update)
    if result is _IDENTITY or result is None:
        return None
    return result


def _merge_chain(inner, kind: ReductionOp):
    """Combine a nested classification with an enclosing operator."""
    if inner is _IDENTITY or inner is kind:
        return kind
    return None


def _merge_arms(a, b):
    """Combine classifications of alternative paths (phi/select arms)."""
    if a is None or b is None:
        return None
    if a is _IDENTITY:
        return b
    if b is _IDENTITY:
        return a
    return a if a is b else None


def accumulator_confined(
    loop: Loop,
    acc: Value,
    slice_ids: set[int],
    allowed_users: tuple[Value, ...] = (),
) -> bool:
    """True when no partial result leaks out of the update slice.

    Every in-loop value that *depends on* the accumulator carries
    partial-reduction state; if any such value is used by an in-loop
    instruction outside the update slice (e.g. stored to memory, or
    feeding some other computation), privatization would change
    observable behaviour, so the match must be discarded.
    ``allowed_users`` whitelists the histogram store, which legally
    consumes the update value.
    """
    allowed = {id(v) for v in allowed_users}
    dependents = _dependents_of(acc)
    for block in loop.blocks:
        for instruction in block.instructions:
            if id(instruction) not in slice_ids:
                continue
            if id(instruction) not in dependents and instruction is not acc:
                continue  # shared inputs (array loads) may fan out
            for use in instruction.uses:
                user = use.user
                if user.parent is None or user.parent not in loop.blocks:
                    continue
                if id(user) in slice_ids or id(user) in allowed:
                    continue
                if user is acc:
                    continue
                return False
    # The accumulator PHI itself must also only feed the slice.
    for use in acc.uses:
        user = use.user
        if user.parent is None or user.parent not in loop.blocks:
            continue
        if id(user) not in slice_ids and id(user) not in allowed:
            return False
    return True


def base_memory_ops_confined(
    loop: Loop, base: Value, hist_load, hist_store
) -> bool:
    """True when the only in-loop accesses to ``base`` are the matched
    read-modify-write pair (privatization reads/writes nothing else)."""
    from ..constraints.flow import root_base
    from ..ir.instructions import LoadInst, StoreInst

    for block in loop.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, LoadInst):
                if root_base(instruction.pointer) is base and (
                    instruction is not hist_load
                ):
                    return False
            elif isinstance(instruction, StoreInst):
                if root_base(instruction.pointer) is base and (
                    instruction is not hist_store
                ):
                    return False
    return True


def alias_checks_for(base: Value, input_bases: list[Value]) -> list[AliasCheck]:
    """Runtime no-alias requirements between the histogram array and
    every other array the loop reads."""
    checks = []
    seen: set[int] = set()
    for other in input_bases:
        if other is base or id(other) in seen:
            continue
        seen.add(id(other))
        checks.append(AliasCheck(base, other))
    return checks
