"""Detection result records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..analysis.loops import Loop
from ..constraints import SolverContext, SolverStats
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import LoadInst, PhiInst, StoreInst
from ..ir.values import Value


class ReductionOp(enum.Enum):
    """The associative combining operator of a reduction.

    Determines how privatized partial results merge (§4: element-wise
    merge of histogram copies; §3.1.2: associativity established in a
    post-processing step).
    """

    ADD = "add"
    MUL = "mul"
    MIN = "min"
    MAX = "max"


@dataclass
class AliasCheck:
    """A runtime disambiguation requirement between two arrays.

    §3.1.2: "aliasing problems could be avoided with simple runtime
    checks" — the code generator emits one comparison per pair.
    """

    array_a: Value
    array_b: Value

    def describe(self) -> str:
        """Human-readable form."""
        return f"{self.array_a.short_name()} does-not-alias {self.array_b.short_name()}"


@dataclass
class ScalarReduction:
    """One detected scalar reduction (§3.1.1)."""

    function: Function
    loop: Loop
    header: BasicBlock
    iterator: PhiInst
    acc: PhiInst
    acc_init: Value
    acc_update: Value
    op: ReductionOp
    #: Arrays read by the update computation.
    input_bases: list[Value] = field(default_factory=list)
    #: Loads feeding the update (all at affine indices by construction).
    input_loads: list[LoadInst] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Stable identifier for reports."""
        return (
            f"{self.function.name}:{self.header.name}:"
            f"{self.acc.short_name()}"
        )


@dataclass
class HistogramReduction:
    """One detected histogram / generalized reduction (§3.1.2)."""

    function: Function
    loop: Loop
    header: BasicBlock
    iterator: PhiInst
    base: Value
    idx: Value
    hist_load: LoadInst
    hist_store: StoreInst
    update: Value
    op: ReductionOp
    #: True when the bin index is affine in the loop nest — those are
    #: plain array reductions; real histograms are the non-affine ones.
    idx_affine: bool = False
    input_bases: list[Value] = field(default_factory=list)
    runtime_checks: list[AliasCheck] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Stable identifier for reports."""
        return (
            f"{self.function.name}:{self.header.name}:"
            f"{self.base.short_name()}"
        )


@dataclass
class FunctionReductions:
    """All reductions found in one function."""

    function: Function
    scalars: list[ScalarReduction] = field(default_factory=list)
    histograms: list[HistogramReduction] = field(default_factory=list)
    #: The solver context detection ran with (CFG, dominators, loops,
    #: SCEV, ...), kept so callers can run further specs — e.g. the
    #: CLI's custom idioms or the pipeline's extension stage — without
    #: recomputing every analysis (or re-solving the for-loop prefix).
    solver_context: SolverContext | None = None
    #: Search-effort counters accumulated across the specs run on this
    #: function (the pipeline's ``constraint_evals`` metric).
    stats: SolverStats | None = None
    #: The same effort broken down **per spec name** — the raw material
    #: of the solver feedback store.  ``stats`` is always the merge of
    #: these (plus whatever extension-stage searches charged to it), so
    #: the aggregate metric cannot drift from the breakdown.
    spec_stats: dict[str, SolverStats] = field(default_factory=dict)


@dataclass
class DetectionReport:
    """Module-level detection outcome."""

    module_name: str
    functions: list[FunctionReductions] = field(default_factory=list)
    #: Wall-clock seconds spent in the constraint solver.
    solve_seconds: float = 0.0

    @property
    def scalars(self) -> list[ScalarReduction]:
        """All scalar reductions across functions."""
        return [s for f in self.functions for s in f.scalars]

    @property
    def histograms(self) -> list[HistogramReduction]:
        """All histogram reductions across functions."""
        return [h for f in self.functions for h in f.histograms]

    def counts(self) -> tuple[int, int]:
        """(scalar count, histogram count)."""
        return len(self.scalars), len(self.histograms)

    @property
    def total_constraint_evals(self) -> int:
        """Conjunct evaluations summed over all functions — the search
        effort the shared-cache pipeline minimizes."""
        return sum(
            f.stats.constraint_evals for f in self.functions
            if f.stats is not None
        )

    def release_solver_state(self) -> None:
        """Drop the retained solver contexts and their shared caches.

        Each :class:`FunctionReductions` keeps its context (analyses,
        memoized proposals, solved for-loop prefixes) so callers can
        run further specs cheaply.  A caller that instead *retains
        reports* — e.g. collecting one per corpus program — should
        release that state once detection is final, or the caches live
        as long as the reports do.
        """
        for function_reductions in self.functions:
            context = function_reductions.solver_context
            if context is not None and context._solver_cache is not None:
                context._solver_cache.clear()
            function_reductions.solver_context = None

    def summary(self) -> str:
        """One-line summary used by examples and the harness."""
        scalars, histograms = self.counts()
        return (
            f"{self.module_name}: {scalars} scalar reduction(s), "
            f"{histograms} histogram reduction(s) "
            f"[{self.solve_seconds * 1000:.1f} ms]"
        )
