"""Idiom specifications: for loops, scalar reductions, histograms."""

from .detect import (
    find_for_loops,
    find_reductions,
    find_reductions_in_function,
)
from .extensions import (
    ExtendedReport,
    FunctionExtensions,
    argminmax_spec,
    dot_product_spec,
    find_extended_in_function,
    find_extended_reductions,
    nested_array_reduction_spec,
)
from .forloop import (
    FOR_LOOP_LABEL_ORDER,
    ForLoopMatch,
    for_loop_constraint,
    for_loop_spec,
)
from .histogram import HISTOGRAM_LABEL_ORDER, histogram_constraint, histogram_spec
from .postprocess import (
    accumulator_confined,
    alias_checks_for,
    base_memory_ops_confined,
    classify_update,
)
from .registry import (
    BUILTIN_IDIOMS,
    CORE_IDIOMS,
    EXTENSION_IDIOMS,
    IdiomRegistry,
    RegisteredIdiom,
    default_registry,
    reset_default_registry,
)
from .reports import (
    AliasCheck,
    DetectionReport,
    FunctionReductions,
    HistogramReduction,
    ReductionOp,
    ScalarReduction,
)
from .scalar_reduction import (
    SCALAR_REDUCTION_LABEL_ORDER,
    scalar_reduction_constraint,
    scalar_reduction_spec,
)

__all__ = [
    "find_reductions",
    "find_reductions_in_function",
    "find_for_loops",
    "IdiomRegistry",
    "RegisteredIdiom",
    "BUILTIN_IDIOMS",
    "CORE_IDIOMS",
    "EXTENSION_IDIOMS",
    "default_registry",
    "reset_default_registry",
    "for_loop_spec",
    "for_loop_constraint",
    "ForLoopMatch",
    "FOR_LOOP_LABEL_ORDER",
    "scalar_reduction_spec",
    "scalar_reduction_constraint",
    "SCALAR_REDUCTION_LABEL_ORDER",
    "histogram_spec",
    "histogram_constraint",
    "HISTOGRAM_LABEL_ORDER",
    "classify_update",
    "accumulator_confined",
    "base_memory_ops_confined",
    "alias_checks_for",
    "DetectionReport",
    "FunctionReductions",
    "ScalarReduction",
    "HistogramReduction",
    "ReductionOp",
    "AliasCheck",
    "find_extended_reductions",
    "find_extended_in_function",
    "ExtendedReport",
    "FunctionExtensions",
    "dot_product_spec",
    "argminmax_spec",
    "nested_array_reduction_spec",
]
