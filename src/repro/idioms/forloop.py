"""The for-loop idiom specification — Fig. 5 of the paper.

A for loop is a 11-tuple of IR values (we fold the paper's separate
``loop_begin``/``loop_jump`` labels into one ``header`` block, since
after mem2reg the iterator PHI, the exit test and the conditional
branch all live in the same block):

    (entry, header, body, latch, exit,
     test, iterator, next_iter, iter_begin, iter_step, iter_end)

with the constraint conjunction below, a direct transliteration of the
figure.  ``entry`` branches unconditionally to ``header``; ``header``
ends in ``br test, body, exit``; ``body``…``latch`` span a SESE region;
``latch`` branches back to ``header``; the iterator is a PHI of the
initial value (from ``entry``) and ``iterator + step`` (from ``latch``);
begin/step/end are constants or defined before the loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loops import Loop
from ..constraints import (
    Assignment,
    ConstraintAnd,
    ConstraintOr,
    DefDominatesBlock,
    Distinct,
    Dominates,
    EndsInCondBranch,
    EndsInUncondBranch,
    IdiomSpec,
    InBlock,
    IsConstantLike,
    Opcode,
    PhiIncomingFromBlock,
    PhiOfTwo,
    SESERegion,
    SolverContext,
)
from ..constraints.predicates import natural_loop
from ..ir.block import BasicBlock
from ..ir.instructions import PhiInst
from ..ir.values import Value

#: Enumeration order: each label is proposable from the ones before it.
#: §3.3 stresses that this ordering determines solver performance; see
#: ``benchmarks/bench_solver_order.py`` for the ablation.
FOR_LOOP_LABEL_ORDER: tuple[str, ...] = (
    "header",
    "test",
    "body",
    "exit",
    "entry",
    "latch",
    "iterator",
    "next_iter",
    "iter_begin",
    "iter_step",
    "iter_end",
)


def loop_invariant_in(value_label: str, entry_label: str) -> ConstraintOr:
    """Fig. 5's ``x ∈ constant ∨ x dominate→ entry`` pattern."""
    return ConstraintOr(
        IsConstantLike(value_label),
        DefDominatesBlock(value_label, entry_label),
    )


def for_loop_constraint() -> ConstraintAnd:
    """The conjunction of Fig. 5 (see module docstring for label names)."""
    return ConstraintAnd(
        EndsInUncondBranch("entry", "header"),
        EndsInCondBranch("header", "test", "body", "exit"),
        EndsInUncondBranch("latch", "header"),
        SESERegion("body", "latch"),
        Dominates("header", "exit"),
        Opcode("test", "icmp", ("iterator", "iter_end"), commutative=True),
        PhiOfTwo("iterator", "next_iter", "iter_begin"),
        InBlock("iterator", "header"),
        PhiIncomingFromBlock("iterator", "next_iter", "latch"),
        PhiIncomingFromBlock("iterator", "iter_begin", "entry"),
        Opcode("next_iter", "add", ("iterator", "iter_step"), commutative=True),
        loop_invariant_in("iter_begin", "entry"),
        loop_invariant_in("iter_step", "entry"),
        loop_invariant_in("iter_end", "entry"),
        Distinct("header", "body", "exit", "entry"),
        natural_loop("header", "body", "latch", "entry", "exit"),
    )


def for_loop_spec() -> IdiomSpec:
    """The complete for-loop idiom specification."""
    return IdiomSpec("for-loop", FOR_LOOP_LABEL_ORDER, for_loop_constraint())


@dataclass
class ForLoopMatch:
    """A solved for-loop tuple, with the :class:`Loop` it corresponds to."""

    header: BasicBlock
    body: BasicBlock
    latch: BasicBlock
    entry: BasicBlock
    exit: BasicBlock
    iterator: PhiInst
    next_iter: Value
    iter_begin: Value
    iter_step: Value
    iter_end: Value
    test: Value
    loop: Loop

    @classmethod
    def from_assignment(
        cls, ctx: SolverContext, assignment: Assignment
    ) -> "ForLoopMatch":
        """Build a match record from a solver assignment."""
        header = assignment["header"]
        loop = ctx.loop_info.loop_with_header(header)
        assert loop is not None
        return cls(
            header=header,
            body=assignment["body"],
            latch=assignment["latch"],
            entry=assignment["entry"],
            exit=assignment["exit"],
            iterator=assignment["iterator"],
            next_iter=assignment["next_iter"],
            iter_begin=assignment["iter_begin"],
            iter_step=assignment["iter_step"],
            iter_end=assignment["iter_end"],
            test=assignment["test"],
            loop=loop,
        )
