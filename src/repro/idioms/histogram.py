"""Histogram (generalized reduction) idiom — §3.1.2 of the paper.

On top of the for-loop tuple, a histogram binds the update machinery:

* ``base`` — the histogram array (loop-invariant pointer);
* ``idx`` — the bin index, computed from array values and loop
  constants only (condition 3; *not* from the iterator — an
  iterator-indexed update is a plain parallel write, not a histogram);
* ``gep_ld``/``hist_load`` — the read of the old bin value (condition 4);
* ``update``/``gep_st``/``hist_store`` — the write of the new value at
  the *same* index (conditions 4+5).

The update value may depend on the loaded bin value, array reads and
invariants (condition 5), again via generalized graph domination.  The
bin index is allowed to be the result of arbitrary allowed-composed
computation — including loads at non-affine indices, which is what
detects tpacf's binary-search histogram (§6.1) — but never the
iterator or the histogram array itself.

The store must sit directly in the bound loop (not inside a nested
loop): this is why SP's mid-nest ``rms`` reduction is *not* found
(§6.1's miss) while kmeans' membership-count histogram is.
"""

from __future__ import annotations

from ..constraints import (
    Assignment,
    ComputedOnlyFrom,
    ConstraintAnd,
    FlowPolicy,
    IdiomSpec,
    Opcode,
    SolverContext,
)
from ..constraints.predicates import load_before_store, store_directly_in_loop
from .forloop import FOR_LOOP_LABEL_ORDER, for_loop_constraint, loop_invariant_in

HISTOGRAM_LABEL_ORDER: tuple[str, ...] = FOR_LOOP_LABEL_ORDER + (
    "hist_store",
    "gep_st",
    "base",
    "idx",
    "gep_ld",
    "hist_load",
    "update",
)


def _idx_policies(ctx: SolverContext, assignment: Assignment):
    """Allowed inputs for the bin index (condition 3)."""
    iterator = assignment["iterator"]
    base = assignment["base"]
    policy = FlowPolicy(
        rejected=(iterator,),
        forbidden_bases=(base,),
        index_sources=(iterator,),
    )
    return policy, policy

def _update_policies(ctx: SolverContext, assignment: Assignment):
    """Allowed inputs for the new bin value (condition 5)."""
    iterator = assignment["iterator"]
    base = assignment["base"]
    load = assignment["hist_load"]
    data = FlowPolicy(
        extra_sources=(load,),
        rejected=(iterator,),
        forbidden_bases=(base,),
        index_sources=(iterator,),
    )
    control = FlowPolicy(
        rejected=(iterator, load),
        forbidden_bases=(base,),
        index_sources=(iterator,),
    )
    return data, control


def histogram_constraint() -> ConstraintAnd:
    """The full histogram conjunction (for-loop + read-modify-write)."""
    return ConstraintAnd(
        for_loop_constraint(),
        Opcode("hist_store", "store", ("update", "gep_st")),
        Opcode("gep_st", "gep", ("base", "idx")),
        Opcode("gep_ld", "gep", ("base", "idx")),
        Opcode("hist_load", "load", ("gep_ld",)),
        loop_invariant_in("base", "entry"),
        store_directly_in_loop("header", "hist_store"),
        load_before_store("hist_load", "hist_store"),
        ComputedOnlyFrom(
            "idx",
            "header",
            _idx_policies,
            extra_labels=("iterator", "base"),
        ),
        ComputedOnlyFrom(
            "update",
            "header",
            _update_policies,
            extra_labels=("iterator", "base", "hist_load"),
        ),
    )


def histogram_spec() -> IdiomSpec:
    """The complete histogram idiom specification."""
    return IdiomSpec("histogram", HISTOGRAM_LABEL_ORDER, histogram_constraint())
