"""Idiom extensions beyond the paper's evaluation (§8 future work).

The paper closes with: *"Future work will extend the constraint
formulation to consider other commonly occurring computational
idioms."*  This module demonstrates that the decoupled design delivers
on that promise — three further idioms written purely in the constraint
DSL, run by the unmodified solver:

* ``dot-product`` — ``acc += a[i] * b[i]`` over two distinct arrays
  (the BLAS-mapping use case of §1);
* ``argminmax`` — guarded best-value/best-index tracking (kmeans'
  inner loop), which is *not* a simple reduction (the guard reads the
  accumulator) and is correctly rejected by the base scalar spec;
* ``nested-array-reduction`` — the SP ``rms[m]`` pattern the paper's
  tool misses (§6.1: "when the reduction loop was not the innermost
  loop"): a read-modify-write whose store sits in an inner loop and
  whose address is indexed by inner iterators only, making the *outer*
  loop privatizable.

Like the core idioms, the extensions ship as ``.icsl`` files
(``specs/{dot_product,argminmax,nested_reduction}.icsl``) resolved
through the :class:`~repro.idioms.registry.IdiomRegistry`; the
``*_spec()`` functions below are the native fallbacks, built from the
same named predicate atoms (:mod:`repro.constraints.predicates`) and
``flow(...)`` policies so the two paths cannot drift — the differential
tests compare them solution-for-solution.

:func:`find_extended_reductions` runs all three on a module;
:func:`find_extended_in_function` is the per-function entry the
pipeline uses so extension specs share one function's
:class:`~repro.constraints.SolverContext` (and therefore its solved
for-loop prefix) with the base detection.  The default
:func:`~repro.idioms.detect.find_reductions` driver is left untouched
so the paper-faithful counts of Figure 8 stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constraints import (
    ConstraintAnd,
    Distinct,
    IdiomSpec,
    InBlock,
    Opcode,
    PhiIncomingFromBlock,
    PhiOfTwo,
    SolverContext,
    SolverStats,
    declarative_flow,
    detect,
)
from ..constraints.predicates import (
    guard_matches_candidate,
    load_before_store,
    ordering_cmp,
    same_join,
    store_in_subloop,
)
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import PhiInst
from ..ir.module import Module
from ..ir.values import Value
from .forloop import FOR_LOOP_LABEL_ORDER, for_loop_constraint, loop_invariant_in
from .postprocess import classify_update
from .reports import ReductionOp

# ---------------------------------------------------------------------------
# Dot product
# ---------------------------------------------------------------------------

DOT_PRODUCT_LABEL_ORDER: tuple[str, ...] = FOR_LOOP_LABEL_ORDER + (
    "acc", "update", "acc_init", "product", "load_a", "load_b",
    "gep_a", "gep_b", "base_a", "base_b",
)


def dot_product_spec() -> IdiomSpec:
    """``acc' = acc + a[i] * b[i]`` with two distinct arrays."""
    constraint = ConstraintAnd(
        for_loop_constraint(),
        PhiOfTwo("acc", "update", "acc_init"),
        InBlock("acc", "header"),
        PhiIncomingFromBlock("acc", "update", "latch"),
        PhiIncomingFromBlock("acc", "acc_init", "entry"),
        loop_invariant_in("acc_init", "entry"),
        Opcode("update", "fadd", ("acc", "product"), commutative=True),
        Opcode("product", "fmul", ("load_a", "load_b"), commutative=True),
        Opcode("load_a", "load", ("gep_a",)),
        Opcode("load_b", "load", ("gep_b",)),
        Opcode("gep_a", "gep", ("base_a", None)),
        Opcode("gep_b", "gep", ("base_b", None)),
        Distinct("base_a", "base_b"),
        Distinct("acc", "iterator"),
        declarative_flow("update", "header", sources=("acc",),
                         rejected=("iterator",), index=("iterator",),
                         affine=True),
    )
    return IdiomSpec("dot-product", DOT_PRODUCT_LABEL_ORDER, constraint)


@dataclass
class DotProductMatch:
    """One detected dot product."""

    function: Function
    header: BasicBlock
    acc: PhiInst
    base_a: Value
    base_b: Value

    @property
    def name(self) -> str:
        """Stable identifier."""
        return (
            f"{self.function.name}:{self.header.name}:"
            f"{self.base_a.short_name()}x{self.base_b.short_name()}"
        )


# ---------------------------------------------------------------------------
# Argmin / argmax
# ---------------------------------------------------------------------------

ARGMINMAX_LABEL_ORDER: tuple[str, ...] = FOR_LOOP_LABEL_ORDER + (
    "best", "best_update", "best_init",
    "candidate",
    "pos", "pos_update", "pos_init", "pos_candidate",
    "cmp",
)


def argminmax_spec() -> IdiomSpec:
    """Guarded best-value / best-index pair:

    ``if (cmp(a[i], best)) { best = a[i]; pos = i; }``

    After lowering, ``best_update``/``pos_update`` are PHIs at the same
    join block, selecting between the carried values and the candidate
    pair, with the guard comparing the candidate against ``best``.
    """
    constraint = ConstraintAnd(
        for_loop_constraint(),
        # The tracked best value.
        PhiOfTwo("best", "best_update", "best_init"),
        InBlock("best", "header"),
        PhiIncomingFromBlock("best", "best_update", "latch"),
        PhiIncomingFromBlock("best", "best_init", "entry"),
        loop_invariant_in("best_init", "entry"),
        # The tracked index.
        PhiOfTwo("pos", "pos_update", "pos_init"),
        InBlock("pos", "header"),
        PhiIncomingFromBlock("pos", "pos_update", "latch"),
        PhiIncomingFromBlock("pos", "pos_init", "entry"),
        loop_invariant_in("pos_init", "entry"),
        Distinct("best", "pos", "iterator"),
        # Join PHIs select carried vs candidate.
        PhiOfTwo("best_update", "best", "candidate"),
        PhiOfTwo("pos_update", "pos", "pos_candidate"),
        same_join("best_update", "pos_update"),
        # The guard compares the candidate (or an equivalent
        # recomputation of it) against the best value.
        Opcode("cmp", ("fcmp", "icmp"), (None, None)),
        ordering_cmp("cmp"),
        guard_matches_candidate("cmp", "best", "candidate"),
    )
    return IdiomSpec("argminmax", ARGMINMAX_LABEL_ORDER, constraint)


@dataclass
class ArgMinMaxMatch:
    """One detected argmin/argmax pair."""

    function: Function
    header: BasicBlock
    best: PhiInst
    pos: PhiInst
    kind: str  # "min" or "max"

    @property
    def name(self) -> str:
        """Stable identifier."""
        return (
            f"{self.function.name}:{self.header.name}:"
            f"arg{self.kind}({self.best.short_name()},"
            f"{self.pos.short_name()})"
        )


# ---------------------------------------------------------------------------
# Nested array reduction (the SP rms pattern)
# ---------------------------------------------------------------------------

NESTED_ARRAY_LABEL_ORDER: tuple[str, ...] = FOR_LOOP_LABEL_ORDER + (
    "arr_store", "gep_st", "base", "idx", "gep_ld", "arr_load", "update",
)


def nested_array_reduction_spec() -> IdiomSpec:
    """Array reduction carried by a non-innermost loop (SP's ``rms``).

    Crucially the idx flow rejects the *outer* iterator even inside
    addresses (no ``index=``): if the address varied with the outer
    loop this would be a parallel write, and if it read the array a
    true dependence.
    """
    constraint = ConstraintAnd(
        for_loop_constraint(),
        Opcode("arr_store", "store", ("update", "gep_st")),
        Opcode("gep_st", "gep", ("base", "idx")),
        Opcode("gep_ld", "gep", ("base", "idx")),
        Opcode("arr_load", "load", ("gep_ld",)),
        loop_invariant_in("base", "entry"),
        store_in_subloop("header", "arr_store"),
        load_before_store("arr_load", "arr_store"),
        declarative_flow("idx", "header", rejected=("iterator",),
                         forbidden=("base",)),
        declarative_flow("update", "header", sources=("arr_load",),
                         rejected=("iterator",), forbidden=("base",),
                         index=("iterator",)),
    )
    return IdiomSpec(
        "nested-array-reduction", NESTED_ARRAY_LABEL_ORDER, constraint
    )


@dataclass
class NestedArrayReduction:
    """One detected non-innermost array reduction."""

    function: Function
    header: BasicBlock
    base: Value
    op: ReductionOp

    @property
    def name(self) -> str:
        """Stable identifier."""
        return (
            f"{self.function.name}:{self.header.name}:"
            f"{self.base.short_name()}"
        )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


@dataclass
class FunctionExtensions:
    """Extension-idiom matches of one function."""

    function: Function
    dot_products: list[DotProductMatch] = field(default_factory=list)
    argminmax: list[ArgMinMaxMatch] = field(default_factory=list)
    nested_array: list[NestedArrayReduction] = field(default_factory=list)
    #: The solver context detection ran with (possibly shared with the
    #: base detection — see the pipeline).
    solver_context: SolverContext | None = None


@dataclass
class ExtendedReport:
    """Results of the extension idioms over one module."""

    module_name: str
    dot_products: list[DotProductMatch] = field(default_factory=list)
    argminmax: list[ArgMinMaxMatch] = field(default_factory=list)
    nested_array: list[NestedArrayReduction] = field(default_factory=list)

    def extend(self, matches: FunctionExtensions) -> None:
        """Fold one function's matches into the module report."""
        self.dot_products.extend(matches.dot_products)
        self.argminmax.extend(matches.argminmax)
        self.nested_array.extend(matches.nested_array)


_MIN_PREDICATES = frozenset({"olt", "ole", "slt", "sle"})

#: Flips a comparison predicate so the candidate reads on the left.
_FLIPPED = {"olt": "ogt", "ogt": "olt", "slt": "sgt", "sgt": "slt",
            "ole": "oge", "oge": "ole", "sle": "sge", "sge": "sle"}


def find_extended_in_function(
    function: Function,
    module: Module | None = None,
    registry=None,
    ctx: SolverContext | None = None,
    stats: SolverStats | None = None,
    shared_cache: bool = True,
    spec_stats: dict[str, SolverStats] | None = None,
    engine: str | None = None,
) -> FunctionExtensions:
    """Run the three extension idioms on one function.

    Specs resolve through the registry (the shipped ``.icsl`` files by
    default).  Passing the ``ctx`` the base detection already built
    shares every cached analysis *and* the solved for-loop prefix with
    the scalar/histogram searches — the pipeline's cache-sharing path.
    ``shared_cache=False`` gives every spec private solver state (the
    PR-1 baseline).  ``spec_stats`` collects each extension spec's
    search effort under its own name (the solver feedback store's
    per-spec signal) in addition to the ``stats`` aggregate.  ``engine``
    selects the solver execution engine per
    :func:`~repro.constraints.detect`.
    """
    from ..constraints import SharedSolverCache
    from .registry import default_registry

    registry = registry if registry is not None else default_registry()
    ctx = ctx if ctx is not None else SolverContext(function, module)
    result = FunctionExtensions(function, solver_context=ctx)
    seen: set[tuple] = set()

    def run(spec):
        cache = ctx.solver_cache if shared_cache else SharedSolverCache()
        local = SolverStats()
        solutions = detect(ctx, spec, stats=local, cache=cache,
                           engine=engine)
        if spec_stats is not None:
            spec_stats.setdefault(spec.name, SolverStats()).merge(local)
        if stats is not None:
            stats.merge(local)
        return solutions

    for assignment in run(registry.spec("dot-product")):
        key = ("dot", id(assignment["header"]), id(assignment["acc"]))
        if key in seen:
            continue
        seen.add(key)
        result.dot_products.append(
            DotProductMatch(
                function, assignment["header"], assignment["acc"],
                assignment["base_a"], assignment["base_b"],
            )
        )
    for assignment in run(registry.spec("argminmax")):
        key = ("arg", id(assignment["header"]), id(assignment["best"]),
               id(assignment["pos"]))
        if key in seen:
            continue
        seen.add(key)
        cmp = assignment["cmp"]
        # Normalise the direction: candidate on the left.
        predicate = cmp.predicate
        if cmp.lhs is assignment["best"]:
            predicate = _FLIPPED[predicate]
        kind = "min" if predicate in _MIN_PREDICATES else "max"
        result.argminmax.append(
            ArgMinMaxMatch(function, assignment["header"],
                           assignment["best"], assignment["pos"], kind)
        )
    for assignment in run(registry.spec("nested-array-reduction")):
        # One record per store: in deeper nests several enclosing
        # loops qualify as carriers; report the outermost (headers
        # are enumerated in block order, outermost first).
        key = ("nested", id(assignment["arr_store"]))
        if key in seen:
            continue
        seen.add(key)
        op = classify_update(assignment["arr_load"], assignment["update"])
        if op is None:
            continue
        result.nested_array.append(
            NestedArrayReduction(function, assignment["header"],
                                 assignment["base"], op)
        )
    return result


def find_extended_reductions(
    module: Module, registry=None
) -> ExtendedReport:
    """Run the three extension idioms over every defined function."""
    report = ExtendedReport(module.name)
    for function in module.defined_functions():
        report.extend(
            find_extended_in_function(function, module, registry=registry)
        )
    return report
