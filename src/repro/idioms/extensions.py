"""Idiom extensions beyond the paper's evaluation (§8 future work).

The paper closes with: *"Future work will extend the constraint
formulation to consider other commonly occurring computational
idioms."*  This module demonstrates that the decoupled design delivers
on that promise — three further idioms written purely in the constraint
DSL, run by the unmodified solver:

* :func:`dot_product_spec` — ``acc += a[i] * b[i]`` over two distinct
  arrays (the BLAS-mapping use case of §1);
* :func:`argminmax_spec` — guarded best-value/best-index tracking
  (kmeans' inner loop), which is *not* a simple reduction (the guard
  reads the accumulator) and is correctly rejected by the base scalar
  spec;
* :func:`nested_array_reduction_spec` — the SP ``rms[m]`` pattern the
  paper's tool misses (§6.1: "when the reduction loop was not the
  innermost loop"): a read-modify-write whose store sits in an inner
  loop and whose address is indexed by inner iterators only, making
  the *outer* loop privatizable.

:func:`find_extended_reductions` runs all three on a module.  The
default :func:`~repro.idioms.detect.find_reductions` driver is left
untouched so the paper-faithful counts of Figure 8 stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constraints import (
    Assignment,
    ComputedOnlyFrom,
    ConstraintAnd,
    Distinct,
    FlowPolicy,
    IdiomSpec,
    InBlock,
    Opcode,
    PhiIncomingFromBlock,
    PhiOfTwo,
    Predicate,
    SolverContext,
    detect,
)
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import FCmpInst, ICmpInst, PhiInst, StoreInst
from ..ir.module import Module
from ..ir.values import Value
from .forloop import (
    FOR_LOOP_LABEL_ORDER,
    for_loop_constraint,
    loop_invariant_in,
)
from .postprocess import classify_update
from .reports import ReductionOp

# ---------------------------------------------------------------------------
# Dot product
# ---------------------------------------------------------------------------

DOT_PRODUCT_LABEL_ORDER: tuple[str, ...] = FOR_LOOP_LABEL_ORDER + (
    "acc", "update", "acc_init", "product", "load_a", "load_b",
    "gep_a", "gep_b", "base_a", "base_b",
)


def _scalar_policies(ctx: SolverContext, assignment: Assignment):
    acc = assignment["acc"]
    iterator = assignment["iterator"]
    data = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                      index_sources=(iterator,), require_affine_index=True)
    control = FlowPolicy(rejected=(iterator, acc),
                         index_sources=(iterator,),
                         require_affine_index=True)
    return data, control


def dot_product_spec() -> IdiomSpec:
    """``acc' = acc + a[i] * b[i]`` with two distinct arrays."""
    constraint = ConstraintAnd(
        for_loop_constraint(),
        PhiOfTwo("acc", "update", "acc_init"),
        InBlock("acc", "header"),
        PhiIncomingFromBlock("acc", "update", "latch"),
        PhiIncomingFromBlock("acc", "acc_init", "entry"),
        loop_invariant_in("acc_init", "entry"),
        Opcode("update", "fadd", ("acc", "product"), commutative=True),
        Opcode("product", "fmul", ("load_a", "load_b"), commutative=True),
        Opcode("load_a", "load", ("gep_a",)),
        Opcode("load_b", "load", ("gep_b",)),
        Opcode("gep_a", "gep", ("base_a", None)),
        Opcode("gep_b", "gep", ("base_b", None)),
        Distinct("base_a", "base_b"),
        Distinct("acc", "iterator"),
        ComputedOnlyFrom("update", "header", _scalar_policies,
                         extra_labels=("acc", "iterator")),
    )
    return IdiomSpec("dot-product", DOT_PRODUCT_LABEL_ORDER, constraint)


@dataclass
class DotProductMatch:
    """One detected dot product."""

    function: Function
    header: BasicBlock
    acc: PhiInst
    base_a: Value
    base_b: Value

    @property
    def name(self) -> str:
        """Stable identifier."""
        return (
            f"{self.function.name}:{self.header.name}:"
            f"{self.base_a.short_name()}x{self.base_b.short_name()}"
        )


# ---------------------------------------------------------------------------
# Argmin / argmax
# ---------------------------------------------------------------------------

ARGMINMAX_LABEL_ORDER: tuple[str, ...] = FOR_LOOP_LABEL_ORDER + (
    "best", "best_update", "best_init",
    "candidate",
    "pos", "pos_update", "pos_init", "pos_candidate",
    "cmp",
)


def _is_strict_comparison(ctx: SolverContext, assignment: Assignment) -> bool:
    cmp = assignment["cmp"]
    if isinstance(cmp, (FCmpInst, ICmpInst)):
        return cmp.predicate in ("olt", "ogt", "slt", "sgt", "ole",
                                 "oge", "sle", "sge")
    return False


def _phis_in_same_join(ctx: SolverContext, assignment: Assignment) -> bool:
    best = assignment["best_update"]
    pos = assignment["pos_update"]
    return (
        isinstance(best, PhiInst)
        and isinstance(pos, PhiInst)
        and best.parent is pos.parent
    )


def _structurally_equal(a: Value, b: Value, depth: int = 0) -> bool:
    """Value equivalence modulo cross-block redundancy.

    The frontend only CSEs within blocks, so the guard's ``a[i]`` load
    and the assigned ``a[i]`` load are distinct instructions; they are
    still the same value because the loads read the same address with
    no intervening store (the idiom's flow conditions guarantee the
    array is read-only in the loop).
    """
    if a is b:
        return True
    if depth > 6:
        return False
    from ..ir.instructions import (
        BinaryInst,
        CastInst,
        GEPInst,
        LoadInst,
    )
    from ..ir.values import ConstantFloat, ConstantInt

    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return a.value == b.value
    if isinstance(a, ConstantFloat) and isinstance(b, ConstantFloat):
        return a.value == b.value
    if isinstance(a, LoadInst) and isinstance(b, LoadInst):
        return _structurally_equal(a.pointer, b.pointer, depth + 1)
    if isinstance(a, GEPInst) and isinstance(b, GEPInst):
        return a.base is b.base and _structurally_equal(
            a.index, b.index, depth + 1
        )
    if isinstance(a, BinaryInst) and isinstance(b, BinaryInst):
        return a.opcode == b.opcode and _structurally_equal(
            a.lhs, b.lhs, depth + 1
        ) and _structurally_equal(a.rhs, b.rhs, depth + 1)
    if isinstance(a, CastInst) and isinstance(b, CastInst):
        return a.opcode == b.opcode and _structurally_equal(
            a.value, b.value, depth + 1
        )
    return False


def _guard_matches_candidate(ctx: SolverContext,
                             assignment: Assignment) -> bool:
    """The guard must compare (a value equal to) the candidate against
    the tracked best value."""
    cmp = assignment["cmp"]
    best = assignment["best"]
    candidate = assignment["candidate"]
    if not isinstance(cmp, (FCmpInst, ICmpInst)):
        return False
    if cmp.lhs is best:
        other = cmp.rhs
    elif cmp.rhs is best:
        other = cmp.lhs
    else:
        return False
    return _structurally_equal(other, candidate)


def argminmax_spec() -> IdiomSpec:
    """Guarded best-value / best-index pair:

    ``if (cmp(a[i], best)) { best = a[i]; pos = i; }``

    After lowering, ``best_update``/``pos_update`` are PHIs at the same
    join block, selecting between the carried values and the candidate
    pair, with the guard comparing the candidate against ``best``.
    """
    constraint = ConstraintAnd(
        for_loop_constraint(),
        # The tracked best value.
        PhiOfTwo("best", "best_update", "best_init"),
        InBlock("best", "header"),
        PhiIncomingFromBlock("best", "best_update", "latch"),
        PhiIncomingFromBlock("best", "best_init", "entry"),
        loop_invariant_in("best_init", "entry"),
        # The tracked index.
        PhiOfTwo("pos", "pos_update", "pos_init"),
        InBlock("pos", "header"),
        PhiIncomingFromBlock("pos", "pos_update", "latch"),
        PhiIncomingFromBlock("pos", "pos_init", "entry"),
        loop_invariant_in("pos_init", "entry"),
        Distinct("best", "pos", "iterator"),
        # Join PHIs select carried vs candidate.
        PhiOfTwo("best_update", "best", "candidate"),
        PhiOfTwo("pos_update", "pos", "pos_candidate"),
        Predicate(("best_update", "pos_update"), _phis_in_same_join,
                  name="same-join"),
        # The guard compares the candidate (or an equivalent
        # recomputation of it) against the best value.
        Opcode("cmp", ("fcmp", "icmp"), (None, None)),
        Predicate(("cmp",), _is_strict_comparison, name="ordering-cmp"),
        Predicate(("cmp", "best", "candidate"), _guard_matches_candidate,
                  name="guard-matches-candidate"),
    )
    return IdiomSpec("argminmax", ARGMINMAX_LABEL_ORDER, constraint)


@dataclass
class ArgMinMaxMatch:
    """One detected argmin/argmax pair."""

    function: Function
    header: BasicBlock
    best: PhiInst
    pos: PhiInst
    kind: str  # "min" or "max"

    @property
    def name(self) -> str:
        """Stable identifier."""
        return (
            f"{self.function.name}:{self.header.name}:"
            f"arg{self.kind}({self.best.short_name()},"
            f"{self.pos.short_name()})"
        )


# ---------------------------------------------------------------------------
# Nested array reduction (the SP rms pattern)
# ---------------------------------------------------------------------------

NESTED_ARRAY_LABEL_ORDER: tuple[str, ...] = FOR_LOOP_LABEL_ORDER + (
    "arr_store", "gep_st", "base", "idx", "gep_ld", "arr_load", "update",
)


def _store_in_strict_subloop(ctx: SolverContext,
                             assignment: Assignment) -> bool:
    """The store must sit in a loop strictly inside the bound loop —
    the complement of the base histogram spec's placement rule, so
    regular histograms are not double-reported."""
    header = assignment["header"]
    store = assignment["arr_store"]
    if not isinstance(header, BasicBlock) or not isinstance(store, StoreInst):
        return False
    loop = ctx.loop_info.loop_with_header(header)
    if loop is None or store.parent not in loop.blocks:
        return False
    innermost = ctx.loop_info.innermost_loop_of(store.parent)
    return innermost is not loop


def _rmw_same_block(ctx: SolverContext, assignment: Assignment) -> bool:
    load = assignment["arr_load"]
    store = assignment["arr_store"]
    block = getattr(load, "parent", None)
    if block is None or block is not store.parent:
        return False
    return block.instructions.index(load) < block.instructions.index(store)


def _nested_idx_policies(ctx: SolverContext, assignment: Assignment):
    iterator = assignment["iterator"]
    base = assignment["base"]
    # Crucially the *outer* iterator is rejected even inside addresses:
    # if the address varied with the outer loop this would be a
    # parallel write, and if it read the array a true dependence.
    policy = FlowPolicy(rejected=(iterator,), forbidden_bases=(base,))
    return policy, policy


def _nested_update_policies(ctx: SolverContext, assignment: Assignment):
    iterator = assignment["iterator"]
    base = assignment["base"]
    load = assignment["arr_load"]
    data = FlowPolicy(extra_sources=(load,), rejected=(iterator,),
                      forbidden_bases=(base,), index_sources=(iterator,))
    control = FlowPolicy(rejected=(iterator, load),
                         forbidden_bases=(base,),
                         index_sources=(iterator,))
    return data, control


def nested_array_reduction_spec() -> IdiomSpec:
    """Array reduction carried by a non-innermost loop (SP's ``rms``)."""
    constraint = ConstraintAnd(
        for_loop_constraint(),
        Opcode("arr_store", "store", ("update", "gep_st")),
        Opcode("gep_st", "gep", ("base", "idx")),
        Opcode("gep_ld", "gep", ("base", "idx")),
        Opcode("arr_load", "load", ("gep_ld",)),
        loop_invariant_in("base", "entry"),
        Predicate(("header", "arr_store"), _store_in_strict_subloop,
                  name="store-in-subloop"),
        Predicate(("arr_load", "arr_store"), _rmw_same_block,
                  name="read-modify-write"),
        ComputedOnlyFrom("idx", "header", _nested_idx_policies,
                         extra_labels=("iterator", "base")),
        ComputedOnlyFrom("update", "header", _nested_update_policies,
                         extra_labels=("iterator", "base", "arr_load")),
    )
    return IdiomSpec(
        "nested-array-reduction", NESTED_ARRAY_LABEL_ORDER, constraint
    )


@dataclass
class NestedArrayReduction:
    """One detected non-innermost array reduction."""

    function: Function
    header: BasicBlock
    base: Value
    op: ReductionOp

    @property
    def name(self) -> str:
        """Stable identifier."""
        return (
            f"{self.function.name}:{self.header.name}:"
            f"{self.base.short_name()}"
        )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


@dataclass
class ExtendedReport:
    """Results of the extension idioms over one module."""

    module_name: str
    dot_products: list[DotProductMatch] = field(default_factory=list)
    argminmax: list[ArgMinMaxMatch] = field(default_factory=list)
    nested_array: list[NestedArrayReduction] = field(default_factory=list)


_DOT = dot_product_spec()
_ARG = argminmax_spec()
_NESTED = nested_array_reduction_spec()

_MIN_PREDICATES = frozenset({"olt", "ole", "slt", "sle"})


def find_extended_reductions(module: Module) -> ExtendedReport:
    """Run the three extension idioms over every defined function."""
    report = ExtendedReport(module.name)
    for function in module.defined_functions():
        ctx = SolverContext(function, module)
        seen: set[tuple] = set()
        for assignment in detect(ctx, _DOT):
            key = ("dot", id(assignment["header"]), id(assignment["acc"]))
            if key in seen:
                continue
            seen.add(key)
            report.dot_products.append(
                DotProductMatch(
                    function, assignment["header"], assignment["acc"],
                    assignment["base_a"], assignment["base_b"],
                )
            )
        for assignment in detect(ctx, _ARG):
            key = ("arg", id(assignment["header"]), id(assignment["best"]),
                   id(assignment["pos"]))
            if key in seen:
                continue
            seen.add(key)
            cmp = assignment["cmp"]
            # Normalise the direction: candidate on the left.
            predicate = cmp.predicate
            if cmp.lhs is assignment["best"]:
                flip = {"olt": "ogt", "ogt": "olt", "slt": "sgt",
                        "sgt": "slt", "ole": "oge", "oge": "ole",
                        "sle": "sge", "sge": "sle"}
                predicate = flip[predicate]
            kind = "min" if predicate in _MIN_PREDICATES else "max"
            report.argminmax.append(
                ArgMinMaxMatch(function, assignment["header"],
                               assignment["best"], assignment["pos"], kind)
            )
        for assignment in detect(ctx, _NESTED):
            # One record per store: in deeper nests several enclosing
            # loops qualify as carriers; report the outermost (headers
            # are enumerated in block order, outermost first).
            key = ("nested", id(assignment["arr_store"]))
            if key in seen:
                continue
            seen.add(key)
            op = classify_update(assignment["arr_load"],
                                 assignment["update"])
            if op is None:
                continue
            report.nested_array.append(
                NestedArrayReduction(function, assignment["header"],
                                     assignment["base"], op)
            )
    return report
