"""Runtime memory model for the IR interpreter.

Arrays are flat :class:`Buffer` objects; runtime pointers are
(buffer, offset) pairs, so ``gep`` is plain offset arithmetic and
out-of-bounds accesses are caught immediately.
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.types import FloatType, Type
from ..ir.values import GlobalVariable


class MemoryError_(Exception):
    """Raised on out-of-bounds accesses and type confusion."""


class Buffer:
    """A flat typed allocation."""

    __slots__ = ("data", "element_type", "name")

    def __init__(self, element_type: Type, size: int, name: str = ""):
        zero = 0.0 if isinstance(element_type, FloatType) else 0
        self.data = [zero] * size
        self.element_type = element_type
        self.name = name

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"<Buffer {self.name}[{len(self.data)}] {self.element_type}>"


class Pointer:
    """A typed (buffer, offset) pair — the runtime value of pointers."""

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer: Buffer, offset: int = 0):
        self.buffer = buffer
        self.offset = offset

    def displaced(self, delta: int) -> "Pointer":
        """Pointer arithmetic (``gep``)."""
        return Pointer(self.buffer, self.offset + delta)

    def load(self):
        """Read the pointed-to element."""
        if not 0 <= self.offset < len(self.buffer.data):
            raise MemoryError_(
                f"load out of bounds: {self.buffer.name}[{self.offset}] "
                f"(size {len(self.buffer.data)})"
            )
        return self.buffer.data[self.offset]

    def store(self, value) -> None:
        """Write the pointed-to element."""
        if not 0 <= self.offset < len(self.buffer.data):
            raise MemoryError_(
                f"store out of bounds: {self.buffer.name}[{self.offset}] "
                f"(size {len(self.buffer.data)})"
            )
        self.buffer.data[self.offset] = value

    def __repr__(self) -> str:
        return f"<Pointer {self.buffer.name}+{self.offset}>"


class Memory:
    """All global buffers of one module instance."""

    def __init__(self, module: Module):
        self.module = module
        self.buffers: dict[str, Buffer] = {}
        for variable in module.globals.values():
            buffer = Buffer(variable.element_type, variable.size, variable.name)
            if variable.initializer is not None:
                for index, value in enumerate(variable.initializer):
                    buffer.data[index % variable.size] = value
                if len(variable.initializer) == 1 and variable.size == 1:
                    buffer.data[0] = variable.initializer[0]
            self.buffers[variable.name] = buffer

    def pointer_to(self, variable: GlobalVariable) -> Pointer:
        """A pointer to the start of a global's buffer."""
        return Pointer(self.buffers[variable.name], 0)

    def read_global(self, name: str):
        """Convenience: the scalar value (or list) behind a global."""
        buffer = self.buffers[name]
        if len(buffer.data) == 1:
            return buffer.data[0]
        return list(buffer.data)

    def snapshot(self) -> dict[str, list]:
        """Copy of all buffer contents, for correctness comparisons."""
        return {name: list(buf.data) for name, buf in self.buffers.items()}
