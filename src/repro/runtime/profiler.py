"""Runtime-coverage profiling of detected reduction regions (§6.2).

Runs a program sequentially and attributes dynamic instructions to the
detected reduction loops, reproducing the measurement behind
Figures 12–14: the fraction of runtime spent inside scalar-reduction
regions versus histogram-reduction regions.  Loops containing a
histogram count as histogram regions (EP's main loop carries both its
histogram and two scalar reductions and is a histogram bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..idioms.reports import DetectionReport
from ..ir.module import Module
from .interpreter import Interpreter
from .memory import Memory


@dataclass
class CoverageProfile:
    """Coverage of reduction regions in one program run."""

    module_name: str
    total_instructions: int = 0
    scalar_instructions: int = 0
    histogram_instructions: int = 0
    #: Per-region detail: (name, kind, instructions).
    regions: list[tuple[str, str, int]] = field(default_factory=list)

    @property
    def scalar_coverage(self) -> float:
        """Fraction of runtime in scalar-only reduction loops."""
        if self.total_instructions == 0:
            return 0.0
        return self.scalar_instructions / self.total_instructions

    @property
    def histogram_coverage(self) -> float:
        """Fraction of runtime in histogram reduction loops."""
        if self.total_instructions == 0:
            return 0.0
        return self.histogram_instructions / self.total_instructions


def profile_coverage(
    module: Module,
    report: DetectionReport,
    entry: str = "main",
    seed: int = 12345,
) -> CoverageProfile:
    """Execute ``entry`` and measure reduction-region coverage."""
    memory = Memory(module)
    interp = Interpreter(module, memory, seed=seed)
    interp.call(module.get_function(entry), [])

    profile = CoverageProfile(module.name)
    profile.total_instructions = sum(interp.block_counts.values())

    histogram_loops = {}
    scalar_loops = {}
    for histogram in report.histograms:
        histogram_loops[id(histogram.loop.header)] = (
            histogram.name, histogram.loop
        )
    for scalar in report.scalars:
        key = id(scalar.loop.header)
        if key not in histogram_loops:
            scalar_loops.setdefault(key, (scalar.name, scalar.loop))

    counted_blocks: set[int] = set()
    for name, loop in histogram_loops.values():
        instructions = 0
        for block in loop.blocks:
            if id(block) not in counted_blocks:
                counted_blocks.add(id(block))
                instructions += interp.block_counts.get(id(block), 0)
        profile.histogram_instructions += instructions
        profile.regions.append((name, "histogram", instructions))
    for name, loop in scalar_loops.values():
        instructions = 0
        for block in loop.blocks:
            if id(block) not in counted_blocks:
                counted_blocks.add(id(block))
                instructions += interp.block_counts.get(id(block), 0)
        profile.scalar_instructions += instructions
        profile.regions.append((name, "scalar", instructions))
    return profile
