"""Execution substrate: interpreter, memory, profiling, parallel simulation."""

from .interpreter import Interpreter, InterpreterError
from .machine import MachineModel
from .memory import Buffer, Memory, MemoryError_, Pointer
from .parallel import (
    ParallelExecutor,
    ParallelRunResult,
    RegionRecord,
    run_sequential,
)
from .profiler import CoverageProfile, profile_coverage

__all__ = [
    "Interpreter",
    "InterpreterError",
    "Memory",
    "Buffer",
    "Pointer",
    "MemoryError_",
    "MachineModel",
    "ParallelExecutor",
    "ParallelRunResult",
    "RegionRecord",
    "run_sequential",
    "CoverageProfile",
    "profile_coverage",
]
