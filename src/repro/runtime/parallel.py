"""Simulated parallel execution of privatized reduction loops (§4).

The executor reproduces the paper's pthread scheme on a simulated
machine: the iteration space is partitioned across threads; every
thread except the first works on freshly allocated private copies of
the histogram arrays (zero-initialized — merges are additive) and
private scalar partials starting at the operator's identity; partial
results are merged element-wise afterwards.

Execution is *real* — each shard actually runs through the IR
interpreter, so the merged result can be compared against sequential
execution — while *time* is simulated: per-shard dynamic instruction
counts feed the :class:`~repro.runtime.machine.MachineModel`, giving
the critical-path time of the recursive-bisection scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..idioms.reports import ReductionOp
from ..ir.module import Module
from ..ir.types import FloatType
from ..ir.values import GlobalVariable
from ..transform.outline import OutlinedTask
from ..transform.plan import identity_value, merge_values
from .interpreter import Interpreter, InterpreterError
from .machine import MachineModel
from .memory import Buffer, Memory, Pointer


@dataclass
class RegionRecord:
    """One dynamic execution of a parallelized loop."""

    task_name: str
    shard_costs: list[int] = field(default_factory=list)
    iterations: int = 0
    private_elements: int = 0
    dynamic_bounds: bool = False

    def critical_path(self, machine: MachineModel) -> float:
        """Simulated time of the parallel region."""
        threads = max(1, len(self.shard_costs))
        shard = max(self.shard_costs) if self.shard_costs else 0.0
        if self.dynamic_bounds and threads > 1:
            shard += (
                machine.bounds_check_cost * self.iterations / threads
            )
        return (
            shard
            + machine.spawn_path_cost(threads)
            + machine.alloc_path_cost(threads, self.private_elements)
            + machine.merge_path_cost(threads, self.private_elements)
        )

    def total_work(self) -> int:
        """Sum of all shard instruction counts."""
        return sum(self.shard_costs)


@dataclass
class ParallelRunResult:
    """Outcome of a program run with parallelized reduction loops."""

    return_value: object
    memory: Memory
    output: list[str]
    #: Instructions executed outside parallel regions.
    sequential_cost: int = 0
    regions: list[RegionRecord] = field(default_factory=list)

    def simulated_time(self, machine: MachineModel) -> float:
        """Critical-path time: sequential part + each region's path."""
        return self.sequential_cost + sum(
            r.critical_path(machine) for r in self.regions
        )


class _LoopHandler:
    """Interpreter hook replacing one loop with sharded task calls."""

    def __init__(self, executor: "ParallelExecutor", task: OutlinedTask):
        self.executor = executor
        self.task = task

    def __call__(self, interp: Interpreter, frame, header):
        task = self.task
        plan = task.plan
        bounds = plan.bounds
        begin = interp._value(bounds.start, frame)
        end_value = interp._value(bounds.end, frame)
        if bounds.predicate == "sle":
            end_value += 1
        total = max(0, end_value - begin)
        threads = min(self.executor.threads, max(1, total))
        if not self._alias_checks_pass(interp, frame):
            # §3.1.2: "aliasing problems could be avoided with simple
            # runtime checks" — when a check fails, fall back to
            # sequential in-place execution of the loop.
            threads = 1
            self.executor.alias_fallbacks += 1

        closure_values = [interp._value(v, frame) for v in task.closure]
        hist_pointers = [interp._value(b, frame) for b in task.hist_bases]
        private_elements = sum(len(p.buffer.data) for p in hist_pointers)

        record = RegionRecord(
            task_name=task.task.name,
            iterations=total,
            private_elements=private_elements,
            dynamic_bounds=plan.dynamic_bounds,
        )

        scalar_inits = [
            interp._value(s.acc_init, frame) for s in plan.scalars
        ]
        # previous partial value of each acc is the init value; shards
        # start from the identity and are merged below.
        finals = list(scalar_inits)

        hist_privates: list[list[Pointer]] = []
        for t in range(threads):
            if t == 0:
                hist_privates.append(hist_pointers)
            else:
                copies = []
                for pointer in hist_pointers:
                    buffer = Buffer(
                        pointer.buffer.element_type,
                        len(pointer.buffer.data),
                        f"{pointer.buffer.name}.priv{t}",
                    )
                    copies.append(Pointer(buffer, 0))
                hist_privates.append(copies)

        for t in range(threads):
            lo = begin + (total * t) // threads
            hi = begin + (total * (t + 1)) // threads
            out_pointers = []
            for scalar in plan.scalars:
                is_float = isinstance(scalar.acc.type, FloatType)
                buffer = Buffer(scalar.acc.type, 1, "partial")
                buffer.data[0] = identity_value(scalar.op, is_float)
                out_pointers.append(Pointer(buffer, 0))
            args = [lo, hi, *hist_privates[t], *out_pointers,
                    *closure_values]
            before = interp.instructions_executed
            interp.call(task.task, args)
            record.shard_costs.append(interp.instructions_executed - before)
            for index, pointer in enumerate(out_pointers):
                finals[index] = merge_values(
                    plan.scalars[index].op, finals[index],
                    pointer.buffer.data[0],
                )

        # Merge private histogram copies back (additive, §4).
        for t in range(1, threads):
            for original, private in zip(hist_pointers, hist_privates[t]):
                data = original.buffer.data
                priv = private.buffer.data
                for i in range(len(data)):
                    data[i] += priv[i]

        # Publish loop results: the header PHIs hold the exit values.
        frame[id(bounds.iterator)] = begin + total
        for scalar, final in zip(plan.scalars, finals):
            frame[id(scalar.acc)] = final

        self.executor.records.append(record)
        exit_targets = [
            t for t in header.successors() if t not in plan.loop.blocks
        ]
        return exit_targets[0]

    def _alias_checks_pass(self, interp: Interpreter, frame) -> bool:
        """Evaluate the detection-time no-alias obligations at runtime."""
        for histogram in self.task.plan.histograms:
            for check in histogram.runtime_checks:
                try:
                    a = interp._value(check.array_a, frame)
                    b = interp._value(check.array_b, frame)
                except Exception:
                    return False
                if isinstance(a, Pointer) and isinstance(b, Pointer):
                    if a.buffer is b.buffer:
                        return False
        return True


class ParallelExecutor:
    """Runs a module with selected loops executed as parallel shards."""

    def __init__(
        self,
        module: Module,
        tasks: list[OutlinedTask],
        threads: int = 64,
        seed: int = 12345,
    ):
        self.module = module
        self.tasks = tasks
        self.threads = threads
        self.seed = seed
        self.records: list[RegionRecord] = []
        #: Loops demoted to sequential execution by a failed runtime
        #: alias check (§3.1.2).
        self.alias_fallbacks = 0

    def run(self, entry: str = "main") -> ParallelRunResult:
        """Execute ``entry`` with all planned loops parallelized."""
        self.records = []
        self.alias_fallbacks = 0
        memory = Memory(self.module)
        interp = Interpreter(self.module, memory, seed=self.seed)
        for task in self.tasks:
            handler = _LoopHandler(self, task)
            interp.loop_overrides[id(task.plan.loop.header)] = handler
        value = interp.call(self.module.get_function(entry), [])
        shard_work = sum(r.total_work() for r in self.records)
        return ParallelRunResult(
            return_value=value,
            memory=memory,
            output=interp.output,
            sequential_cost=interp.instructions_executed - shard_work,
            regions=list(self.records),
        )


def run_sequential(
    module: Module, entry: str = "main", seed: int = 12345
) -> tuple[object, Memory, Interpreter]:
    """Plain sequential execution, for baselines and validation."""
    memory = Memory(module)
    interp = Interpreter(module, memory, seed=seed)
    value = interp.call(module.get_function(entry), [])
    return value, memory, interp
