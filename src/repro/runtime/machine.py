"""Machine cost model for the simulated parallel executor.

The paper evaluates on a 64-core AMD Opteron 6376 machine; we replace
wall-clock time with a deterministic cost model over dynamic
instruction counts.  Costs are expressed in "cycles" where one executed
IR instruction costs one cycle; thread management and merge costs are
calibrated so the *shape* of Figure 15 (who wins, by what order of
magnitude, where privatization overhead bites) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2


@dataclass
class MachineModel:
    """Cost parameters of the simulated shared-memory machine."""

    #: Worker cores (the paper's machine has 64).
    cores: int = 64
    #: Cycles to create/join one thread (pthread_create + join).
    spawn_cost: float = 2000.0
    #: Cycles per element when merging a privatized array copy.
    merge_cost_per_element: float = 2.0
    #: Cycles per element to allocate + zero a privatized copy.
    alloc_cost_per_element: float = 1.5
    #: Extra cycles per histogram update for dynamic bounds checking (§4).
    bounds_check_cost: float = 1.0
    #: Cycles per element for an atomic update under contention — used
    #: by the modelled "original parallel version" of histo (§6.3).
    atomic_update_cost: float = 12.0
    #: Cycles to enter+leave a contended critical section — used by the
    #: modelled original tpacf (§6.3: slowdown versus sequential).
    critical_section_cost: float = 120.0

    def spawn_path_cost(self, threads: int) -> float:
        """Thread-creation cost on the critical path of the recursive
        bisection scheme of §4 (half the work is offloaded per level)."""
        if threads <= 1:
            return 0.0
        return self.spawn_cost * ceil(log2(threads))

    def merge_path_cost(self, threads: int, private_elements: int) -> float:
        """Merge cost on the critical path: one element-wise merge of
        every privatized copy per bisection level."""
        if threads <= 1:
            return 0.0
        per_merge = private_elements * self.merge_cost_per_element
        return per_merge * ceil(log2(threads))

    def alloc_path_cost(self, threads: int, private_elements: int) -> float:
        """Privatized-copy allocation cost on the critical path."""
        if threads <= 1:
            return 0.0
        return (
            private_elements * self.alloc_cost_per_element
            * ceil(log2(threads))
        )
