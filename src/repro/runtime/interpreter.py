"""SSA IR interpreter with dynamic instruction accounting.

Executes modules produced by the frontend.  Besides producing results
(used to validate transformations: privatized parallel execution must
match sequential execution bit-for-bit for integer data), it counts
dynamically executed instructions per basic block — the measure behind
the runtime-coverage experiment (Figures 12–14) and the simulated
machine times of Figure 15.
"""

from __future__ import annotations

import math

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.types import FloatType, IntType
from ..ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
    Value,
)
from .memory import Buffer, Memory, Pointer


class InterpreterError(Exception):
    """Raised on runtime errors (OOB, budget exhausted, missing main)."""


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _c_rem(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


_INT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "sdiv": _c_div,
    "srem": _c_rem,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "ashr": lambda a, b: a >> b,
}

_FLOAT_BINOPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b,
}

_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}

_FCMP = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


class Interpreter:
    """Executes IR functions against a :class:`Memory` instance.

    Parameters
    ----------
    module:
        The module to execute.
    memory:
        Optional pre-built memory (lets callers share or snapshot state).
    seed:
        Seed of the deterministic ``rand()`` intrinsic.
    max_instructions:
        Execution budget; exceeded budgets raise :class:`InterpreterError`.
    """

    def __init__(
        self,
        module: Module,
        memory: Memory | None = None,
        seed: int = 12345,
        max_instructions: int = 200_000_000,
    ):
        self.module = module
        self.memory = memory or Memory(module)
        self.seed = seed & 0x7FFFFFFF
        self.max_instructions = max_instructions
        self.instructions_executed = 0
        #: Dynamic instruction count per basic block (by id).
        self.block_counts: dict[int, int] = {}
        #: Lines printed through the print intrinsics.
        self.output: list[str] = []
        self._clock = 0
        #: id(header block) -> handler; lets the parallel executor
        #: intercept a loop and run it as privatized shards.  The
        #: handler receives (interpreter, frame, header) and returns the
        #: block execution continues from.
        self.loop_overrides: dict[int, object] = {}

    # -- public API --------------------------------------------------------

    def run_main(self):
        """Execute ``main()`` and return its value."""
        if "main" not in self.module.functions:
            raise InterpreterError("module has no main function")
        return self.call(self.module.get_function("main"), [])

    def call(self, function: Function | str, args: list):
        """Call a function (by object or name) with Python-level args."""
        if isinstance(function, str):
            function = self.module.get_function(function)
        if function.is_declaration:
            return self._intrinsic(function, args)
        return self._run(function, args)

    def instructions_in_blocks(self, blocks) -> int:
        """Dynamic instructions attributed to the given blocks."""
        return sum(self.block_counts.get(id(b), 0) for b in blocks)

    # -- execution ----------------------------------------------------------

    def _run(self, function: Function, args: list):
        frame: dict[int, object] = {}
        for argument, value in zip(function.args, args):
            frame[id(argument)] = value
        block = function.entry
        previous: BasicBlock | None = None
        while True:
            handler = self.loop_overrides.get(id(block))
            if handler is not None:
                previous, block = block, handler(self, frame, block)
                continue
            count = len(block.instructions)
            self.instructions_executed += count
            self.block_counts[id(block)] = (
                self.block_counts.get(id(block), 0) + count
            )
            if self.instructions_executed > self.max_instructions:
                raise InterpreterError("instruction budget exhausted")

            # PHIs evaluate simultaneously from the incoming edge.
            phis = block.phis()
            if phis:
                incoming = [
                    self._value(phi.incoming_for_block(previous), frame)
                    for phi in phis
                ]
                for phi, value in zip(phis, incoming):
                    frame[id(phi)] = value

            for instruction in block.instructions[len(phis):]:
                if isinstance(instruction, BranchInst):
                    if instruction.is_conditional:
                        taken = self._value(instruction.condition, frame)
                        target = instruction.targets()[0 if taken else 1]
                    else:
                        target = instruction.targets()[0]
                    previous, block = block, target
                    break
                if isinstance(instruction, ReturnInst):
                    if instruction.return_value is None:
                        return None
                    return self._value(instruction.return_value, frame)
                self._execute(instruction, frame)
            else:
                raise InterpreterError(
                    f"block {block.name} fell through without terminator"
                )

    def _execute(self, instruction, frame) -> None:
        if isinstance(instruction, BinaryInst):
            lhs = self._value(instruction.lhs, frame)
            rhs = self._value(instruction.rhs, frame)
            table = (
                _FLOAT_BINOPS
                if instruction.opcode in _FLOAT_BINOPS
                else _INT_BINOPS
            )
            frame[id(instruction)] = table[instruction.opcode](lhs, rhs)
        elif isinstance(instruction, ICmpInst):
            frame[id(instruction)] = _ICMP[instruction.predicate](
                self._value(instruction.lhs, frame),
                self._value(instruction.rhs, frame),
            )
        elif isinstance(instruction, FCmpInst):
            frame[id(instruction)] = _FCMP[instruction.predicate](
                self._value(instruction.lhs, frame),
                self._value(instruction.rhs, frame),
            )
        elif isinstance(instruction, LoadInst):
            pointer = self._value(instruction.pointer, frame)
            frame[id(instruction)] = pointer.load()
        elif isinstance(instruction, StoreInst):
            pointer = self._value(instruction.pointer, frame)
            pointer.store(self._value(instruction.value, frame))
        elif isinstance(instruction, GEPInst):
            pointer = self._value(instruction.base, frame)
            delta = self._value(instruction.index, frame)
            frame[id(instruction)] = pointer.displaced(delta)
        elif isinstance(instruction, CallInst):
            args = [self._value(a, frame) for a in instruction.args]
            frame[id(instruction)] = self.call(instruction.callee, args)
        elif isinstance(instruction, SelectInst):
            taken = self._value(instruction.condition, frame)
            chosen = instruction.if_true if taken else instruction.if_false
            frame[id(instruction)] = self._value(chosen, frame)
        elif isinstance(instruction, CastInst):
            frame[id(instruction)] = self._cast(instruction, frame)
        elif isinstance(instruction, AllocaInst):
            buffer = Buffer(
                instruction.allocated_type,
                instruction.count,
                instruction.name or "alloca",
            )
            frame[id(instruction)] = Pointer(buffer, 0)
        elif isinstance(instruction, PhiInst):
            raise InterpreterError("phi outside block head")
        else:
            raise InterpreterError(f"cannot execute {instruction!r}")

    def _cast(self, instruction: CastInst, frame):
        value = self._value(instruction.value, frame)
        opcode = instruction.opcode
        if opcode == "sitofp":
            return float(value)
        if opcode == "fptosi":
            return int(value)
        if opcode in ("zext", "sext"):
            return int(value)
        if opcode == "trunc":
            return int(value)
        if opcode in ("fpext", "fptrunc"):
            return float(value)
        raise InterpreterError(f"unknown cast {opcode}")

    def _value(self, value: Value, frame):
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, GlobalVariable):
            return self.memory.pointer_to(value)
        if isinstance(value, UndefValue):
            return 0.0 if isinstance(value.type, FloatType) else 0
        key = id(value)
        if key in frame:
            return frame[key]
        raise InterpreterError(f"use of undefined value {value!r}")

    # -- intrinsics ---------------------------------------------------------

    def _intrinsic(self, function: Function, args: list):
        name = function.name
        self.instructions_executed += 1
        if name == "sqrt":
            return math.sqrt(args[0])
        if name == "log":
            return math.log(args[0])
        if name == "exp":
            return math.exp(args[0])
        if name == "fabs":
            return abs(args[0])
        if name == "sin":
            return math.sin(args[0])
        if name == "cos":
            return math.cos(args[0])
        if name == "floor":
            return math.floor(args[0])
        if name == "ceil":
            return math.ceil(args[0])
        if name == "pow":
            return math.pow(args[0], args[1])
        if name == "fmin":
            return min(args[0], args[1])
        if name == "fmax":
            return max(args[0], args[1])
        if name == "fmod":
            return math.fmod(args[0], args[1])
        if name == "abs":
            return abs(args[0])
        if name == "min":
            return min(args[0], args[1])
        if name == "max":
            return max(args[0], args[1])
        if name == "rand":
            self.seed = (self.seed * 1103515245 + 12345) & 0x7FFFFFFF
            return self.seed
        if name == "srand":
            self.seed = args[0] & 0x7FFFFFFF
            return None
        if name == "clock":
            self._clock += 1
            return self._clock
        if name == "print_int":
            self.output.append(str(args[0]))
            return None
        if name == "print_double":
            self.output.append(f"{args[0]:.6f}")
            return None
        raise InterpreterError(f"unknown intrinsic {name}")
