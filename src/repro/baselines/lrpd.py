"""LRPD-test baseline (Rauchwerger & Padua [28]).

§6.1: *"The methodology from [28] ... does not capture complex control
flow, as is for example present in the tpacf program.  Furthermore
benchmarks such as EP contained pure function calls to sqrt and log,
but [28] is restricted to arithmetic operators."*

The model marks a loop as speculatively parallelizable with reduction
when every accumulator update is a plain arithmetic operator chain and
the loop body has at most simple (single-diamond) control flow with no
calls at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loops import LoopInfo
from ..analysis.scev import ScalarEvolution
from ..idioms.postprocess import classify_update
from ..ir.function import Function
from ..ir.instructions import CallInst
from ..ir.module import Module


@dataclass
class LrpdReport:
    """Loops the LRPD model would speculate on."""

    module_name: str
    reductions: list[str] = field(default_factory=list)

    def count(self) -> int:
        """Number of speculated reductions."""
        return len(self.reductions)


def analyze_module(module: Module) -> LrpdReport:
    """Run the LRPD model over every defined function."""
    report = LrpdReport(module.name)
    for function in module.defined_functions():
        report.reductions.extend(_analyze_function(function))
    return report


def _analyze_function(function: Function) -> list[str]:
    loop_info = LoopInfo(function)
    scev = ScalarEvolution(function, loop_info)
    found = []
    for loop in loop_info.loops:
        bounds = scev.loop_bounds(loop)
        if bounds is None:
            continue
        # No calls at all: [28] is restricted to arithmetic operators.
        if any(
            isinstance(i, CallInst)
            for b in loop.blocks
            for i in b.instructions
        ):
            continue
        # No complex control flow: at most one conditional inside.
        conditionals = sum(
            1
            for b in loop.blocks
            if b is not loop.header
            and b.terminator is not None
            and getattr(b.terminator, "is_conditional", False)
        )
        if conditionals > 1:
            continue
        for phi in loop.header.phis():
            if phi is bounds.iterator or len(phi.incoming) != 2:
                continue
            update = None
            for value, pred in phi.incoming:
                if pred in loop.blocks:
                    update = value
            if update is None:
                continue
            op = classify_update(phi, update)
            if op is not None:
                found.append(f"{function.name}:{phi.short_name()}")
    return found


__all__ = ["LrpdReport", "analyze_module"]
