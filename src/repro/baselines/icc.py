"""Intel icc baseline: data-dependence auto-parallelization model.

Models icc's ``-parallel`` loop analysis as characterized in §5.2/§6.1:

* icc is more robust than Polly — no static-control precondition — but
  analyses one **innermost** loop at a time; reductions whose carrying
  loop is in the middle of a nest are missed (the SP failure);
* it recognises scalar reductions (sum/product/min/max, including
  conditional updates) through dependence testing;
* a call to a function outside its known vector-math list blocks
  parallelization of the whole loop — crucially it does *not* know
  ``fmin``/``fmax`` are pure, which loses most cutcp reductions;
* any store through a non-affine (indirect) index creates an
  unresolvable output dependence: histograms are never parallelized
  (*"It is clear that icc does not attempt to detect histograms"*);
* loads from arrays that the same loop stores to are unresolved flow
  dependences and block the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loops import Loop, LoopInfo
from ..analysis.scev import ScalarEvolution
from ..constraints.flow import root_base
from ..idioms.postprocess import classify_update
from ..ir.function import Function
from ..ir.instructions import (
    CallInst,
    GEPInst,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.module import Module

#: Math routines icc can vectorize/parallelize around (libimf-style).
KNOWN_VECTOR_MATH = frozenset(
    {"sqrt", "log", "exp", "sin", "cos", "fabs", "pow", "floor", "ceil"}
)


@dataclass
class IccLoopReport:
    """icc's verdict on one innermost loop."""

    function: Function
    loop: Loop
    parallelizable: bool
    #: Names of the accumulator PHIs recognised as reductions.
    reductions: list[str] = field(default_factory=list)
    reason: str = ""


@dataclass
class IccReport:
    """icc's verdict on a whole module (the -qopt-report analogue)."""

    module_name: str
    loops: list[IccLoopReport] = field(default_factory=list)

    @property
    def reductions(self) -> list[str]:
        """All recognised reductions."""
        return [r for l in self.loops for r in l.reductions]

    def reduction_count(self) -> int:
        """Number of scalar reductions icc would report."""
        return len(self.reductions)


def analyze_module(module: Module) -> IccReport:
    """Run the icc model over every defined function."""
    report = IccReport(module.name)
    for function in module.defined_functions():
        loop_info = LoopInfo(function)
        scev = ScalarEvolution(function, loop_info)
        for loop in loop_info.loops:
            if not loop.is_innermost():
                continue  # icc analyses innermost loops
            report.loops.append(_analyze_loop(function, loop, scev))
    return report


def _analyze_loop(function: Function, loop: Loop,
                  scev: ScalarEvolution) -> IccLoopReport:
    bounds = scev.loop_bounds(loop)
    if bounds is None:
        return IccLoopReport(function, loop, False, reason="irregular loop")

    stored_bases: set[int] = set()
    for block in loop.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, CallInst):
                if instruction.callee.name not in KNOWN_VECTOR_MATH:
                    return IccLoopReport(
                        function, loop, False,
                        reason=f"call to {instruction.callee.name} "
                               f"(unknown side effects)",
                    )
            elif isinstance(instruction, StoreInst):
                pointer = instruction.pointer
                base = root_base(pointer)
                stored_bases.add(id(base))
                if isinstance(pointer, GEPInst):
                    affine = scev.affine_at(pointer.index, loop)
                    if affine is None:
                        return IccLoopReport(
                            function, loop, False,
                            reason="indirect store (unresolvable output "
                                   "dependence)",
                        )

    # Scalar stores to globals whose address is loop invariant are the
    # in-memory accumulators; after mem2reg these appear as PHIs, so a
    # direct store inside the loop means the dependence is unresolved.
    reductions = []
    iterator = bounds.iterator
    for phi in loop.header.phis():
        if phi is iterator or len(phi.incoming) != 2:
            continue
        update = None
        for value, pred in phi.incoming:
            if pred in loop.blocks:
                update = value
        if update is None:
            continue
        op = classify_update(phi, update)
        if op is None:
            return IccLoopReport(
                function, loop, False,
                reason=f"loop-carried dependence on {phi.short_name()}",
            )
        reductions.append(f"{phi.short_name()}@{loop.header.name}")

    # Flow dependences: loads from bases the loop stores to, and
    # indirect loads the dependence tests cannot disambiguate (this is
    # why gather-style sums such as spmv's are not auto-parallelized).
    for block in loop.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, LoadInst):
                pointer = instruction.pointer
                if id(root_base(pointer)) in stored_bases:
                    return IccLoopReport(
                        function, loop, False,
                        reason="flow dependence through memory",
                    )
                if isinstance(pointer, GEPInst):
                    if scev.affine_at(pointer.index, loop) is None:
                        return IccLoopReport(
                            function, loop, False,
                            reason="assumed dependence (indirect access)",
                        )

    return IccLoopReport(function, loop, True, reductions=reductions)


def detected_reduction_count(module: Module) -> int:
    """Reductions icc finds: recognised accumulators in loops it can
    actually parallelize."""
    report = analyze_module(module)
    return sum(
        len(l.reductions) for l in report.loops if l.parallelizable
    )


__all__ = [
    "IccReport",
    "IccLoopReport",
    "analyze_module",
    "detected_reduction_count",
    "KNOWN_VECTOR_MATH",
]
