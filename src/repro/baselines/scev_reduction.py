"""LLVM scalar-evolution-style reduction finder.

§6.1: *"The LLVM scalar evolution analysis pass ... [is] fundamentally
limited to scalar reductions and was hence unable to capture
information about any of the histogram reductions."*  This baseline
models the classic LoopVectorizer-style recognition: an innermost,
single-latch loop whose accumulator PHI is updated by a straight
(unconditional) chain of one associative operator — no control flow in
the update, no calls, no histograms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loops import LoopInfo
from ..analysis.scev import ScalarEvolution
from ..ir.function import Function
from ..ir.instructions import BinaryInst, CallInst
from ..ir.module import Module

_RECOGNISED_OPCODES = frozenset({"add", "fadd", "mul", "fmul"})


@dataclass
class ScevReductionReport:
    """Reductions the SCEV-style recogniser accepts."""

    module_name: str
    reductions: list[str] = field(default_factory=list)

    def count(self) -> int:
        """Number of recognised reductions."""
        return len(self.reductions)


def analyze_module(module: Module) -> ScevReductionReport:
    """Run the recogniser over every defined function."""
    report = ScevReductionReport(module.name)
    for function in module.defined_functions():
        report.reductions.extend(_analyze_function(function))
    return report


def _analyze_function(function: Function) -> list[str]:
    loop_info = LoopInfo(function)
    scev = ScalarEvolution(function, loop_info)
    found = []
    for loop in loop_info.loops:
        if not loop.is_innermost():
            continue
        bounds = scev.loop_bounds(loop)
        if bounds is None:
            continue
        # Straight-line body only: header + one body block + latch at
        # most, and no calls anywhere.
        if len(loop.blocks) > 3:
            continue
        if any(
            isinstance(i, CallInst)
            for b in loop.blocks
            for i in b.instructions
        ):
            continue
        for phi in loop.header.phis():
            if phi is bounds.iterator or len(phi.incoming) != 2:
                continue
            update = None
            for value, pred in phi.incoming:
                if pred in loop.blocks:
                    update = value
            if not isinstance(update, BinaryInst):
                continue
            if update.opcode not in _RECOGNISED_OPCODES:
                continue
            if update.lhs is not phi and update.rhs is not phi:
                continue
            found.append(f"{function.name}:{phi.short_name()}")
    return found


__all__ = ["ScevReductionReport", "analyze_module"]
