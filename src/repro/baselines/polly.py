"""Polly baseline: SCoP detection plus reduction-enabled scheduling.

Models the behaviour of Polly with the reduction extension of Doerfert
et al. [12], as characterized in §5.2/§6.1 of the paper:

* reductions can only be found inside **SCoPs** (static control parts);
* a loop nest is a SCoP only when every loop bound is a compile-time
  constant or a function argument (*"not statically known iteration
  spaces"* break Polly on many benchmarks);
* every memory access must be affine with **compile-time-constant
  induction-variable coefficients** — flattened arrays indexed as
  ``i*nx + j`` with parametric ``nx`` fail delinearization (*"the use
  of flat array structures"*);
* any call (even to a pure math routine) and any data-dependent branch
  condition breaks static control;
* within a SCoP, a reduction is a loop-carried accumulator (scalar PHI
  or same-address affine load/store pair) combined through an
  associative operator — indirect (histogram) accesses are impossible
  by construction, *"as the indirect memory access that is present in
  histograms contradicts the affine memory access condition"*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loops import Loop, LoopInfo
from ..analysis.scev import ScalarEvolution
from ..constraints.flow import root_base
from ..idioms.postprocess import classify_update
from ..idioms.reports import ReductionOp
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BranchInst,
    CallInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Argument, ConstantInt, GlobalVariable, Value


@dataclass
class SCoP:
    """A static control part: one qualifying top-level loop nest."""

    function: Function
    root: Loop
    #: Scalar/array reductions found inside (Doerfert-style).
    reductions: list[str] = field(default_factory=list)

    @property
    def is_reduction_scop(self) -> bool:
        """True when the SCoP carries at least one reduction."""
        return bool(self.reductions)

    @property
    def name(self) -> str:
        """Stable identifier."""
        return f"{self.function.name}:{self.root.header.name}"


@dataclass
class PollyReport:
    """SCoPs and reductions Polly finds in one module."""

    module_name: str
    scops: list[SCoP] = field(default_factory=list)

    @property
    def reduction_scops(self) -> list[SCoP]:
        """SCoPs containing reductions."""
        return [s for s in self.scops if s.is_reduction_scop]

    def counts(self) -> tuple[int, int]:
        """(total SCoPs, reduction SCoPs)."""
        return len(self.scops), len(self.reduction_scops)

    @property
    def reductions(self) -> list[str]:
        """All reduction identifiers across SCoPs."""
        return [r for s in self.scops for r in s.reductions]


def analyze_module(module: Module) -> PollyReport:
    """Run the Polly model over every defined function."""
    report = PollyReport(module.name)
    for function in module.defined_functions():
        report.scops.extend(find_scops(function))
    return report


def find_scops(function: Function) -> list[SCoP]:
    """Top-level loop nests of ``function`` that qualify as SCoPs."""
    loop_info = LoopInfo(function)
    scev = ScalarEvolution(function, loop_info)
    scops = []
    for loop in loop_info.top_level_loops():
        if _nest_is_static(loop, loop_info, scev):
            scop = SCoP(function, loop)
            scop.reductions = _find_scop_reductions(loop, loop_info, scev)
            scops.append(scop)
    return scops


# -- static control -------------------------------------------------------------


def _nest_is_static(loop: Loop, loop_info: LoopInfo,
                    scev: ScalarEvolution) -> bool:
    """Check the whole nest rooted at ``loop`` for static control."""
    bounds = scev.loop_bounds(loop)
    if bounds is None:
        return False
    for value in (bounds.start, bounds.end, bounds.step):
        if not _is_polly_parameter(value):
            return False
    subloop_blocks: set[BasicBlock] = set()
    for child in loop.children:
        if not _nest_is_static(child, loop_info, scev):
            return False
        subloop_blocks |= child.blocks
    for block in loop.blocks:
        if block in subloop_blocks:
            continue
        for instruction in block.instructions:
            if isinstance(instruction, CallInst):
                return False  # calls break static control
            if isinstance(instruction, (LoadInst, StoreInst)):
                if not _access_is_polly_affine(instruction, loop, scev):
                    return False
            if isinstance(instruction, BranchInst) and instruction.is_conditional:
                if block is loop.header:
                    continue
                if not _condition_is_static(
                    instruction.condition, loop, scev
                ):
                    return False
    return True


def _is_polly_parameter(value: Value) -> bool:
    """Bounds must be literal constants or function arguments."""
    return isinstance(value, (ConstantInt, Argument))


def _access_is_polly_affine(instruction, loop: Loop,
                            scev: ScalarEvolution) -> bool:
    pointer = instruction.pointer
    base = root_base(pointer)
    if not isinstance(base, (GlobalVariable, Argument)):
        return False
    if not isinstance(pointer, GEPInst):
        return True  # direct scalar access
    affine = scev.affine_at(pointer.index, loop)
    if affine is None:
        return False
    if not affine.iv_coefficients_constant():
        return False
    # Parameter products are non-affine over the full iteration space
    # (an enclosing loop's IV is a parameter here): this is the flat
    # array / delinearization failure of §6.1.
    return not affine.has_parameter_products()


def _condition_is_static(condition: Value, loop: Loop,
                         scev: ScalarEvolution) -> bool:
    """Branch conditions must compare affine integer expressions."""
    if not isinstance(condition, ICmpInst):
        return False
    for operand in (condition.lhs, condition.rhs):
        affine = scev.affine_at(operand, loop)
        if affine is None or not affine.iv_coefficients_constant():
            return False
        for parameter in affine.parameters():
            if not _is_polly_parameter(parameter):
                return False
    return True


# -- reductions inside SCoPs ---------------------------------------------------


def _find_scop_reductions(root: Loop, loop_info: LoopInfo,
                          scev: ScalarEvolution) -> list[str]:
    reductions: list[str] = []
    nest = [root]
    work = [root]
    while work:
        loop = work.pop()
        for child in loop.children:
            nest.append(child)
            work.append(child)
    for loop in nest:
        reductions.extend(_scalar_reductions_in(loop, scev))
    reductions.extend(_array_reductions_in(root, loop_info, scev))
    return reductions


def _scalar_reductions_in(loop: Loop, scev: ScalarEvolution) -> list[str]:
    """Accumulator PHIs with associative updates (sum/product)."""
    found = []
    bounds = scev.loop_bounds(loop)
    iterator = bounds.iterator if bounds is not None else None
    for phi in loop.header.phis():
        if phi is iterator or len(phi.incoming) != 2:
            continue
        update = None
        for value, pred in phi.incoming:
            if pred in loop.blocks:
                update = value
        if update is None:
            continue
        op = classify_update(phi, update)
        if op in (ReductionOp.ADD, ReductionOp.MUL):
            found.append(f"scalar:{phi.short_name()}@{loop.header.name}")
    return found


def _array_reductions_in(root: Loop, loop_info: LoopInfo,
                         scev: ScalarEvolution) -> list[str]:
    """Same-address affine load/store pairs combined associatively and
    carried by some loop of the nest whose iterator is absent from the
    address — this is how Polly sees SP's mid-nest ``rms[m]``
    reduction (§6.1)."""
    found = []
    for block in root.blocks:
        innermost = loop_info.innermost_loop_of(block)
        if innermost is None:
            continue
        for store in block.instructions:
            if not isinstance(store, StoreInst):
                continue
            pointer = store.pointer
            if not isinstance(pointer, GEPInst):
                continue
            for load_use in pointer.uses:
                load = load_use.user
                if not isinstance(load, LoadInst) or load.parent is not block:
                    continue
                op = classify_update(load, store.value)
                if op not in (ReductionOp.ADD, ReductionOp.MUL):
                    continue
                affine = scev.affine_at(pointer.index, innermost)
                if affine is None or not affine.iv_coefficients_constant():
                    continue
                address_ivs = affine.induction_variables()
                # Carried by an enclosing loop whose IV the address
                # does not use.
                carrier = None
                node: Loop | None = innermost
                while node is not None:
                    iv = scev.induction_variable(node)
                    if iv is not None and iv.phi not in address_ivs:
                        carrier = node
                    if node is root:
                        break
                    node = node.parent
                if carrier is not None:
                    found.append(
                        f"array:{root_base(pointer).short_name()}"
                        f"@{carrier.header.name}"
                    )
    return found


__all__ = ["SCoP", "PollyReport", "analyze_module", "find_scops"]
