"""Comparison baselines: Polly+reductions, icc, SCEV, LRPD models."""

from . import icc, lrpd, polly, scev_reduction
from .icc import IccLoopReport, IccReport
from .polly import PollyReport, SCoP
from .lrpd import LrpdReport
from .scev_reduction import ScevReductionReport

__all__ = [
    "icc",
    "polly",
    "lrpd",
    "scev_reduction",
    "IccReport",
    "IccLoopReport",
    "PollyReport",
    "SCoP",
    "LrpdReport",
    "ScevReductionReport",
]
