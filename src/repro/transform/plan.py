"""Parallelization planning for detected reductions (§4 of the paper).

For each loop carrying detected reductions, the planner decides whether
the paper's privatization scheme applies:

* the loop must be a canonical counted loop with unit step;
* every store in the loop must belong to a detected histogram (other
  writes would need further analysis — this is exactly why the kmeans
  transform fails: its loop updates additional arrays inside a nested
  loop, §6.3);
* every value flowing out of the loop must be a detected accumulator
  (or the iterator itself);
* no impure calls may execute inside the loop;
* histogram merges must be additive (all histograms in the suites
  update bins by addition, §6.1).

The outcome is either a :class:`ParallelPlan` (consumed by the outliner
and the simulated parallel executor) or a :class:`TransformFailure`
carrying the reason, which the evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.defuse import users_outside_loop
from ..analysis.loops import Loop
from ..analysis.scev import LoopBounds, ScalarEvolution
from ..idioms.reports import (
    FunctionReductions,
    HistogramReduction,
    ReductionOp,
    ScalarReduction,
)
from ..ir.function import Function
from ..ir.instructions import CallInst, PhiInst, StoreInst
from ..ir.module import Module
from ..ir.values import ConstantInt, Value


@dataclass
class TransformFailure:
    """A loop the code generator refuses to parallelize, and why."""

    function: Function
    loop: Loop
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.function.name}:{self.loop.header.name}: {self.reason}"
        )


@dataclass
class ParallelPlan:
    """Everything needed to outline and run one parallel reduction loop."""

    function: Function
    loop: Loop
    bounds: LoopBounds
    scalars: list[ScalarReduction] = field(default_factory=list)
    histograms: list[HistogramReduction] = field(default_factory=list)
    #: True when the histogram extent is not statically known and the
    #: generated code must bounds-check and reallocate (§4).
    dynamic_bounds: bool = False

    @property
    def header(self):
        """The loop header block."""
        return self.loop.header

    def reduction_names(self) -> list[str]:
        """Identifiers of all reductions the plan covers."""
        return [s.name for s in self.scalars] + [
            h.name for h in self.histograms
        ]


_IDENTITY = {
    ReductionOp.ADD: 0,
    ReductionOp.MUL: 1,
    ReductionOp.MIN: float("inf"),
    ReductionOp.MAX: float("-inf"),
}


def identity_value(op: ReductionOp, is_float: bool):
    """The merge identity element of an operator."""
    value = _IDENTITY[op]
    if is_float:
        return float(value)
    if op is ReductionOp.MIN:
        return 2**62
    if op is ReductionOp.MAX:
        return -(2**62)
    return int(value)


def merge_values(op: ReductionOp, a, b):
    """Combine two partial results."""
    if op is ReductionOp.ADD:
        return a + b
    if op is ReductionOp.MUL:
        return a * b
    if op is ReductionOp.MIN:
        return min(a, b)
    return max(a, b)


def plan_loop(
    module: Module,
    reductions: FunctionReductions,
    loop: Loop,
) -> ParallelPlan | TransformFailure:
    """Plan the parallelization of one reduction-carrying loop."""
    function = reductions.function
    scalars = [s for s in reductions.scalars if s.loop is loop]
    histograms = [h for h in reductions.histograms if h.loop is loop]
    if not scalars and not histograms:
        return TransformFailure(function, loop, "no reductions in loop")

    scev = ScalarEvolution(function)
    bounds = scev.loop_bounds(loop)
    if bounds is None:
        return TransformFailure(function, loop, "loop bounds not canonical")
    if not (
        isinstance(bounds.step, ConstantInt) and bounds.step.value == 1
    ):
        return TransformFailure(function, loop, "non-unit loop step")
    if bounds.predicate not in ("slt", "sle", "ne"):
        return TransformFailure(
            function, loop, f"unsupported exit predicate {bounds.predicate}"
        )

    hist_stores = {id(h.hist_store) for h in histograms}
    for block in loop.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, StoreInst):
                if id(instruction) not in hist_stores:
                    return TransformFailure(
                        function,
                        loop,
                        "store not covered by a detected reduction "
                        "(multiple histogram updates in a nested loop)",
                    )
            elif isinstance(instruction, CallInst):
                if not instruction.callee.pure:
                    return TransformFailure(
                        function,
                        loop,
                        f"impure call to {instruction.callee.name} in loop",
                    )

    accs = {id(s.acc) for s in scalars}
    accs.add(id(bounds.iterator))
    for block in loop.blocks:
        for instruction in block.instructions:
            if users_outside_loop(instruction, loop):
                if id(instruction) in accs:
                    continue
                if (
                    isinstance(instruction, PhiInst)
                    and instruction.parent is loop.header
                ):
                    return TransformFailure(
                        function,
                        loop,
                        f"loop-carried value {instruction.short_name()} "
                        f"escapes the loop",
                    )
                return TransformFailure(
                    function,
                    loop,
                    f"value {instruction.short_name()} computed in the "
                    f"loop is used outside it",
                )

    # Extra loop-carried state (header PHIs that are neither the
    # iterator nor a detected accumulator) cannot be privatized.
    for phi in loop.header.phis():
        if id(phi) not in accs:
            return TransformFailure(
                function,
                loop,
                f"unrecognised loop-carried value {phi.short_name()}",
            )

    for histogram in histograms:
        if histogram.op is not ReductionOp.ADD:
            return TransformFailure(
                function,
                loop,
                f"histogram merge operator {histogram.op.value} not "
                f"supported by the code generator",
            )

    dynamic = any(not _static_extent(module, h.base) for h in histograms)
    return ParallelPlan(
        function=function,
        loop=loop,
        bounds=bounds,
        scalars=scalars,
        histograms=histograms,
        dynamic_bounds=dynamic,
    )


def plan_all(
    module: Module, reductions: FunctionReductions
) -> tuple[list[ParallelPlan], list[TransformFailure]]:
    """Plan every reduction-carrying loop of one function."""
    loops: list[Loop] = []
    seen: set[int] = set()
    for record in list(reductions.scalars) + list(reductions.histograms):
        if id(record.loop) not in seen:
            seen.add(id(record.loop))
            loops.append(record.loop)
    plans: list[ParallelPlan] = []
    failures: list[TransformFailure] = []
    for loop in loops:
        outcome = plan_loop(module, reductions, loop)
        if isinstance(outcome, ParallelPlan):
            plans.append(outcome)
        else:
            failures.append(outcome)
    return plans, failures


def _static_extent(module: Module, base: Value) -> bool:
    """True when the histogram array's extent is known statically."""
    from ..ir.values import GlobalVariable

    return isinstance(base, GlobalVariable)
