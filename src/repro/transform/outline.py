"""Loop outlining: extract a reduction loop into a task function.

This is the code-generation step of §4: the loop body is cloned into a
standalone function

    void task(i64 begin, i64 end, <hist bases...>, <acc outs...>,
              <closure values...>)

where each privatized histogram base becomes a pointer parameter (the
driver passes a thread-private copy), each scalar accumulator's partial
result is written through an out-pointer, and every other value the
body reads from the enclosing function is passed in the closure — the
paper packs them into a struct; we pass them as parameters, which is
equivalent.

Accumulators start at their operator's identity inside the task; the
driver merges partials into the incoming values, so the result is
independent of the partition (up to floating point reassociation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import (
    INT64,
    BasicBlock,
    BranchInst,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    Instruction,
    Module,
    PhiInst,
    PointerType,
    StoreInst,
    VOID,
    const_float,
    const_int,
)
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    ReturnInst,
    SelectInst,
)
from ..ir.types import FloatType
from ..ir.values import Argument, Constant, Value
from .plan import ParallelPlan, identity_value


class OutlineError(Exception):
    """Raised when a plan cannot be outlined (should not happen for
    plans produced by :func:`~repro.transform.plan.plan_loop`)."""


@dataclass
class OutlinedTask:
    """The extracted task function plus its calling convention."""

    plan: ParallelPlan
    task: Function
    #: Values of the original function to evaluate and pass after
    #: (begin, end, hist pointers, acc out-pointers), in order.
    closure: list[Value] = field(default_factory=list)
    #: Histogram bases, in parameter order.
    hist_bases: list[Value] = field(default_factory=list)

    @property
    def scalar_accs(self):
        """Scalar reductions in out-parameter order."""
        return self.plan.scalars


def outline_loop(module: Module, plan: ParallelPlan,
                 name: str | None = None) -> OutlinedTask:
    """Clone ``plan``'s loop into a new task function in ``module``."""
    function = plan.function
    loop = plan.loop
    header = loop.header
    iterator = plan.bounds.iterator

    hist_bases: list[Value] = []
    for histogram in plan.histograms:
        if histogram.base not in hist_bases:
            hist_bases.append(histogram.base)

    # ---- discover closure values -------------------------------------------
    loop_values: set[int] = set()
    for block in loop.blocks:
        loop_values.add(id(block))
        for instruction in block.instructions:
            loop_values.add(id(instruction))
    hist_base_ids = {id(b) for b in hist_bases}

    closure: list[Value] = []

    def needs_closure(value: Value) -> bool:
        if id(value) in loop_values or id(value) in hist_base_ids:
            return False
        if isinstance(value, (Constant, GlobalVariable, Function)):
            return False
        if isinstance(value, BasicBlock):
            return False
        return isinstance(value, (Instruction, Argument))

    for block in loop.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, PhiInst) and block is header:
                continue  # header phi externals handled via begin/identity
            for operand in instruction.operands:
                if needs_closure(operand) and operand not in closure:
                    closure.append(operand)

    # ---- build the signature ---------------------------------------------------
    param_types: list = [INT64, INT64]
    param_names = ["begin", "end"]
    for base in hist_bases:
        param_types.append(base.type)
        param_names.append(f"priv_{base.short_name().lstrip('@')}")
    for index, scalar in enumerate(plan.scalars):
        param_types.append(PointerType(scalar.acc.type))
        param_names.append(f"out_{index}")
    for index, value in enumerate(closure):
        param_types.append(value.type)
        param_names.append(f"cl_{index}")

    task_name = name or f"{function.name}.{header.name}.task"
    suffix = 0
    while task_name in module.functions:
        suffix += 1
        task_name = f"{function.name}.{header.name}.task{suffix}"
    task = module.add_function(
        task_name, FunctionType(VOID, tuple(param_types)), param_names
    )

    begin_arg, end_arg = task.args[0], task.args[1]
    hist_args = {
        id(base): task.args[2 + i] for i, base in enumerate(hist_bases)
    }
    out_args = {
        id(scalar.acc): task.args[2 + len(hist_bases) + i]
        for i, scalar in enumerate(plan.scalars)
    }
    closure_args = {
        id(value): task.args[2 + len(hist_bases) + len(plan.scalars) + i]
        for i, value in enumerate(closure)
    }

    # ---- clone blocks -----------------------------------------------------------
    entry = task.add_block("entry")
    block_map: dict[int, BasicBlock] = {}
    ordered_blocks = [b for b in function.blocks if b in loop.blocks]
    for block in ordered_blocks:
        block_map[id(block)] = task.add_block(f"{block.name}")
    exit_block = task.add_block("task.exit")

    IRBuilder(entry).br(block_map[id(header)])

    acc_identity: dict[int, Value] = {}
    for scalar in plan.scalars:
        is_float = isinstance(scalar.acc.type, FloatType)
        identity = identity_value(scalar.op, is_float)
        acc_identity[id(scalar.acc)] = (
            const_float(identity) if is_float else const_int(identity)
        )

    value_map: dict[int, Value] = {}

    def mapped(value: Value) -> Value:
        if id(value) in value_map:
            return value_map[id(value)]
        if id(value) in hist_args:
            return hist_args[id(value)]
        if id(value) in closure_args:
            return closure_args[id(value)]
        if isinstance(value, BasicBlock):
            if id(value) in block_map:
                return block_map[id(value)]
            return exit_block  # edges leaving the loop
        if value is plan.bounds.end:
            # handled only via the test rewrite below
            return end_arg
        return value  # constants, globals, declared functions

    # First pass: create clones so forward references resolve.
    clones: list[tuple[Instruction, Instruction]] = []
    for block in ordered_blocks:
        new_block = block_map[id(block)]
        for instruction in block.instructions:
            clone = _shallow_clone(instruction)
            value_map[id(instruction)] = clone
            clones.append((instruction, clone))
            new_block.append(clone)

    # Second pass: remap operands.
    for original, clone in clones:
        for index, operand in enumerate(original.operands):
            clone.set_operand(index, mapped(operand))

    # Rewrite the header PHIs: iterator starts at begin, accumulators at
    # their identity; the test compares against the end parameter.
    new_header = block_map[id(header)]
    new_entry_pred = entry
    for phi in header.phis():
        clone = value_map[id(phi)]
        assert isinstance(clone, PhiInst)
        # Incoming from outside the loop becomes the entry edge.
        for index in range(0, len(clone.operands), 2):
            pred = clone.operands[index + 1]
            if pred not in task.blocks or pred is exit_block:
                clone.set_operand(index + 1, new_entry_pred)
                if phi is iterator:
                    clone.set_operand(index, begin_arg)
                elif id(phi) in acc_identity:
                    clone.set_operand(index, acc_identity[id(phi)])

    # The exit test: replace the end bound with the parameter.  The
    # driver always passes a half-open [begin, end) range, so the
    # predicate becomes slt.
    test_clone = value_map[id(header.terminator.condition)]
    new_test = ICmpInst("slt", value_map[id(iterator)], end_arg, "task.cmp")
    new_header.insert(len(new_header.instructions) - 1, new_test)
    test_clone.replace_all_uses_with(new_test)

    # Exit block: write back partial accumulator values, return.
    exit_builder = IRBuilder(exit_block)
    for scalar in plan.scalars:
        exit_builder.store(value_map[id(scalar.acc)], out_args[id(scalar.acc)])
    exit_builder.ret()

    # Clean up the now-unused original test clone if it became dead.
    if not test_clone.uses:
        test_clone.drop_all_references()
        test_clone.parent.remove(test_clone)

    from ..passes.simplify import remove_trivial_phis

    remove_trivial_phis(task)
    from ..ir.verifier import verify_function

    verify_function(task)
    return OutlinedTask(
        plan=plan, task=task, closure=closure, hist_bases=hist_bases
    )


def _shallow_clone(instruction: Instruction) -> Instruction:
    """Clone one instruction with its original operands (remapped later)."""
    if isinstance(instruction, BinaryInst):
        return BinaryInst(instruction.opcode, instruction.lhs,
                          instruction.rhs, instruction.name)
    if isinstance(instruction, ICmpInst):
        return ICmpInst(instruction.predicate, instruction.lhs,
                        instruction.rhs, instruction.name)
    if isinstance(instruction, FCmpInst):
        return FCmpInst(instruction.predicate, instruction.lhs,
                        instruction.rhs, instruction.name)
    if isinstance(instruction, LoadInst):
        return LoadInst(instruction.pointer, instruction.name)
    if isinstance(instruction, StoreInst):
        return StoreInst(instruction.value, instruction.pointer)
    if isinstance(instruction, GEPInst):
        return GEPInst(instruction.base, instruction.index, instruction.name)
    if isinstance(instruction, PhiInst):
        clone = PhiInst(instruction.type, instruction.name)
        for value, block in instruction.incoming:
            clone._append_operand(value)
            clone._append_operand(block)
        return clone
    if isinstance(instruction, BranchInst):
        if instruction.is_conditional:
            then_block, else_block = instruction.targets()
            return BranchInst(instruction.condition, then_block, else_block)
        return BranchInst(instruction.targets()[0])
    if isinstance(instruction, CallInst):
        return CallInst(instruction.callee, list(instruction.args),
                        instruction.name)
    if isinstance(instruction, SelectInst):
        return SelectInst(instruction.condition, instruction.if_true,
                          instruction.if_false, instruction.name)
    if isinstance(instruction, CastInst):
        return CastInst(instruction.opcode, instruction.value,
                        instruction.type, instruction.name)
    if isinstance(instruction, AllocaInst):
        return AllocaInst(instruction.allocated_type, instruction.count,
                          instruction.name)
    if isinstance(instruction, ReturnInst):
        raise OutlineError("return inside a reduction loop")
    raise OutlineError(f"cannot clone {instruction!r}")
