"""Profitability analysis for reduction parallelization (§3).

§3: *"Profitability heuristics are critical in practice to determine
whether or not to apply parallelizing code transformations.  We use a
simple approach based on profiling information to determine whether or
not to apply our optimization."*

Given a profile run (dynamic instruction counts) and the machine model,
:func:`assess` estimates for every planned loop the whole-program
speedup of parallelizing it — Amdahl over the measured region coverage
minus the privatization overheads — and recommends applying the
transform only when the estimate clears a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..idioms.reports import FunctionReductions
from ..ir.module import Module
from ..runtime.interpreter import Interpreter
from ..runtime.machine import MachineModel
from ..runtime.memory import Memory
from .plan import ParallelPlan, TransformFailure, plan_all


@dataclass
class ProfitabilityDecision:
    """Verdict for one parallelizable loop."""

    plan: ParallelPlan
    #: Fraction of program runtime inside the loop.
    coverage: float
    #: Estimated whole-program speedup from parallelizing this loop.
    estimated_speedup: float
    #: True when the estimate clears the threshold.
    apply: bool

    @property
    def name(self) -> str:
        """Stable identifier."""
        return (
            f"{self.plan.function.name}:{self.plan.loop.header.name}"
        )


@dataclass
class ProfitabilityReport:
    """All decisions for one module."""

    module_name: str
    total_instructions: int = 0
    decisions: list[ProfitabilityDecision] = field(default_factory=list)
    failures: list[TransformFailure] = field(default_factory=list)

    def profitable_plans(self) -> list[ParallelPlan]:
        """Plans worth outlining."""
        return [d.plan for d in self.decisions if d.apply]


def estimate_speedup(
    coverage: float,
    region_instructions: float,
    private_elements: int,
    threads: int,
    machine: MachineModel,
) -> float:
    """Amdahl with privatization overheads on the critical path."""
    if region_instructions <= 0:
        return 1.0
    overhead = (
        machine.spawn_path_cost(threads)
        + machine.alloc_path_cost(threads, private_elements)
        + machine.merge_path_cost(threads, private_elements)
    )
    parallel_region = region_instructions / threads + overhead
    sequential_region = region_instructions
    total = sequential_region / coverage if coverage > 0 else float("inf")
    new_total = (total - sequential_region) + parallel_region
    return total / new_total if new_total > 0 else 1.0


def assess(
    module: Module,
    reductions_by_function: list[FunctionReductions],
    entry: str = "main",
    threads: int = 64,
    machine: MachineModel | None = None,
    threshold: float = 1.05,
    seed: int = 12345,
) -> ProfitabilityReport:
    """Profile ``entry`` and judge each planned loop (§3's heuristic)."""
    machine = machine or MachineModel(cores=threads)
    memory = Memory(module)
    interp = Interpreter(module, memory, seed=seed)
    interp.call(module.get_function(entry), [])
    total = sum(interp.block_counts.values())

    report = ProfitabilityReport(module.name, total_instructions=total)
    for function_reductions in reductions_by_function:
        plans, failures = plan_all(module, function_reductions)
        report.failures.extend(failures)
        for plan in plans:
            region = sum(
                interp.block_counts.get(id(block), 0)
                for block in plan.loop.blocks
            )
            coverage = region / total if total else 0.0
            private = sum(
                h.base.size
                for h in plan.histograms
                if hasattr(h.base, "size")
            )
            speedup = estimate_speedup(
                coverage, region, private, threads, machine
            )
            report.decisions.append(
                ProfitabilityDecision(
                    plan=plan,
                    coverage=round(coverage, 4),
                    estimated_speedup=round(speedup, 3),
                    apply=speedup >= threshold,
                )
            )
    return report
