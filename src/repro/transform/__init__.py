"""Reduction exploitation: planning, outlining, profitability."""

from .outline import OutlinedTask, OutlineError, outline_loop
from .plan import (
    ParallelPlan,
    TransformFailure,
    identity_value,
    merge_values,
    plan_all,
    plan_loop,
)
from .profitability import (
    ProfitabilityDecision,
    ProfitabilityReport,
    assess,
    estimate_speedup,
)

__all__ = [
    "ParallelPlan",
    "TransformFailure",
    "plan_loop",
    "plan_all",
    "identity_value",
    "merge_values",
    "OutlinedTask",
    "OutlineError",
    "outline_loop",
    "assess",
    "estimate_speedup",
    "ProfitabilityDecision",
    "ProfitabilityReport",
]
