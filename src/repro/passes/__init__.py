"""Transformation passes: SSA construction and CFG cleanup."""

from .mem2reg import promotable_allocas, promote_allocas
from .simplify import (
    merge_straightline_blocks,
    remove_trivial_phis,
    remove_unreachable_blocks,
    simplify_function,
)

__all__ = [
    "promote_allocas",
    "promotable_allocas",
    "remove_unreachable_blocks",
    "remove_trivial_phis",
    "merge_straightline_blocks",
    "simplify_function",
]
