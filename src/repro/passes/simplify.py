"""CFG cleanup passes: unreachable block removal and block merging."""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import BranchInst
from ..analysis.cfg import CFG


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from the entry; returns removal count."""
    if function.is_declaration:
        return 0
    reachable = CFG(function).reachable()
    dead = [b for b in function.blocks if b not in reachable]
    for block in dead:
        for instruction in block.instructions:
            instruction.drop_all_references()
        block.instructions.clear()
    for block in dead:
        function.blocks.remove(block)
        block.parent = None
    return len(dead)


def merge_straightline_blocks(function: Function) -> int:
    """Merge ``A -> B`` pairs where A branches unconditionally to its
    only successor B and B has no other predecessors.

    Keeps the canonical loop shape intact (headers and latches always
    have other predecessors) while removing lowering scaffolding such
    as the dedicated alloca entry block.
    """
    merged = 0
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            terminator = block.terminator
            if not isinstance(terminator, BranchInst) or terminator.is_conditional:
                continue
            successor = terminator.targets()[0]
            if successor is block:
                continue
            preds = successor.predecessors()
            if len(preds) != 1 or preds[0] is not block:
                continue
            # Single predecessor: any phi is trivially replaceable.
            for phi in list(successor.phis()):
                value = phi.incoming_for_block(block)
                phi.replace_all_uses_with(value)
                phi.drop_all_references()
                successor.remove(phi)
            block.remove(terminator)
            terminator.drop_all_references()
            for instruction in list(successor.instructions):
                successor.remove(instruction)
                block.append(instruction)
            successor.replace_all_uses_with(block)
            function.blocks.remove(successor)
            successor.parent = None
            merged += 1
            changed = True
            break
    return merged


def remove_trivial_phis(function: Function) -> int:
    """Remove dead PHIs and PHIs whose incoming values are all identical."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                users = [u for u in phi.users() if u is not phi]
                if not users:
                    phi.drop_all_references()
                    block.remove(phi)
                    removed += 1
                    changed = True
                    continue
                distinct = {
                    id(v) for v in phi.incoming_values() if v is not phi
                }
                if len(distinct) == 1:
                    replacement = next(
                        v for v in phi.incoming_values() if v is not phi
                    )
                    phi.replace_all_uses_with(replacement)
                    phi.drop_all_references()
                    block.remove(phi)
                    removed += 1
                    changed = True
    return removed


def dead_code_elimination(function: Function) -> int:
    """Remove instructions whose results are never observably used.

    Roots are side-effecting instructions: stores, terminators and calls
    to impure functions.  Everything else (including PHI cycles that
    only feed each other, a common artefact of scoped locals after
    mem2reg) is deleted when not transitively reachable from a root.
    """
    from ..ir.instructions import CallInst, Instruction, ReturnInst, StoreInst

    live: set[int] = set()
    work: list = []
    for block in function.blocks:
        for instruction in block.instructions:
            is_root = False
            if isinstance(instruction, (StoreInst, ReturnInst, BranchInst)):
                is_root = True
            elif isinstance(instruction, CallInst):
                is_root = not instruction.callee.pure
            if is_root:
                live.add(id(instruction))
                work.append(instruction)
    while work:
        instruction = work.pop()
        for operand in instruction.operands:
            if isinstance(operand, Instruction) and id(operand) not in live:
                live.add(id(operand))
                work.append(operand)
    removed = 0
    for block in function.blocks:
        for instruction in list(block.instructions):
            if id(instruction) not in live:
                instruction.drop_all_references()
                block.remove(instruction)
                removed += 1
    return removed


def simplify_function(function: Function) -> None:
    """Run the full cleanup pipeline on one function."""
    remove_unreachable_blocks(function)
    dead_code_elimination(function)
    remove_trivial_phis(function)
    merge_straightline_blocks(function)
