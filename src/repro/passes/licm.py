"""Loop-invariant code motion (loads of scalar globals only).

Loop bounds like ``for (i = 0; i < nvals; i++)`` with ``nvals`` a
global lower to a load inside the loop header.  Real pipelines hoist
that load; without hoisting, the bound looks loop-variant and no
analysis can treat the iteration space as fixed.  This deliberately
minimal LICM hoists direct loads of scalar globals to the preheader
when the loop neither stores to that global nor performs impure calls.
"""

from __future__ import annotations

from ..analysis.loops import LoopInfo
from ..ir.function import Function
from ..ir.instructions import CallInst, LoadInst, StoreInst
from ..ir.values import GlobalVariable


def hoist_invariant_loads(function: Function) -> int:
    """Hoist loop-invariant scalar-global loads; returns hoist count."""
    if function.is_declaration:
        return 0
    hoisted = 0
    changed = True
    while changed:
        changed = False
        loop_info = LoopInfo(function)
        for loop in loop_info.loops:
            preheader = _unique_preheader(loop)
            if preheader is None:
                continue
            stored_globals, has_impure_call = _loop_memory_summary(loop)
            if has_impure_call:
                continue
            for block in list(loop.blocks):
                for instruction in list(block.instructions):
                    if not isinstance(instruction, LoadInst):
                        continue
                    pointer = instruction.pointer
                    if not isinstance(pointer, GlobalVariable):
                        continue
                    if pointer.name in stored_globals:
                        continue
                    block.remove(instruction)
                    insert_at = len(preheader.instructions) - 1
                    preheader.insert(insert_at, instruction)
                    hoisted += 1
                    changed = True
            if changed:
                break  # loop structures changed; recompute
    return hoisted


def _unique_preheader(loop):
    outside_preds = [
        p for p in loop.header.predecessors() if p not in loop.blocks
    ]
    if len(outside_preds) != 1:
        return None
    return outside_preds[0]


def _loop_memory_summary(loop):
    stored: set[str] = set()
    impure = False
    for block in loop.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, StoreInst):
                from ..constraints.flow import root_base

                base = root_base(instruction.pointer)
                if isinstance(base, GlobalVariable):
                    stored.add(base.name)
                else:
                    # Unknown target: be conservative, hoist nothing.
                    return set("*"), True
            elif isinstance(instruction, CallInst):
                if not instruction.callee.pure:
                    impure = True
    return stored, impure
