"""Local common subexpression elimination (per-block value numbering).

Clang/LLVM's early-CSE runs before idiom detection in the paper's
pipeline; without it, patterns like ``a[i] > m ? a[i] : m`` lower to two
loads of ``a[i]`` and the min/max classification cannot see that both
sides of the compare are the same value.  This pass unifies redundant
pure expressions within each block; loads are invalidated by stores and
by calls that may write memory.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    SelectInst,
    StoreInst,
)


def _key(instruction):
    if isinstance(instruction, BinaryInst):
        return ("bin", instruction.opcode, id(instruction.lhs),
                id(instruction.rhs))
    if isinstance(instruction, ICmpInst):
        return ("icmp", instruction.predicate, id(instruction.lhs),
                id(instruction.rhs))
    if isinstance(instruction, FCmpInst):
        return ("fcmp", instruction.predicate, id(instruction.lhs),
                id(instruction.rhs))
    if isinstance(instruction, GEPInst):
        return ("gep", id(instruction.base), id(instruction.index))
    if isinstance(instruction, CastInst):
        return ("cast", instruction.opcode, id(instruction.value),
                instruction.type)
    if isinstance(instruction, SelectInst):
        return ("select", id(instruction.condition), id(instruction.if_true),
                id(instruction.if_false))
    if isinstance(instruction, LoadInst):
        return ("load", id(instruction.pointer))
    if isinstance(instruction, CallInst) and instruction.callee.pure:
        return ("call", id(instruction.callee),
                tuple(id(a) for a in instruction.args))
    return None


def local_cse(function: Function) -> int:
    """Eliminate block-local redundant expressions; returns the count."""
    removed = 0
    for block in function.blocks:
        available: dict = {}
        for instruction in list(block.instructions):
            if isinstance(instruction, StoreInst) or (
                isinstance(instruction, CallInst)
                and not instruction.callee.pure
            ):
                # Conservative: any write may alias any load.
                available = {
                    k: v for k, v in available.items() if k[0] != "load"
                }
                continue
            key = _key(instruction)
            if key is None:
                continue
            existing = available.get(key)
            if existing is not None:
                instruction.replace_all_uses_with(existing)
                instruction.drop_all_references()
                block.remove(instruction)
                removed += 1
            else:
                available[key] = instruction
    return removed
