"""SSA construction: promote scalar allocas to registers.

This is the standard dominance-frontier algorithm (Cytron et al.) as
implemented by LLVM's mem2reg.  It is the step that turns the frontend's
load/store form into the PHI-based SSA the paper's idiom specifications
are written against (§3.1.1: the accumulator update becomes visible as
a PHI cycle only after this pass).
"""

from __future__ import annotations

from ..analysis.cfg import CFG
from ..analysis.dominators import DominatorTree, dominance_frontiers
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import AllocaInst, LoadInst, PhiInst, StoreInst
from ..ir.values import UndefValue, Value


def promotable_allocas(function: Function) -> list[AllocaInst]:
    """Allocas that can be promoted: single scalar cell, only directly
    loaded from and stored to (never indexed, passed away or aliased)."""
    result = []
    for instruction in function.instructions():
        if not isinstance(instruction, AllocaInst):
            continue
        if instruction.count != 1:
            continue
        promotable = True
        for use in instruction.uses:
            user = use.user
            if isinstance(user, LoadInst):
                continue
            if isinstance(user, StoreInst) and use.index == 1:
                continue
            promotable = False
            break
        if promotable:
            result.append(instruction)
    return result


def promote_allocas(function: Function) -> int:
    """Run mem2reg on ``function``; returns the number of promotions."""
    if function.is_declaration:
        return 0
    allocas = promotable_allocas(function)
    if not allocas:
        return 0
    tree = DominatorTree.compute(function)
    frontiers = dominance_frontiers(function, tree)
    reachable = set(tree.blocks())

    phi_owner: dict[int, AllocaInst] = {}
    for alloca in allocas:
        def_blocks = {
            use.user.parent
            for use in alloca.uses
            if isinstance(use.user, StoreInst) and use.user.parent in reachable
        }
        placed: set[BasicBlock] = set()
        work = list(def_blocks)
        while work:
            block = work.pop()
            for frontier_block in frontiers.get(block, ()):
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                phi = PhiInst(alloca.allocated_type, alloca.name or "promoted")
                frontier_block.insert(0, phi)
                phi_owner[id(phi)] = alloca
                if frontier_block not in def_blocks:
                    work.append(frontier_block)

    undef_cache: dict[int, UndefValue] = {}

    def undef_for(alloca: AllocaInst) -> UndefValue:
        cached = undef_cache.get(id(alloca))
        if cached is None:
            cached = UndefValue(alloca.allocated_type)
            undef_cache[id(alloca)] = cached
        return cached

    cfg = CFG(function)

    def rename(block: BasicBlock, values: dict[int, Value]) -> None:
        values = dict(values)
        for instruction in list(block.instructions):
            if isinstance(instruction, PhiInst):
                owner = phi_owner.get(id(instruction))
                if owner is not None:
                    values[id(owner)] = instruction
            elif isinstance(instruction, LoadInst):
                pointer = instruction.pointer
                if isinstance(pointer, AllocaInst) and pointer in alloca_set:
                    replacement = values.get(id(pointer), undef_for(pointer))
                    instruction.replace_all_uses_with(replacement)
                    instruction.drop_all_references()
                    block.remove(instruction)
            elif isinstance(instruction, StoreInst):
                pointer = instruction.pointer
                if isinstance(pointer, AllocaInst) and pointer in alloca_set:
                    values[id(pointer)] = instruction.value
                    instruction.drop_all_references()
                    block.remove(instruction)
        for successor in cfg.successors[block]:
            for phi in successor.phis():
                owner = phi_owner.get(id(phi))
                if owner is not None:
                    phi.add_incoming(
                        values.get(id(owner), undef_for(owner)), block
                    )
        for child in tree.children(block):
            rename(child, values)

    alloca_set = set(allocas)
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000 + 10 * len(function.blocks)))
    try:
        rename(function.entry, {})
    finally:
        sys.setrecursionlimit(old_limit)

    for alloca in allocas:
        if alloca.uses:
            raise AssertionError(
                f"promoted alloca {alloca.short_name()} still has uses"
            )
        alloca.parent.remove(alloca)
    return len(allocas)
