"""repro — constraint-based discovery and exploitation of general reductions.

A faithful, self-contained Python reproduction of

    Philip Ginsbach and Michael F. P. O'Boyle,
    "Discovery and Exploitation of General Reductions:
     A Constraint Based Approach", CGO 2017.

The package provides the full stack the paper builds on:

* :mod:`repro.ir` — a typed SSA intermediate representation;
* :mod:`repro.frontend` — a mini-C compiler producing canonical SSA;
* :mod:`repro.analysis` — dominators, loops, purity, scalar evolution;
* :mod:`repro.constraints` — the constraint description language and
  the backtracking solver (the paper's core contribution);
* :mod:`repro.idioms` — the for-loop, scalar-reduction and histogram
  specifications plus post-processing;
* :mod:`repro.transform` / :mod:`repro.runtime` — reduction
  privatization, loop outlining and the simulated 64-core executor;
* :mod:`repro.baselines` — Polly+reductions and icc comparison models;
* :mod:`repro.workloads` — the 40-program NAS/Parboil/Rodinia corpus;
* :mod:`repro.pipeline` — the corpus-scale detection pipeline
  (sharded workers, shared solver caches, deterministic merge);
* :mod:`repro.evaluation` — one harness per table/figure of §6.

Quickstart::

    from repro import compile_source, find_reductions

    module = compile_source('''
        double a[100];
        int n;
        double sum(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
    ''')
    report = find_reductions(module)
    print(report.summary())
"""

from .frontend import compile_source
from .idioms import (
    DetectionReport,
    HistogramReduction,
    ReductionOp,
    ScalarReduction,
    find_extended_reductions,
    find_for_loops,
    find_reductions,
    find_reductions_in_function,
)
from .pipeline import detect_corpus
from .runtime import Interpreter, MachineModel, Memory, ParallelExecutor
from .transform import (
    OutlinedTask,
    ParallelPlan,
    TransformFailure,
    outline_loop,
    plan_all,
)

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "find_reductions",
    "find_reductions_in_function",
    "find_extended_reductions",
    "find_for_loops",
    "detect_corpus",
    "DetectionReport",
    "ScalarReduction",
    "HistogramReduction",
    "ReductionOp",
    "Interpreter",
    "Memory",
    "MachineModel",
    "ParallelExecutor",
    "ParallelPlan",
    "TransformFailure",
    "OutlinedTask",
    "plan_all",
    "outline_loop",
    "__version__",
]
