"""Control flow graph utilities.

Provides predecessor maps, traversal orders and the single-entry
single-exit (SESE) region test that backs the ``sese`` constraint atom
from Fig. 5 of the paper.
"""

from __future__ import annotations

from ..ir.block import BasicBlock
from ..ir.function import Function


class CFG:
    """Cached successor/predecessor maps for one function."""

    def __init__(self, function: Function):
        self.function = function
        self.successors: dict[BasicBlock, list[BasicBlock]] = {}
        self.predecessors: dict[BasicBlock, list[BasicBlock]] = {}
        for block in function.blocks:
            self.successors[block] = list(block.successors())
            self.predecessors.setdefault(block, [])
        for block in function.blocks:
            for successor in self.successors[block]:
                self.predecessors.setdefault(successor, []).append(block)
        self._rpo: list[BasicBlock] | None = None

    def reverse_post_order(self) -> list[BasicBlock]:
        """Blocks in reverse post-order from the entry.

        The traversal is computed once and cached (the graph is
        immutable after construction); callers get a fresh copy.
        """
        if self._rpo is not None:
            return list(self._rpo)
        visited: set[BasicBlock] = set()
        order: list[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(self.successors[block]))]
            visited.add(block)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if successor not in visited:
                        visited.add(successor)
                        stack.append(
                            (successor, iter(self.successors[successor]))
                        )
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        if self.function.blocks:
            visit(self.function.entry)
        order.reverse()
        self._rpo = order
        return list(order)

    def reachable(self) -> set[BasicBlock]:
        """Blocks reachable from the entry."""
        return set(self.reverse_post_order())

    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks without successors (return blocks)."""
        return [b for b in self.function.blocks if not self.successors[b]]

    def has_edge(self, source: BasicBlock, target: BasicBlock) -> bool:
        """True if control can flow directly from ``source`` to ``target``."""
        return target in self.successors.get(source, [])

    def path_exists_avoiding(
        self,
        source: BasicBlock,
        target: BasicBlock,
        blocked: BasicBlock,
    ) -> bool:
        """True if a path from ``source`` to ``target`` avoids ``blocked``.

        This implements the ``ConstraintCFGBlocked`` atom of Fig. 7: the
        constraint *holds* when no such path exists.  ``source`` itself
        being the blocked node means no path exists.
        """
        if source is blocked:
            return False
        if source is target:
            return True
        seen = {source, blocked}
        work = [source]
        while work:
            block = work.pop()
            for successor in self.successors.get(block, []):
                if successor is target:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    work.append(successor)
        return False
