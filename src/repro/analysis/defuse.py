"""Def-use helpers built on the value use-lists."""

from __future__ import annotations

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Value
from .loops import Loop


def defining_block(value: Value) -> BasicBlock | None:
    """The block defining ``value`` (None for non-instructions)."""
    if isinstance(value, Instruction):
        return value.parent
    return None


def defined_in_loop(value: Value, loop: Loop) -> bool:
    """True if ``value`` is an instruction inside ``loop``."""
    block = defining_block(value)
    return block is not None and block in loop.blocks


def users_in_loop(value: Value, loop: Loop) -> list[Instruction]:
    """Users of ``value`` located inside ``loop``."""
    return [
        user
        for user in value.users()
        if user.parent is not None and user.parent in loop.blocks
    ]


def users_outside_loop(value: Value, loop: Loop) -> list[Instruction]:
    """Users of ``value`` located outside ``loop``."""
    return [
        user
        for user in value.users()
        if user.parent is not None and user.parent not in loop.blocks
    ]


def live_out_values(loop: Loop) -> list[Value]:
    """Values defined in ``loop`` that are used after it.

    A reduction accumulator is typically the only live-out of a
    reduction loop; additional live-outs indicate computation that would
    break privatization.
    """
    result: list[Value] = []
    for block in loop.blocks:
        for instruction in block.instructions:
            if users_outside_loop(instruction, loop):
                result.append(instruction)
    return result


def transitive_operands(value: Value, limit: int = 100000) -> set[Value]:
    """All values reachable through operand edges from ``value``."""
    seen: set[int] = set()
    result: set[Value] = set()
    work: list[Value] = [value]
    while work and len(seen) < limit:
        current = work.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        result.add(current)
        if isinstance(current, Instruction):
            work.extend(current.operands)
    return result


def instruction_index(function: Function) -> dict[int, tuple[int, int]]:
    """Map id(instruction) -> (block position, instruction position)."""
    index: dict[int, tuple[int, int]] = {}
    for block_pos, block in enumerate(function.blocks):
        for instr_pos, instruction in enumerate(block.instructions):
            index[id(instruction)] = (block_pos, instr_pos)
    return index
