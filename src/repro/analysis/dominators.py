"""Dominator and post-dominator trees (Cooper–Harvey–Kennedy algorithm).

These back the ``dominate``/``postdominate`` constraint atoms and the
SESE region construction, and they drive PHI placement in mem2reg via
dominance frontiers.  Post-dominators are computed as dominators of the
reversed CFG, with a virtual root joining all exit blocks.
"""

from __future__ import annotations

from typing import Hashable

from ..ir.block import BasicBlock
from ..ir.function import Function
from .cfg import CFG


class _VirtualExit:
    """Sentinel root of the reversed CFG when there are multiple exits."""

    def __repr__(self) -> str:  # pragma: no cover - debugging only
        return "<virtual-exit>"


_VIRTUAL_EXIT = _VirtualExit()


def _reverse_post_order(root: Hashable, successors: dict) -> list:
    """Reverse post-order of an arbitrary digraph from ``root``."""
    visited = {root}
    post: list = []
    stack = [(root, iter(successors.get(root, [])))]
    while stack:
        node, children = stack[-1]
        advanced = False
        for child in children:
            if child not in visited:
                visited.add(child)
                stack.append((child, iter(successors.get(child, []))))
                advanced = True
                break
        if not advanced:
            post.append(node)
            stack.pop()
    post.reverse()
    return post


def _chk_idoms(root: Hashable, order: list, preds: dict) -> dict:
    """Cooper–Harvey–Kennedy iterative dominator computation.

    ``order`` must be a reverse post-order starting with ``root``;
    ``preds`` maps each node to its predecessors.  Returns the immediate
    dominator map with ``idom[root] is None``.
    """
    index = {node: i for i, node in enumerate(order)}
    idom: dict = {node: None for node in order}
    idom[root] = root

    def intersect(a, b):
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node is root:
                continue
            new_idom = None
            for pred in preds.get(node, []):
                if idom.get(pred) is None:
                    continue
                new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom[node] is not new_idom:
                idom[node] = new_idom
                changed = True
    idom[root] = None
    return idom


class DominatorTree:
    """Immediate-dominator tree over the (reachable) blocks of a function.

    Use :meth:`compute` for dominators and :meth:`compute_post` for
    post-dominators.  In the post-dominator tree, blocks immediately
    post-dominated by the virtual exit have ``idom`` None.
    """

    def __init__(
        self,
        root: BasicBlock | None,
        idom: dict[BasicBlock, BasicBlock | None],
        order: list[BasicBlock],
    ):
        self.root = root
        self.idom = idom
        self._order = order
        self._depth: dict[BasicBlock, int] = {}
        for block in order:
            parent = idom.get(block)
            self._depth[block] = 0 if parent is None else self._depth[parent] + 1

    @classmethod
    def compute(cls, function: Function,
                cfg: CFG | None = None) -> "DominatorTree":
        """Dominator tree of the forward CFG rooted at the entry block.

        ``cfg`` reuses an already-built graph (the successor/
        predecessor maps are pure function state, so sharing is safe).
        """
        cfg = cfg if cfg is not None else CFG(function)
        order = cfg.reverse_post_order()
        reachable = set(order)
        preds = {
            block: [p for p in cfg.predecessors[block] if p in reachable]
            for block in order
        }
        idom = _chk_idoms(function.entry, order, preds)
        return cls(function.entry, idom, order)

    @classmethod
    def compute_post(cls, function: Function,
                     cfg: CFG | None = None) -> "DominatorTree":
        """Post-dominator tree (dominators of the reversed CFG)."""
        cfg = cfg if cfg is not None else CFG(function)
        reachable = cfg.reachable()
        exits = [b for b in cfg.exit_blocks() if b in reachable]
        if not exits:
            return cls(None, {}, [])
        root = _VIRTUAL_EXIT
        successors: dict = {root: list(exits)}
        for block in reachable:
            successors[block] = [
                p for p in cfg.predecessors[block] if p in reachable
            ]
        preds: dict = {root: []}
        for block in reachable:
            preds[block] = list(cfg.successors[block])
        for exit_block in exits:
            preds[exit_block] = preds[exit_block] + [root]

        order = _reverse_post_order(root, successors)
        idom = _chk_idoms(root, order, preds)
        stripped = {
            block: (None if parent is root else parent)
            for block, parent in idom.items()
            if block is not root
        }
        block_order = [b for b in order if b is not root]
        return cls(None, stripped, block_order)

    # -- queries -----------------------------------------------------------

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` (post-)dominates ``b``, reflexively."""
        node: BasicBlock | None = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` and ``a`` is not ``b``."""
        return a is not b and self.dominates(a, b)

    def children(self, block: BasicBlock) -> list[BasicBlock]:
        """Blocks whose immediate dominator is ``block``."""
        return [b for b in self._order if self.idom.get(b) is block]

    def depth(self, block: BasicBlock) -> int:
        """Distance from the tree root (virtual root depth 0)."""
        return self._depth.get(block, 0)

    def blocks(self) -> list[BasicBlock]:
        """All blocks covered by the tree, in traversal order."""
        return list(self._order)


def dominance_frontiers(
    function: Function, tree: DominatorTree | None = None
) -> dict[BasicBlock, set[BasicBlock]]:
    """Dominance frontier of every reachable block (Cooper et al. style)."""
    tree = tree or DominatorTree.compute(function)
    cfg = CFG(function)
    reachable = cfg.reachable()
    frontiers: dict[BasicBlock, set[BasicBlock]] = {b: set() for b in reachable}
    for block in reachable:
        preds = [p for p in cfg.predecessors[block] if p in reachable]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner: BasicBlock | None = pred
            while runner is not None and runner is not tree.idom.get(block):
                frontiers[runner].add(block)
                runner = tree.idom.get(runner)
    return frontiers
