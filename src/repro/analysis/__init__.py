"""Compiler analyses: CFG, dominators, loops, purity, scalar evolution."""

from .cfg import CFG
from .defuse import (
    defined_in_loop,
    defining_block,
    live_out_values,
    transitive_operands,
    users_in_loop,
    users_outside_loop,
)
from .dominators import DominatorTree, dominance_frontiers
from .loops import Loop, LoopInfo
from .purity import PurityAnalysis
from .scev import (
    Affine,
    InductionVariable,
    LoopBounds,
    ScalarEvolution,
)

__all__ = [
    "CFG",
    "DominatorTree",
    "dominance_frontiers",
    "Loop",
    "LoopInfo",
    "PurityAnalysis",
    "Affine",
    "InductionVariable",
    "LoopBounds",
    "ScalarEvolution",
    "defining_block",
    "defined_in_loop",
    "users_in_loop",
    "users_outside_loop",
    "live_out_values",
    "transitive_operands",
]
