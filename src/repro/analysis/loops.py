"""Natural loop detection and loop-nest information.

Loops are discovered from back edges (edges whose target dominates their
source).  The resulting :class:`Loop` objects expose the header, latch,
body and nesting depth — the structural facts the for-loop constraint of
Fig. 5 encodes, and that the baselines (Polly/icc models) consume.
"""

from __future__ import annotations

from ..ir.block import BasicBlock
from ..ir.function import Function
from .cfg import CFG
from .dominators import DominatorTree


class Loop:
    """One natural loop.

    Attributes
    ----------
    header:
        The unique entry block of the loop (target of the back edge).
    latches:
        Source blocks of back edges to the header.
    blocks:
        All blocks of the loop, header included.
    parent:
        The innermost enclosing loop, or None for top-level loops.
    children:
        Loops nested immediately inside this one.
    """

    def __init__(self, header: BasicBlock):
        self.header = header
        self.latches: list[BasicBlock] = []
        self.blocks: set[BasicBlock] = {header}
        self.parent: "Loop | None" = None
        self.children: list["Loop"] = []

    @property
    def depth(self) -> int:
        """Nesting depth; 1 for outermost loops."""
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains(self, block: BasicBlock) -> bool:
        """True if ``block`` belongs to this loop (or a nested one)."""
        return block in self.blocks

    def is_innermost(self) -> bool:
        """True if no loop nests inside this one."""
        return not self.children

    def exit_targets(self) -> list[BasicBlock]:
        """Blocks outside the loop that are branched to from inside."""
        targets = []
        for block in self.blocks:
            for successor in block.successors():
                if successor not in self.blocks and successor not in targets:
                    targets.append(successor)
        return targets

    def __repr__(self) -> str:
        return f"<Loop header={self.header.name} depth={self.depth}>"


class LoopInfo:
    """All natural loops of a function, with nesting resolved."""

    def __init__(self, function: Function, cfg: CFG | None = None,
                 tree: DominatorTree | None = None):
        self.function = function
        cfg = cfg if cfg is not None else CFG(function)
        tree = tree if tree is not None else DominatorTree.compute(
            function, cfg
        )
        reachable = cfg.reachable()

        loops_by_header: dict[BasicBlock, Loop] = {}
        for block in reachable:
            for successor in cfg.successors[block]:
                if successor in reachable and tree.dominates(successor, block):
                    loop = loops_by_header.setdefault(successor, Loop(successor))
                    loop.latches.append(block)
                    self._collect_body(loop, block, cfg, reachable)

        self.loops: list[Loop] = list(loops_by_header.values())
        self._assign_nesting()
        self._by_block: dict[BasicBlock, Loop] = {}
        for loop in sorted(self.loops, key=lambda l: len(l.blocks), reverse=True):
            for block in loop.blocks:
                self._by_block[block] = loop

    @staticmethod
    def _collect_body(
        loop: Loop,
        latch: BasicBlock,
        cfg: CFG,
        reachable: set[BasicBlock],
    ) -> None:
        """Walk backwards from the latch to the header, collecting blocks."""
        work = [latch]
        while work:
            block = work.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            for pred in cfg.predecessors[block]:
                if pred in reachable:
                    work.append(pred)

    def _assign_nesting(self) -> None:
        for loop in self.loops:
            best: Loop | None = None
            for other in self.loops:
                if other is loop or loop.header not in other.blocks:
                    continue
                if not loop.blocks <= other.blocks:
                    continue
                if best is None or len(other.blocks) < len(best.blocks):
                    best = other
            loop.parent = best
            if best is not None:
                best.children.append(loop)

    def innermost_loop_of(self, block: BasicBlock) -> Loop | None:
        """The innermost loop containing ``block``, or None."""
        return self._by_block.get(block)

    def top_level_loops(self) -> list[Loop]:
        """Loops not nested in any other loop."""
        return [l for l in self.loops if l.parent is None]

    def loop_with_header(self, header: BasicBlock) -> Loop | None:
        """The loop whose header is ``header``, or None."""
        for loop in self.loops:
            if loop.header is header:
                return loop
        return None
