"""Control dependence analysis (via post-dominance frontiers).

Block B is control dependent on block C when C ends in a conditional
branch with one successor that B post-dominates and another that it does
not: C's branch decides whether B runs.  The paper's generalized graph
domination walks this *control dominance graph* alongside the data flow
graph (§3.1.2), which is how the ``t1 <= sx`` counterexample of §2 is
rejected.
"""

from __future__ import annotations

from ..ir.block import BasicBlock
from ..ir.function import Function
from .cfg import CFG
from .dominators import DominatorTree


def control_dependences(
    function: Function, post_tree: DominatorTree | None = None,
    cfg: CFG | None = None,
) -> dict[BasicBlock, set[BasicBlock]]:
    """Map each block to the set of blocks it is control dependent on.

    Uses the classic Ferrante–Ottenstein–Warren construction: for each
    CFG edge ``C -> S``, every block on the post-dominator tree path
    from ``S`` up to (but excluding) ``ipostdom(C)`` is control
    dependent on ``C``.
    """
    post_tree = post_tree or DominatorTree.compute_post(function)
    cfg = cfg if cfg is not None else CFG(function)
    reachable = cfg.reachable()
    result: dict[BasicBlock, set[BasicBlock]] = {b: set() for b in reachable}
    for block in reachable:
        successors = cfg.successors[block]
        if len(successors) < 2:
            continue
        stop = post_tree.idom.get(block)
        for successor in successors:
            runner: BasicBlock | None = successor
            while runner is not None and runner is not stop:
                if runner in result:
                    result[runner].add(block)
                runner = post_tree.idom.get(runner)
    return result


def controlling_conditions(
    block: BasicBlock,
    deps: dict[BasicBlock, set[BasicBlock]],
) -> list:
    """The branch condition values that decide whether ``block`` runs."""
    from ..ir.instructions import BranchInst

    conditions = []
    for controller in deps.get(block, ()):
        terminator = controller.terminator
        if isinstance(terminator, BranchInst) and terminator.is_conditional:
            conditions.append(terminator.condition)
    return conditions
