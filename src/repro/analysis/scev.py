"""Scalar evolution: affine analysis of integer expressions in loops.

This is the analysis behind two very different consumers:

* the paper's reduction specifications need *"indices affine in the loop
  iterator"* where coefficients may be arbitrary loop-invariant values
  (``x[2*i]``, ``a[i*stride + j]``);
* the Polly baseline needs the *polyhedral* notion: induction variables
  may only be multiplied by compile-time constants, so a flattened
  access like ``a[i*nx + j]`` with parametric ``nx`` is **not** affine —
  which is exactly the delinearization failure §6.1 blames for Polly's
  low coverage on flat arrays.

Affine forms are represented as integer-coefficient sums of monomials.
A monomial is a (parameters, induction-variable) pair: parameters are
loop-invariant values, and at most one induction variable may appear.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CastInst,
    ICmpInst,
    Instruction,
    PhiInst,
)
from ..ir.values import Argument, Constant, ConstantInt, GlobalVariable, Value
from .loops import Loop, LoopInfo

#: A monomial: sorted tuple of loop-invariant factors plus at most one IV.
Monomial = tuple[tuple[Value, ...], "Value | None"]

_CONST_MONO: Monomial = ((), None)


def _mono(params: tuple[Value, ...], iv: Value | None) -> Monomial:
    ordered = tuple(sorted(params, key=id))
    return (ordered, iv)


class Affine:
    """An affine (in the IVs) integer expression.

    Stored as ``{monomial: coefficient}``; the constant term uses the
    empty monomial.  Products of two induction variables are not
    representable and cause analysis failure upstream.
    """

    def __init__(self, terms: dict[Monomial, int] | None = None):
        self.terms: dict[Monomial, int] = {}
        for mono, coeff in (terms or {}).items():
            if coeff != 0:
                self.terms[mono] = coeff

    # -- constructors ---------------------------------------------------------

    @classmethod
    def constant(cls, value: int) -> "Affine":
        """The constant affine form ``value``."""
        return cls({_CONST_MONO: value})

    @classmethod
    def parameter(cls, value: Value) -> "Affine":
        """A single loop-invariant symbol."""
        return cls({_mono((value,), None): 1})

    @classmethod
    def induction(cls, phi: Value) -> "Affine":
        """A single induction variable."""
        return cls({_mono((), phi): 1})

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Affine") -> "Affine":
        terms = dict(self.terms)
        for mono, coeff in other.terms.items():
            terms[mono] = terms.get(mono, 0) + coeff
        return Affine(terms)

    def __sub__(self, other: "Affine") -> "Affine":
        return self + other.scaled(-1)

    def scaled(self, factor: int) -> "Affine":
        """Multiply every coefficient by an integer."""
        return Affine({m: c * factor for m, c in self.terms.items()})

    def multiply(self, other: "Affine") -> "Affine | None":
        """Polynomial product; None if any monomial would hold two IVs."""
        terms: dict[Monomial, int] = {}
        for (params_a, iv_a), coeff_a in self.terms.items():
            for (params_b, iv_b), coeff_b in other.terms.items():
                if iv_a is not None and iv_b is not None:
                    return None
                mono = _mono(params_a + params_b, iv_a or iv_b)
                terms[mono] = terms.get(mono, 0) + coeff_a * coeff_b
        return Affine(terms)

    # -- queries -----------------------------------------------------------

    @property
    def constant_term(self) -> int:
        """The coefficient of the empty monomial."""
        return self.terms.get(_CONST_MONO, 0)

    def induction_variables(self) -> set[Value]:
        """All IVs appearing in the expression."""
        return {iv for (_, iv) in self.terms if iv is not None}

    def parameters(self) -> set[Value]:
        """All loop-invariant symbols appearing in the expression."""
        result: set[Value] = set()
        for params, _ in self.terms:
            result.update(params)
        return result

    def is_constant(self) -> bool:
        """True if no symbols appear at all."""
        return all(m == _CONST_MONO for m in self.terms)

    def iv_coefficients_constant(self) -> bool:
        """True if every IV-carrying monomial has no parameter factors.

        This is the polyhedral-affinity condition the Polly baseline
        enforces: ``2*i`` passes, ``nx*i`` fails.
        """
        for params, iv in self.terms:
            if iv is not None and params:
                return False
        return True

    def has_parameter_products(self) -> bool:
        """True if any monomial multiplies two or more symbols.

        Relative to an inner loop an enclosing loop's IV is just a
        parameter, so flattened accesses like ``i*cols + j`` appear as
        a parameter product — the polyhedral baseline must reject those
        (delinearization failure) even though the expression is affine
        in the inner iterator.
        """
        for params, iv in self.terms:
            if len(params) >= 2 or (iv is not None and params):
                return True
        return False

    def coefficient_of(self, iv: Value) -> int:
        """Constant coefficient of ``iv`` (0 if absent or symbolic)."""
        return self.terms.get(_mono((), iv), 0)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Affine) and other.terms == self.terms

    def __repr__(self) -> str:
        if not self.terms:
            return "Affine(0)"
        parts = []
        for (params, iv), coeff in self.terms.items():
            symbols = [p.short_name() for p in params]
            if iv is not None:
                symbols.append(f"{iv.short_name()}~iv")
            parts.append("*".join([str(coeff)] + symbols) if symbols else str(coeff))
        return f"Affine({' + '.join(parts)})"


@dataclass
class InductionVariable:
    """A canonical induction variable: ``phi = [init, pre], [phi+step, latch]``."""

    phi: PhiInst
    init: Value
    step: Value
    loop: Loop


@dataclass
class LoopBounds:
    """The exit condition of a canonical counted loop.

    ``iterator`` runs from ``start`` by ``step`` while
    ``icmp predicate (iterator, end)`` holds.
    """

    iterator: PhiInst
    start: Value
    step: Value
    end: Value
    predicate: str


class ScalarEvolution:
    """Per-function affine expression analysis."""

    def __init__(self, function: Function, loop_info: LoopInfo | None = None):
        self.function = function
        self.loop_info = loop_info or LoopInfo(function)
        self._iv_cache: dict[int, InductionVariable | None] = {}

    # -- invariance ------------------------------------------------------------

    def is_loop_invariant(self, value: Value, loop: Loop) -> bool:
        """True if ``value`` cannot change between iterations of ``loop``."""
        if isinstance(value, (Constant, Argument, GlobalVariable)):
            return True
        if isinstance(value, Instruction):
            return value.parent not in loop.blocks
        if isinstance(value, BasicBlock):
            return False
        return False

    # -- induction variables ---------------------------------------------------

    def induction_variable_for_phi(self, phi: PhiInst) -> InductionVariable | None:
        """Recognise ``phi`` as a canonical IV of its header's loop."""
        cached = self._iv_cache.get(id(phi))
        if cached is not None or id(phi) in self._iv_cache:
            return cached
        self._iv_cache[id(phi)] = None
        result = self._match_induction(phi)
        self._iv_cache[id(phi)] = result
        return result

    def _match_induction(self, phi: PhiInst) -> InductionVariable | None:
        block = phi.parent
        if block is None:
            return None
        loop = self.loop_info.loop_with_header(block)
        if loop is None or len(phi.incoming) != 2:
            return None
        init = None
        next_value = None
        for value, pred in phi.incoming:
            if pred in loop.blocks:
                next_value = value
            else:
                init = value
        if init is None or next_value is None:
            return None
        if not isinstance(next_value, BinaryInst) or next_value.opcode != "add":
            return None
        if next_value.lhs is phi:
            step = next_value.rhs
        elif next_value.rhs is phi:
            step = next_value.lhs
        else:
            return None
        if not self.is_loop_invariant(step, loop):
            return None
        if not self.is_loop_invariant(init, loop):
            return None
        return InductionVariable(phi, init, step, loop)

    def induction_variable(self, loop: Loop) -> InductionVariable | None:
        """The first canonical IV found in ``loop``'s header."""
        for phi in loop.header.phis():
            candidate = self.induction_variable_for_phi(phi)
            if candidate is not None and candidate.loop is loop:
                return candidate
        return None

    def loop_bounds(self, loop: Loop) -> LoopBounds | None:
        """Recognise the canonical counted-loop exit condition.

        The header must end in a conditional branch whose condition is an
        integer comparison between a canonical IV of the loop and a
        loop-invariant end value — the shape required by conditions
        ``test = int_comparison(iterator, iter_end)`` etc. of Fig. 5.
        """
        terminator = loop.header.terminator
        from ..ir.instructions import BranchInst

        if not isinstance(terminator, BranchInst) or not terminator.is_conditional:
            return None
        condition = terminator.condition
        if not isinstance(condition, ICmpInst):
            return None
        for lhs, rhs, predicate in (
            (condition.lhs, condition.rhs, condition.predicate),
            (condition.rhs, condition.lhs, _swap_predicate(condition.predicate)),
        ):
            if isinstance(lhs, PhiInst):
                iv = self.induction_variable_for_phi(lhs)
                # Compare loops by header: callers may hold Loop objects
                # from a different LoopInfo instance.
                if iv is not None and iv.loop.header is loop.header:
                    if self.is_loop_invariant(rhs, loop):
                        return LoopBounds(lhs, iv.init, iv.step, rhs, predicate)
        return None

    # -- affine forms ------------------------------------------------------------

    def affine_at(self, value: Value, loop: Loop) -> Affine | None:
        """Affine form of ``value`` relative to ``loop``.

        IVs of ``loop`` and of every enclosing loop appear as induction
        symbols; anything invariant with respect to ``loop`` appears as a
        parameter symbol.  Returns None for non-affine expressions.
        """
        return self._affine(value, loop, set())

    def _affine(self, value: Value, loop: Loop, visiting: set[int]) -> Affine | None:
        if isinstance(value, ConstantInt):
            return Affine.constant(value.value)
        if self.is_loop_invariant(value, loop):
            return Affine.parameter(value)
        if id(value) in visiting:
            return None
        visiting = visiting | {id(value)}

        if isinstance(value, PhiInst):
            iv = self.induction_variable_for_phi(value)
            if iv is not None and self._loop_encloses(iv.loop, loop):
                return Affine.induction(value)
            return None
        if isinstance(value, BinaryInst):
            lhs = self._affine(value.lhs, loop, visiting)
            rhs = self._affine(value.rhs, loop, visiting)
            if lhs is None or rhs is None:
                return None
            if value.opcode == "add":
                return lhs + rhs
            if value.opcode == "sub":
                return lhs - rhs
            if value.opcode == "mul":
                return lhs.multiply(rhs)
            if value.opcode == "shl":
                if rhs.is_constant():
                    return lhs.scaled(1 << rhs.constant_term)
                return None
            return None
        if isinstance(value, CastInst) and value.opcode in ("sext", "zext", "trunc"):
            return self._affine(value.value, loop, visiting)
        return None

    @staticmethod
    def _loop_encloses(outer: Loop, inner: Loop) -> bool:
        node: Loop | None = inner
        while node is not None:
            if node is outer:
                return True
            node = node.parent
        return False


def _swap_predicate(predicate: str) -> str:
    swap = {
        "slt": "sgt",
        "sgt": "slt",
        "sle": "sge",
        "sge": "sle",
        "eq": "eq",
        "ne": "ne",
    }
    return swap[predicate]
