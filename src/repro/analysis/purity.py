"""Function purity analysis.

A call is legal inside a reduction's computation scope only if the callee
is *pure*: its result depends only on its arguments and it has no side
effects (§2: the EP kernel is a reduction *"because all the function
calls that are present are pure"*).  Intrinsics such as ``sqrt`` are
declared pure; for defined functions purity is derived conservatively:

* no stores except through pointers derived from the function's own
  allocas;
* no loads except through those same local pointers or argument-derived
  pointers to read-only data — we conservatively reject loads from
  globals;
* all calls are to pure functions (computed to a fixed point, cycles
  assumed impure).
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import AllocaInst, CallInst, GEPInst, LoadInst, StoreInst
from ..ir.module import Module
from ..ir.values import Value


class PurityAnalysis:
    """Computes and caches purity for every function in a module."""

    def __init__(self, module: Module):
        self.module = module
        self._pure: dict[str, bool] = {}
        for function in module.functions.values():
            self.is_pure(function)

    def is_pure(self, function: Function) -> bool:
        """True if ``function`` is side-effect free and memory-independent."""
        cached = self._pure.get(function.name)
        if cached is not None:
            return cached
        # Assume impure while analysing, so recursion is rejected.
        self._pure[function.name] = False
        result = self._analyse(function)
        self._pure[function.name] = result
        return result

    def _analyse(self, function: Function) -> bool:
        if function.is_declaration:
            return function.pure
        local_memory = {
            id(i) for i in function.instructions() if isinstance(i, AllocaInst)
        }

        def is_local_pointer(pointer: Value) -> bool:
            while isinstance(pointer, GEPInst):
                pointer = pointer.base
            return id(pointer) in local_memory

        for instruction in function.instructions():
            if isinstance(instruction, StoreInst):
                if not is_local_pointer(instruction.pointer):
                    return False
            elif isinstance(instruction, LoadInst):
                if not is_local_pointer(instruction.pointer):
                    return False
            elif isinstance(instruction, CallInst):
                if not self.is_pure(instruction.callee):
                    return False
        return True
