"""Instruction set of the SSA IR.

The instruction set is the subset of LLVM needed to express lowered
mini-C programs and, importantly, everything the paper's constraint
language talks about: PHI nodes, additions, integer comparisons,
conditional/unconditional branches, loads, stores and single-index
address computations (``gep``).

Every instruction is itself a :class:`~repro.ir.values.Value` (its
result), carries a string :attr:`Instruction.opcode`, and maintains the
def-use graph through :meth:`Instruction.set_operand`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .types import INT1, VOID, PointerType, Type
from .values import Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .block import BasicBlock
    from .function import Function

#: Integer binary opcodes (two's complement, signed division semantics).
INT_BINARY_OPCODES = (
    "add",
    "sub",
    "mul",
    "sdiv",
    "srem",
    "and",
    "or",
    "xor",
    "shl",
    "ashr",
)

#: Floating point binary opcodes.
FLOAT_BINARY_OPCODES = ("fadd", "fsub", "fmul", "fdiv")

#: Predicates understood by ``icmp``.
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")

#: Predicates understood by ``fcmp`` (ordered comparisons only).
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")

#: Value-cast opcodes.
CAST_OPCODES = ("sitofp", "fptosi", "zext", "sext", "trunc", "fpext", "fptrunc")

#: Commutative opcodes, used by the associativity post-check (§3.1.2).
COMMUTATIVE_OPCODES = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})


class Instruction(Value):
    """Base class of all instructions.

    Subclasses pass their operands to ``__init__``; the base class wires
    up use-lists.  ``parent`` is set when the instruction is inserted
    into a basic block.
    """

    opcode: str = "<abstract>"

    def __init__(self, type: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type, name)
        self.parent: "BasicBlock | None" = None
        self._operands: list[Value] = []
        for operand in operands:
            self._append_operand(operand)

    # -- operand management ----------------------------------------------

    @property
    def operands(self) -> tuple[Value, ...]:
        """The operand tuple (read-only view; use :meth:`set_operand`)."""
        return tuple(self._operands)

    def operand(self, index: int) -> Value:
        """Return operand ``index``."""
        return self._operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        """Replace operand ``index``, keeping use-lists consistent."""
        old = self._operands[index]
        if old is value:
            return
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(self, index)

    def _append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(self, index)

    def _pop_operands(self, count: int) -> None:
        for _ in range(count):
            index = len(self._operands) - 1
            self._operands[index].remove_use(self, index)
            self._operands.pop()

    def drop_all_references(self) -> None:
        """Detach this instruction from its operands (before deletion)."""
        self._pop_operands(len(self._operands))

    # -- classification ----------------------------------------------------

    def is_terminator(self) -> bool:
        """Return True for branch/return instructions."""
        return isinstance(self, (BranchInst, ReturnInst))

    @property
    def function(self) -> "Function | None":
        """The function containing this instruction, if inserted."""
        return self.parent.parent if self.parent is not None else None

    def short_name(self) -> str:
        return self.name or self.opcode

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short_name()}>"


class BinaryInst(Instruction):
    """An arithmetic/bitwise binary operation (``add``, ``fmul``, ...)."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in INT_BINARY_OPCODES and opcode not in FLOAT_BINARY_OPCODES:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        if lhs.type != rhs.type:
            raise TypeError(f"operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        """Left operand."""
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        """Right operand."""
        return self.operand(1)

    def is_commutative(self) -> bool:
        """True for operators where operand order does not matter."""
        return self.opcode in COMMUTATIVE_OPCODES


class ICmpInst(Instruction):
    """Signed integer comparison producing an i1."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError(f"operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(INT1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        """Left operand."""
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        """Right operand."""
        return self.operand(1)


class FCmpInst(Instruction):
    """Ordered floating point comparison producing an i1."""

    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError(f"operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(INT1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        """Left operand."""
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        """Right operand."""
        return self.operand(1)


class AllocaInst(Instruction):
    """Stack allocation of ``count`` elements of ``allocated_type``.

    The mini-C frontend allocates every local variable with an alloca;
    the mem2reg pass then promotes scalar allocas to SSA values, which
    introduces the PHI nodes the idiom specifications rely on.
    """

    opcode = "alloca"

    def __init__(self, allocated_type: Type, count: int = 1, name: str = ""):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.count = count


class LoadInst(Instruction):
    """Load a value through a pointer."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        if not pointer.type.is_pointer():
            raise TypeError(f"load requires a pointer, got {pointer.type}")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        """The address operand."""
        return self.operand(0)


class StoreInst(Instruction):
    """Store a value through a pointer (produces no result)."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer():
            raise TypeError(f"store requires a pointer, got {pointer.type}")
        if pointer.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: {value.type} into {pointer.type}"
            )
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        """The stored value."""
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        """The address operand."""
        return self.operand(1)


class GEPInst(Instruction):
    """Single-index pointer arithmetic: ``result = base + index``.

    Multi-dimensional C arrays are lowered to explicit flattened index
    arithmetic feeding one ``gep``, matching the flat-array representation
    whose affine analysis the paper discusses (§6.1, Polly and flat
    arrays).
    """

    opcode = "gep"

    def __init__(self, base: Value, index: Value, name: str = ""):
        if not base.type.is_pointer():
            raise TypeError(f"gep requires a pointer base, got {base.type}")
        if not index.type.is_integer():
            raise TypeError(f"gep index must be integer, got {index.type}")
        super().__init__(base.type, [base, index], name)

    @property
    def base(self) -> Value:
        """The base pointer."""
        return self.operand(0)

    @property
    def index(self) -> Value:
        """The element offset."""
        return self.operand(1)


class PhiInst(Instruction):
    """SSA PHI node; operands are interleaved ``value, block`` pairs."""

    opcode = "phi"

    def __init__(self, type: Type, name: str = ""):
        super().__init__(type, [], name)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        """Append an incoming (value, predecessor block) pair."""
        if value.type != self.type:
            raise TypeError(
                f"phi incoming type mismatch: {value.type} vs {self.type}"
            )
        self._append_operand(value)
        self._append_operand(block)

    @property
    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        """The list of (value, predecessor) pairs."""
        ops = self._operands
        return list(zip(ops[::2], ops[1::2]))

    def incoming_for_block(self, block: "BasicBlock") -> Value:
        """Return the value flowing in from predecessor ``block``."""
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise KeyError(f"{block} is not an incoming block of {self}")

    def incoming_values(self) -> list[Value]:
        """The incoming values only (no blocks)."""
        return self._operands[::2]


class BranchInst(Instruction):
    """Unconditional (1 operand) or conditional (3 operands) branch.

    The constraint atoms ``x = branch(y)`` and ``x = branch(y, z, w)``
    from Fig. 5 of the paper inspect these instructions.
    """

    opcode = "br"

    def __init__(
        self,
        target_or_cond: Value,
        if_true: "BasicBlock | None" = None,
        if_false: "BasicBlock | None" = None,
    ):
        if if_true is None:
            super().__init__(VOID, [target_or_cond])
        else:
            if target_or_cond.type != INT1:
                raise TypeError("branch condition must be i1")
            if if_false is None:
                raise ValueError("conditional branch needs two targets")
            super().__init__(VOID, [target_or_cond, if_true, if_false])

    @property
    def is_conditional(self) -> bool:
        """True if this branch has a condition and two targets."""
        return len(self._operands) == 3

    @property
    def condition(self) -> Value:
        """The i1 condition (conditional branches only)."""
        if not self.is_conditional:
            raise ValueError("unconditional branch has no condition")
        return self.operand(0)

    def targets(self) -> list["BasicBlock"]:
        """Successor blocks in operand order."""
        if self.is_conditional:
            return [self.operand(1), self.operand(2)]
        return [self.operand(0)]


class ReturnInst(Instruction):
    """Function return, with or without a value."""

    opcode = "ret"

    def __init__(self, value: Value | None = None):
        super().__init__(VOID, [] if value is None else [value])

    @property
    def return_value(self) -> Value | None:
        """The returned value, or None for ``ret void``."""
        return self.operand(0) if self._operands else None


class CallInst(Instruction):
    """Direct call; operand 0 is the callee, the rest are arguments.

    Purity of the callee matters to the reduction specifications: pure
    calls (``sqrt``, ``log``, ``fabs``, ``fmin``...) are legal inside a
    reduction's computation, impure calls are not (§2, §3.1.1).
    """

    opcode = "call"

    def __init__(self, callee: "Function", args: Sequence[Value], name: str = ""):
        expected = callee.type.param_types
        if len(args) != len(expected):
            raise TypeError(
                f"call to {callee.name}: expected {len(expected)} args, "
                f"got {len(args)}"
            )
        for arg, param_type in zip(args, expected):
            if arg.type != param_type:
                raise TypeError(
                    f"call to {callee.name}: argument type {arg.type} does "
                    f"not match parameter type {param_type}"
                )
        super().__init__(callee.type.return_type, [callee, *args], name)

    @property
    def callee(self) -> "Function":
        """The called function."""
        return self.operand(0)

    @property
    def args(self) -> tuple[Value, ...]:
        """The actual arguments."""
        return self.operands[1:]


class SelectInst(Instruction):
    """Ternary select: ``cond ? if_true : if_false``."""

    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = ""):
        if cond.type != INT1:
            raise TypeError("select condition must be i1")
        if if_true.type != if_false.type:
            raise TypeError("select arm types differ")
        super().__init__(if_true.type, [cond, if_true, if_false], name)

    @property
    def condition(self) -> Value:
        """The i1 selector."""
        return self.operand(0)

    @property
    def if_true(self) -> Value:
        """Value when the condition is true."""
        return self.operand(1)

    @property
    def if_false(self) -> Value:
        """Value when the condition is false."""
        return self.operand(2)


class CastInst(Instruction):
    """Value conversion (``sitofp``, ``zext``, ...)."""

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPCODES:
            raise ValueError(f"unknown cast opcode {opcode!r}")
        super().__init__(to_type, [value], name)
        self.opcode = opcode

    @property
    def value(self) -> Value:
        """The converted operand."""
        return self.operand(0)
