"""Parser for the textual IR format (the printer's inverse).

``parse_module(print_module(m))`` reconstructs an equivalent module;
the round trip is exercised property-style over the whole benchmark
corpus in the test suite.  Forward references (PHI incomings and any
use textually preceding its definition) are handled with placeholder
values patched after the function body is read.
"""

from __future__ import annotations

import re

from .block import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    FCMP_PREDICATES,
    FLOAT_BINARY_OPCODES,
    GEPInst,
    ICmpInst,
    ICMP_PREDICATES,
    INT_BINARY_OPCODES,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    CAST_OPCODES,
)
from .module import Module
from .types import DOUBLE, FLOAT, VOID, FunctionType, IntType, PointerType, Type
from .values import ConstantFloat, ConstantInt, UndefValue, Value


class IRParseError(Exception):
    """Raised on malformed textual IR."""


_GLOBAL_RE = re.compile(
    r"^@(?P<name>[\w.\-]+) = global \[(?P<size>\d+) x (?P<type>[\w*]+)\]"
    r"(?: init \[(?P<init>.*)\])?$"
)
_DECLARE_RE = re.compile(
    r"^declare(?P<pure> pure)? (?P<ret>[\w*]+) @(?P<name>[\w.\-]+)"
    r"\((?P<params>.*)\)$"
)
_DEFINE_RE = re.compile(
    r"^define (?P<ret>[\w*]+) @(?P<name>[\w.\-]+)\((?P<params>.*)\) \{$"
)
_LABEL_RE = re.compile(r"^(?P<name>[\w.\-]+):$")


def parse_type(text: str) -> Type:
    """Parse a type spelling such as ``i64`` or ``double*``."""
    pointer_depth = 0
    while text.endswith("*"):
        pointer_depth += 1
        text = text[:-1]
    if text == "void":
        base: Type = VOID
    elif text == "double":
        base = DOUBLE
    elif text == "float":
        base = FLOAT
    elif text.startswith("i") and text[1:].isdigit():
        base = IntType(int(text[1:]))
    else:
        raise IRParseError(f"unknown type {text!r}")
    for _ in range(pointer_depth):
        base = PointerType(base)
    return base


class _Placeholder(Value):
    """Stand-in for a forward-referenced local value."""


class _FunctionBodyParser:
    """Parses one function body with forward-reference patching."""

    def __init__(self, module: Module, function: Function):
        self.module = module
        self.function = function
        self.blocks: dict[str, BasicBlock] = {}
        self.values: dict[str, Value] = {
            arg.name: arg for arg in function.args
        }
        self.placeholders: dict[str, _Placeholder] = {}

    # -- operand handling ---------------------------------------------------

    def block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            raise IRParseError(f"unknown block %{name}")
        return self.blocks[name]

    def local(self, name: str, type: Type) -> Value:
        if name in self.values:
            return self.values[name]
        placeholder = self.placeholders.get(name)
        if placeholder is None:
            placeholder = _Placeholder(type, name)
            self.placeholders[name] = placeholder
        return placeholder

    def define(self, name: str, value: Value) -> None:
        self.values[name] = value
        value.name = name
        placeholder = self.placeholders.pop(name, None)
        if placeholder is not None:
            placeholder.replace_all_uses_with(value)

    def operand(self, type: Type, token: str) -> Value:
        token = token.strip()
        if token.startswith("%"):
            return self.local(token[1:], type)
        if token.startswith("@"):
            name = token[1:]
            if name in self.module.globals:
                return self.module.globals[name]
            if name in self.module.functions:
                return self.module.functions[name]
            raise IRParseError(f"unknown global {token}")
        if token == "undef":
            return UndefValue(type)
        if type.is_float():
            return ConstantFloat(type, float(token))
        if type.is_integer():
            return ConstantInt(type, int(token))
        raise IRParseError(f"cannot parse operand {token!r} of type {type}")

    def typed_operand(self, text: str) -> tuple[Type, Value]:
        text = text.strip()
        type_text, _, value_text = text.partition(" ")
        type = parse_type(type_text)
        return type, self.operand(type, value_text)

    def finish(self) -> None:
        if self.placeholders:
            missing = ", ".join(sorted(self.placeholders))
            raise IRParseError(
                f"{self.function.name}: unresolved values: {missing}"
            )


def _split_top_level(text: str) -> list[str]:
    """Split on commas that are not inside brackets/parentheses."""
    parts = []
    depth = 0
    current = []
    for char in text:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse a whole textual module."""
    module = Module(name)
    lines = [line.rstrip() for line in text.splitlines()]

    # Pass 1: globals, declarations and function signatures.
    bodies: list[tuple[Function, list[str]]] = []
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line:
            continue
        match = _GLOBAL_RE.match(line)
        if match:
            element_type = parse_type(match.group("type"))
            initializer = None
            if match.group("init") is not None:
                tokens = _split_top_level(match.group("init"))
                if element_type.is_float():
                    initializer = [float(t) for t in tokens]
                else:
                    initializer = [int(t) for t in tokens]
            module.add_global(
                match.group("name"), element_type,
                int(match.group("size")), initializer,
            )
            continue
        match = _DECLARE_RE.match(line)
        if match:
            params = tuple(
                parse_type(p) for p in _split_top_level(match.group("params"))
            )
            module.add_function(
                match.group("name"),
                FunctionType(parse_type(match.group("ret")), params),
                pure=bool(match.group("pure")),
            )
            continue
        match = _DEFINE_RE.match(line)
        if match:
            param_types = []
            param_names = []
            for param in _split_top_level(match.group("params")):
                type_text, _, value_text = param.partition(" ")
                param_types.append(parse_type(type_text))
                if not value_text.startswith("%"):
                    raise IRParseError(f"bad parameter {param!r}")
                param_names.append(value_text[1:])
            function = module.add_function(
                match.group("name"),
                FunctionType(parse_type(match.group("ret")),
                             tuple(param_types)),
                param_names,
            )
            body: list[str] = []
            while index < len(lines):
                body_line = lines[index]
                index += 1
                if body_line.strip() == "}":
                    break
                body.append(body_line)
            else:
                raise IRParseError(f"unterminated function {function.name}")
            bodies.append((function, body))
            continue
        raise IRParseError(f"cannot parse line: {line!r}")

    # Pass 2: function bodies.
    for function, body in bodies:
        _parse_body(module, function, body)
    return module


def _parse_body(module: Module, function: Function,
                lines: list[str]) -> None:
    parser = _FunctionBodyParser(module, function)
    # Create all blocks first so branch targets resolve.
    for line in lines:
        match = _LABEL_RE.match(line.strip())
        if match and not line.startswith(" "):
            block = BasicBlock(match.group("name"))
            function.append_block(block)
            parser.blocks[block.name] = block

    current: BasicBlock | None = None
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        match = _LABEL_RE.match(stripped)
        if match and not line.startswith(" "):
            current = parser.blocks[match.group("name")]
            continue
        if current is None:
            raise IRParseError(f"instruction outside block: {stripped}")
        _parse_instruction(parser, current, stripped)
    parser.finish()


def _parse_instruction(parser: _FunctionBodyParser, block: BasicBlock,
                       text: str) -> None:
    name = None
    body = text
    if body.startswith("%"):
        name, _, body = body.partition(" = ")
        name = name[1:]
    opcode, _, rest = body.partition(" ")
    instruction = _build(parser, opcode, rest.strip())
    block.append(instruction)
    if name is not None:
        parser.define(name, instruction)


def _build(parser: _FunctionBodyParser, opcode: str, rest: str):
    if opcode in INT_BINARY_OPCODES or opcode in FLOAT_BINARY_OPCODES:
        lhs_text, rhs_text = _split_top_level(rest)
        type, lhs = parser.typed_operand(lhs_text)
        rhs = parser.operand(type, rhs_text)
        return BinaryInst(opcode, lhs, rhs)
    if opcode in ("icmp", "fcmp"):
        predicate, _, operands = rest.partition(" ")
        lhs_text, rhs_text = _split_top_level(operands)
        type, lhs = parser.typed_operand(lhs_text)
        rhs = parser.operand(type, rhs_text)
        if opcode == "icmp":
            if predicate not in ICMP_PREDICATES:
                raise IRParseError(f"bad icmp predicate {predicate}")
            return ICmpInst(predicate, lhs, rhs)
        if predicate not in FCMP_PREDICATES:
            raise IRParseError(f"bad fcmp predicate {predicate}")
        return FCmpInst(predicate, lhs, rhs)
    if opcode == "load":
        _, pointer = parser.typed_operand(rest)
        return LoadInst(pointer)
    if opcode == "store":
        value_text, pointer_text = _split_top_level(rest)
        _, value = parser.typed_operand(value_text)
        _, pointer = parser.typed_operand(pointer_text)
        return StoreInst(value, pointer)
    if opcode == "gep":
        base_text, index_text = _split_top_level(rest)
        _, base = parser.typed_operand(base_text)
        _, index = parser.typed_operand(index_text)
        return GEPInst(base, index)
    if opcode == "alloca":
        type_text, count_text = _split_top_level(rest)
        return AllocaInst(parse_type(type_text), int(count_text))
    if opcode == "phi":
        type_text, _, incomings = rest.partition(" ")
        type = parse_type(type_text)
        phi = PhiInst(type)
        for pair in re.findall(r"\[\s*(.*?)\s*,\s*%([\w.\-]+)\s*\]",
                               incomings):
            value_text, block_name = pair
            value = parser.operand(type, value_text)
            phi.add_incoming(value, parser.block(block_name))
        return phi
    if opcode == "br":
        parts = _split_top_level(rest)
        if len(parts) == 1:
            target = parts[0].removeprefix("label %")
            return BranchInst(parser.block(target))
        condition_text, then_text, else_text = parts
        _, condition = parser.typed_operand(condition_text)
        then_block = parser.block(then_text.removeprefix("label %"))
        else_block = parser.block(else_text.removeprefix("label %"))
        return BranchInst(condition, then_block, else_block)
    if opcode == "ret":
        if rest == "void":
            return ReturnInst()
        _, value = parser.typed_operand(rest)
        return ReturnInst(value)
    if opcode == "call":
        match = re.match(
            r"^(?P<ret>[\w*]+) @(?P<name>[\w.\-]+)\((?P<args>.*)\)$", rest
        )
        if match is None:
            raise IRParseError(f"bad call: {rest}")
        callee = parser.module.get_function(match.group("name"))
        args = [
            parser.typed_operand(arg)[1]
            for arg in _split_top_level(match.group("args"))
        ]
        return CallInst(callee, args)
    if opcode == "select":
        condition_text, then_text, else_text = _split_top_level(rest)
        _, condition = parser.typed_operand(condition_text)
        _, if_true = parser.typed_operand(then_text)
        _, if_false = parser.typed_operand(else_text)
        return SelectInst(condition, if_true, if_false)
    if opcode in CAST_OPCODES:
        operand_text, _, type_text = rest.rpartition(" to ")
        _, value = parser.typed_operand(operand_text)
        return CastInst(opcode, value, parse_type(type_text))
    raise IRParseError(f"unknown opcode {opcode!r}")
