"""Core value hierarchy of the SSA IR.

Everything that can appear as an operand is a :class:`Value`: constants,
function arguments, global variables, basic blocks (as branch targets) and
instructions themselves.  This mirrors ``LLVM::Value``, which is the
universe the paper's constraint solver enumerates (§3.2: *"the set of all
instructions, constants, function arguments, basic block labels and global
variables that are used in the function"*).

Values track their uses, so analyses can walk def-use chains in O(uses).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .types import DOUBLE, INT1, FloatType, IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instructions import Instruction


class Use:
    """A single (user, operand-index) edge in the def-use graph."""

    __slots__ = ("user", "index")

    def __init__(self, user: "Instruction", index: int):
        self.user = user
        self.index = index

    def __repr__(self) -> str:
        return f"Use({self.user!r}, {self.index})"


class Value:
    """Base class for all IR values.

    Parameters
    ----------
    type:
        The IR type of the value.
    name:
        Optional human-readable name; the printer generates ``%N`` names
        for anonymous values.
    """

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name
        self.uses: list[Use] = []

    # -- def-use maintenance -------------------------------------------------

    def add_use(self, user: "Instruction", index: int) -> None:
        """Record that ``user`` reads this value as operand ``index``."""
        self.uses.append(Use(user, index))

    def remove_use(self, user: "Instruction", index: int) -> None:
        """Remove a previously recorded use edge."""
        for i, use in enumerate(self.uses):
            if use.user is user and use.index == index:
                del self.uses[i]
                return
        raise ValueError(f"use ({user}, {index}) not found on {self}")

    def users(self) -> Iterator["Instruction"]:
        """Iterate over the instructions that use this value (with repeats)."""
        for use in self.uses:
            yield use.user

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every use of this value to use ``replacement`` instead."""
        if replacement is self:
            return
        for use in list(self.uses):
            use.user.set_operand(use.index, replacement)

    # -- classification helpers ----------------------------------------------

    def is_constant(self) -> bool:
        """Return True for compile-time constants (including undef)."""
        return isinstance(self, Constant)

    def short_name(self) -> str:
        """Best-effort short identifier used in diagnostics."""
        return self.name or f"<{type(self).__name__}>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.type} {self.short_name()}>"


class Constant(Value):
    """Base class of compile-time constant values."""


class ConstantInt(Constant):
    """An integer constant; the value is wrapped to the type's bit width."""

    def __init__(self, type: IntType, value: int):
        super().__init__(type)
        self.value = _wrap_signed(int(value), type.width)

    def short_name(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"<ConstantInt {self.type} {self.value}>"


class ConstantFloat(Constant):
    """A floating point constant."""

    def __init__(self, type: FloatType, value: float):
        super().__init__(type)
        self.value = float(value)

    def short_name(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"<ConstantFloat {self.type} {self.value}>"


class UndefValue(Constant):
    """An undefined value of a given type (used for unreachable PHI inputs)."""

    def short_name(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`."""

    def __init__(self, type: Type, name: str, index: int):
        super().__init__(type, name)
        self.index = index


class GlobalVariable(Value):
    """A module-level array or scalar.

    Globals always have pointer type; ``element_type`` is the pointee and
    ``size`` the number of elements (1 for scalars).  The optional
    ``initializer`` is a Python list used by the interpreter.
    """

    def __init__(
        self,
        name: str,
        element_type: Type,
        size: int = 1,
        initializer: list | None = None,
    ):
        super().__init__(PointerType(element_type), name)
        self.element_type = element_type
        self.size = size
        self.initializer = initializer

    def short_name(self) -> str:
        return f"@{self.name}"


def _wrap_signed(value: int, width: int) -> int:
    """Wrap ``value`` to a signed two's-complement integer of ``width`` bits."""
    mask = (1 << width) - 1
    value &= mask
    sign = 1 << (width - 1)
    if width > 1 and value & sign:
        value -= 1 << width
    return value


def const_int(value: int, type: IntType | None = None) -> ConstantInt:
    """Convenience constructor for integer constants (defaults to i64)."""
    from .types import INT64

    return ConstantInt(type or INT64, value)


def const_float(value: float, type: FloatType | None = None) -> ConstantFloat:
    """Convenience constructor for float constants (defaults to double)."""
    return ConstantFloat(type or DOUBLE, value)


def const_bool(value: bool) -> ConstantInt:
    """Convenience constructor for i1 constants."""
    return ConstantInt(INT1, 1 if value else 0)
