"""Structural IR verifier.

Checks the invariants the rest of the system relies on:

* every block ends in exactly one terminator, which is the last instruction;
* PHI nodes sit at the top of their block and have one incoming value per
  predecessor;
* instruction operands that are themselves instructions belong to the same
  function;
* (optionally, with dominance checking) every use is dominated by its
  definition — the SSA property that mem2reg must establish.
"""

from __future__ import annotations

from .block import BasicBlock
from .function import Function
from .instructions import Instruction, PhiInst
from .module import Module
from .values import Argument, Constant, GlobalVariable, Value


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def verify_function(function: Function, check_dominance: bool = True) -> None:
    """Verify one function; raises :class:`VerificationError` on problems."""
    if function.is_declaration:
        return
    _check_terminators(function)
    _check_phis(function)
    _check_operand_scope(function)
    if check_dominance:
        _check_ssa_dominance(function)


def verify_module(module: Module, check_dominance: bool = True) -> None:
    """Verify every defined function in ``module``."""
    for function in module.defined_functions():
        verify_function(function, check_dominance=check_dominance)


def _check_terminators(function: Function) -> None:
    for block in function.blocks:
        terminator = block.terminator
        if terminator is None:
            raise VerificationError(
                f"{function.name}: block {block.name} has no terminator"
            )
        for instruction in block.instructions[:-1]:
            if instruction.is_terminator():
                raise VerificationError(
                    f"{function.name}: terminator in the middle of "
                    f"block {block.name}"
                )


def _check_phis(function: Function) -> None:
    for block in function.blocks:
        preds = block.predecessors()
        seen_non_phi = False
        for instruction in block.instructions:
            if isinstance(instruction, PhiInst):
                if seen_non_phi:
                    raise VerificationError(
                        f"{function.name}: phi after non-phi in {block.name}"
                    )
                incoming_blocks = [b for _, b in instruction.incoming]
                if sorted(id(b) for b in incoming_blocks) != sorted(
                    id(b) for b in preds
                ):
                    raise VerificationError(
                        f"{function.name}: phi {instruction.short_name()} in "
                        f"{block.name} incoming blocks do not match "
                        f"predecessors"
                    )
            else:
                seen_non_phi = True


def _check_operand_scope(function: Function) -> None:
    local = set()
    for block in function.blocks:
        local.add(id(block))
        for instruction in block.instructions:
            local.add(id(instruction))
    for argument in function.args:
        local.add(id(argument))
    for block in function.blocks:
        for instruction in block.instructions:
            for operand in instruction.operands:
                if _is_scoped_value(operand) and id(operand) not in local:
                    raise VerificationError(
                        f"{function.name}: operand {operand!r} of "
                        f"{instruction!r} is foreign to the function"
                    )


def _is_scoped_value(value: Value) -> bool:
    if isinstance(value, (Constant, GlobalVariable, Function)):
        return False
    return isinstance(value, (Instruction, BasicBlock, Argument))


def _check_ssa_dominance(function: Function) -> None:
    from ..analysis.dominators import DominatorTree

    tree = DominatorTree.compute(function)
    positions: dict[int, tuple[BasicBlock, int]] = {}
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            positions[id(instruction)] = (block, index)

    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            if isinstance(instruction, PhiInst):
                for value, pred in instruction.incoming:
                    if isinstance(value, Instruction):
                        def_block = value.parent
                        if def_block is None or not tree.dominates(
                            def_block, pred
                        ):
                            raise VerificationError(
                                f"{function.name}: phi incoming "
                                f"{value.short_name()} does not dominate "
                                f"edge from {pred.name}"
                            )
                continue
            for operand in instruction.operands:
                if not isinstance(operand, Instruction):
                    continue
                def_block, def_index = positions.get(id(operand), (None, -1))
                if def_block is None:
                    raise VerificationError(
                        f"{function.name}: use of uninserted instruction "
                        f"{operand!r}"
                    )
                if def_block is block:
                    if def_index >= index:
                        raise VerificationError(
                            f"{function.name}: {operand.short_name()} used "
                            f"before definition in {block.name}"
                        )
                elif not tree.dominates(def_block, block):
                    raise VerificationError(
                        f"{function.name}: definition of "
                        f"{operand.short_name()} does not dominate its use "
                        f"in {block.name}"
                    )
