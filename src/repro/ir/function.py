"""Functions: argument lists plus an ordered collection of basic blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .block import BasicBlock
from .instructions import Instruction
from .types import FunctionType
from .values import Argument, Constant, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .module import Module


class Function(Value):
    """A function definition or declaration.

    Declarations (``is_declaration == True``) have no blocks and model
    external routines; the ``pure`` flag marks functions without side
    effects, the property the reduction specifications check for calls
    inside the reduction scope (§2: *"all the function calls that are
    present are pure"*).
    """

    def __init__(
        self,
        name: str,
        type: FunctionType,
        param_names: list[str] | None = None,
        pure: bool = False,
    ):
        super().__init__(type, name)
        self.blocks: list[BasicBlock] = []
        self.pure = pure
        self.parent: "Module | None" = None
        names = param_names or [f"arg{i}" for i in range(len(type.param_types))]
        if len(names) != len(type.param_types):
            raise ValueError("parameter name/type count mismatch")
        self.args: list[Argument] = [
            Argument(param_type, param_name, index)
            for index, (param_type, param_name) in enumerate(
                zip(type.param_types, names)
            )
        ]

    # -- structure -----------------------------------------------------------

    @property
    def is_declaration(self) -> bool:
        """True if the function has no body."""
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        """The entry block (first block)."""
        if not self.blocks:
            raise ValueError(f"function {self.name} has no body")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        """Create, name-uniquify, append and return a new basic block."""
        block = BasicBlock(name or f"bb{len(self.blocks)}")
        return self.append_block(block)

    def append_block(self, block: BasicBlock) -> BasicBlock:
        """Append an existing block to this function."""
        if block.parent is not None:
            raise ValueError(f"{block} already belongs to a function")
        block.parent = self
        existing = {b.name for b in self.blocks}
        if not block.name or block.name in existing:
            base = block.name or "bb"
            suffix = len(self.blocks)
            while f"{base}{suffix}" in existing:
                suffix += 1
            block.name = f"{base}{suffix}"
        self.blocks.append(block)
        return block

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over all instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    # -- solver support --------------------------------------------------------

    def value_universe(self) -> list[Value]:
        """All values mentioned in this function.

        This is ``values(F)`` from §3.2 of the paper: instructions,
        constants, function arguments, basic block labels and global
        variables used in the function.  The constraint solver draws its
        candidates from this set.
        """
        universe: list[Value] = []
        seen: set[int] = set()

        def add(value: Value) -> None:
            if id(value) not in seen:
                seen.add(id(value))
                universe.append(value)

        for argument in self.args:
            add(argument)
        for block in self.blocks:
            add(block)
            for instruction in block.instructions:
                add(instruction)
                for operand in instruction.operands:
                    if isinstance(operand, (Constant,)):
                        add(operand)
                    else:
                        from .values import GlobalVariable

                        if isinstance(operand, GlobalVariable):
                            add(operand)
        return universe

    def short_name(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} {self.name}>"
