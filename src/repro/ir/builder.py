"""IRBuilder: convenience API for emitting instructions into blocks."""

from __future__ import annotations

from typing import Sequence

from .block import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
)
from .types import Type
from .values import Value


class IRBuilder:
    """Emit instructions at the end of a current insertion block.

    Mirrors ``llvm::IRBuilder``: position it with :meth:`position_at_end`
    and call the per-opcode helpers, each of which appends an instruction
    and returns it.
    """

    def __init__(self, block: BasicBlock | None = None):
        self.block = block

    def position_at_end(self, block: BasicBlock) -> None:
        """Make ``block`` the insertion point."""
        self.block = block

    def _insert(self, instruction: Instruction) -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion block")
        return self.block.append(instruction)

    # -- arithmetic -----------------------------------------------------------

    def binary(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit an arbitrary binary operation."""
        return self._insert(BinaryInst(opcode, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit an integer addition."""
        return self.binary("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit an integer subtraction."""
        return self.binary("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit an integer multiplication."""
        return self.binary("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit a signed integer division."""
        return self.binary("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit a signed remainder."""
        return self.binary("srem", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit a floating point addition."""
        return self.binary("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit a floating point subtraction."""
        return self.binary("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit a floating point multiplication."""
        return self.binary("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit a floating point division."""
        return self.binary("fdiv", lhs, rhs, name)

    # -- comparisons ---------------------------------------------------------

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit a signed integer comparison."""
        return self._insert(ICmpInst(predicate, lhs, rhs, name))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        """Emit an ordered floating point comparison."""
        return self._insert(FCmpInst(predicate, lhs, rhs, name))

    # -- memory ---------------------------------------------------------------

    def alloca(self, allocated_type: Type, count: int = 1, name: str = "") -> Value:
        """Emit a stack allocation."""
        return self._insert(AllocaInst(allocated_type, count, name))

    def load(self, pointer: Value, name: str = "") -> Value:
        """Emit a load."""
        return self._insert(LoadInst(pointer, name))

    def store(self, value: Value, pointer: Value) -> Value:
        """Emit a store."""
        return self._insert(StoreInst(value, pointer))

    def gep(self, base: Value, index: Value, name: str = "") -> Value:
        """Emit single-index pointer arithmetic."""
        return self._insert(GEPInst(base, index, name))

    # -- control flow -----------------------------------------------------------

    def phi(self, type: Type, name: str = "") -> PhiInst:
        """Emit a PHI node (incoming edges added by the caller)."""
        phi = PhiInst(type, name)
        if self.block is None:
            raise ValueError("builder has no insertion block")
        index = len(self.block.phis())
        self.block.insert(index, phi)
        return phi

    def br(self, target: BasicBlock) -> Value:
        """Emit an unconditional branch."""
        return self._insert(BranchInst(target))

    def cond_br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Value:
        """Emit a conditional branch."""
        return self._insert(BranchInst(cond, if_true, if_false))

    def ret(self, value: Value | None = None) -> Value:
        """Emit a return."""
        return self._insert(ReturnInst(value))

    def select(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> Value:
        """Emit a ternary select."""
        return self._insert(SelectInst(cond, if_true, if_false, name))

    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Value:
        """Emit a direct call."""
        return self._insert(CallInst(callee, list(args), name))

    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Value:
        """Emit a value conversion."""
        return self._insert(CastInst(opcode, value, to_type, name))
