"""Type system for the SSA intermediate representation.

The IR is typed in the same spirit as LLVM: integers carry a bit width,
floating point values are single or double precision, and memory is
addressed through typed pointers.  Types are immutable value objects;
structural equality is used throughout so ``IntType(32) == IntType(32)``.

The module also exposes the commonly used singletons (:data:`INT1`,
:data:`INT32`, :data:`INT64`, :data:`FLOAT`, :data:`DOUBLE`, :data:`VOID`)
so that client code does not have to instantiate types repeatedly.
"""

from __future__ import annotations


class Type:
    """Base class of all IR types.

    Concrete subclasses implement ``__eq__``/``__hash__`` structurally so
    types can be freely used as dictionary keys.
    """

    def is_integer(self) -> bool:
        """Return True if this is an :class:`IntType`."""
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        """Return True if this is a :class:`FloatType`."""
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        """Return True if this is a :class:`PointerType`."""
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        """Return True if this is the void type."""
        return isinstance(self, VoidType)

    def __repr__(self) -> str:
        return str(self)


class VoidType(Type):
    """The type of instructions that produce no value (e.g. ``store``)."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """An integer type of a fixed bit width.

    Width 1 is used for booleans (comparison results), 32 and 64 for the
    C ``int`` and ``long`` types of the mini-C frontend.
    """

    __slots__ = ("width",)

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"integer width must be positive, got {width}")
        self.width = width

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("int", self.width))

    def __str__(self) -> str:
        return f"i{self.width}"


class FloatType(Type):
    """An IEEE-754 floating point type (width 32 or 64)."""

    __slots__ = ("width",)

    def __init__(self, width: int = 64):
        if width not in (32, 64):
            raise ValueError(f"float width must be 32 or 64, got {width}")
        self.width = width

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("float", self.width))

    def __str__(self) -> str:
        return "float" if self.width == 32 else "double"


class PointerType(Type):
    """A pointer to a value of type :attr:`pointee`.

    Arrays are modelled as pointers to their element type plus explicit
    index arithmetic (a single-index ``gep``), mirroring how clang lowers
    flat C arrays — which is exactly the representation the paper's
    affine-access constraints inspect.
    """

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __str__(self) -> str:
        return f"{self.pointee}*"


class LabelType(Type):
    """The type of basic block labels."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelType)

    def __hash__(self) -> int:
        return hash("label")

    def __str__(self) -> str:
        return "label"


class FunctionType(Type):
    """A function signature: return type plus parameter types."""

    __slots__ = ("return_type", "param_types")

    def __init__(self, return_type: Type, param_types: tuple[Type, ...]):
        self.return_type = return_type
        self.param_types = tuple(param_types)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
        )

    def __hash__(self) -> int:
        return hash(("fn", self.return_type, self.param_types))

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types)
        return f"{self.return_type} ({params})"


#: Boolean type produced by comparisons.
INT1 = IntType(1)
#: The C ``int`` type of the mini-C frontend.
INT32 = IntType(32)
#: The C ``long`` type; also used for pointer-sized arithmetic.
INT64 = IntType(64)
#: Single precision floating point.
FLOAT = FloatType(32)
#: Double precision floating point.
DOUBLE = FloatType(64)
#: Type of value-less instructions.
VOID = VoidType()
#: Type of basic block labels.
LABEL = LabelType()
