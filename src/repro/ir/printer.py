"""Textual IR printer (LLVM-flavoured, for debugging and golden tests)."""

from __future__ import annotations

from .block import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
)
from .module import Module
from .values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
    Value,
)


class _NameMap:
    """Assigns stable ``%N`` names to anonymous values within a function."""

    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self._taken: set[str] = set()
        self._counter = 0

    def name_of(self, value: Value) -> str:
        key = id(value)
        if key in self._names:
            return self._names[key]
        if value.name and value.name not in self._taken:
            name = value.name
        else:
            base = value.name or ""
            while True:
                name = f"{base}{self._counter}" if base else str(self._counter)
                self._counter += 1
                if name not in self._taken:
                    break
        self._taken.add(name)
        self._names[key] = name
        return name


def format_operand(value: Value, names: _NameMap) -> str:
    """Render a value as it appears in operand position."""
    if isinstance(value, ConstantInt):
        return f"{value.type} {value.value}"
    if isinstance(value, ConstantFloat):
        return f"{value.type} {value.value!r}"
    if isinstance(value, UndefValue):
        return f"{value.type} undef"
    if isinstance(value, GlobalVariable):
        return f"{value.type} @{value.name}"
    if isinstance(value, Function):
        return f"@{value.name}"
    if isinstance(value, BasicBlock):
        return f"label %{names.name_of(value)}"
    if isinstance(value, Argument):
        return f"{value.type} %{names.name_of(value)}"
    return f"{value.type} %{names.name_of(value)}"


def format_instruction(instruction: Instruction, names: _NameMap) -> str:
    """Render one instruction as text."""
    op = lambda v: format_operand(v, names)  # noqa: E731 - local shorthand
    if isinstance(instruction, BinaryInst):
        lhs, rhs = instruction.lhs, instruction.rhs
        return (
            f"%{names.name_of(instruction)} = {instruction.opcode} "
            f"{op(lhs)}, {format_operand_bare(rhs, names)}"
        )
    if isinstance(instruction, ICmpInst):
        return (
            f"%{names.name_of(instruction)} = icmp {instruction.predicate} "
            f"{op(instruction.lhs)}, {format_operand_bare(instruction.rhs, names)}"
        )
    if isinstance(instruction, FCmpInst):
        return (
            f"%{names.name_of(instruction)} = fcmp {instruction.predicate} "
            f"{op(instruction.lhs)}, {format_operand_bare(instruction.rhs, names)}"
        )
    if isinstance(instruction, AllocaInst):
        return (
            f"%{names.name_of(instruction)} = alloca "
            f"{instruction.allocated_type}, {instruction.count}"
        )
    if isinstance(instruction, LoadInst):
        return f"%{names.name_of(instruction)} = load {op(instruction.pointer)}"
    if isinstance(instruction, StoreInst):
        return f"store {op(instruction.value)}, {op(instruction.pointer)}"
    if isinstance(instruction, GEPInst):
        return (
            f"%{names.name_of(instruction)} = gep {op(instruction.base)}, "
            f"{op(instruction.index)}"
        )
    if isinstance(instruction, PhiInst):
        pairs = ", ".join(
            f"[ {format_operand_bare(value, names)}, %{names.name_of(block)} ]"
            for value, block in instruction.incoming
        )
        return f"%{names.name_of(instruction)} = phi {instruction.type} {pairs}"
    if isinstance(instruction, BranchInst):
        if instruction.is_conditional:
            then_block, else_block = instruction.targets()
            return (
                f"br {op(instruction.condition)}, "
                f"label %{names.name_of(then_block)}, "
                f"label %{names.name_of(else_block)}"
            )
        return f"br label %{names.name_of(instruction.targets()[0])}"
    if isinstance(instruction, ReturnInst):
        if instruction.return_value is None:
            return "ret void"
        return f"ret {op(instruction.return_value)}"
    if isinstance(instruction, CallInst):
        args = ", ".join(op(a) for a in instruction.args)
        prefix = ""
        if not instruction.type.is_void():
            prefix = f"%{names.name_of(instruction)} = "
        return f"{prefix}call {instruction.type} @{instruction.callee.name}({args})"
    if isinstance(instruction, SelectInst):
        return (
            f"%{names.name_of(instruction)} = select {op(instruction.condition)}, "
            f"{op(instruction.if_true)}, {op(instruction.if_false)}"
        )
    if isinstance(instruction, CastInst):
        return (
            f"%{names.name_of(instruction)} = {instruction.opcode} "
            f"{op(instruction.value)} to {instruction.type}"
        )
    raise NotImplementedError(f"cannot print {instruction!r}")


def format_operand_bare(value: Value, names: _NameMap) -> str:
    """Render a value without its leading type (second binary operand)."""
    text = format_operand(value, names)
    prefix = f"{value.type} "
    if text.startswith(prefix):
        return text[len(prefix):]
    return text


def print_function(function: Function) -> str:
    """Render a whole function definition as text."""
    names = _NameMap()
    for argument in function.args:
        names.name_of(argument)
    for block in function.blocks:
        names.name_of(block)
    params = ", ".join(
        f"{a.type} %{names.name_of(a)}" for a in function.args
    )
    lines = [f"define {function.type.return_type} @{function.name}({params}) {{"]
    for block in function.blocks:
        lines.append(f"{names.name_of(block)}:")
        for instruction in block.instructions:
            lines.append(f"  {format_instruction(instruction, names)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a module: globals, declarations, then definitions."""
    lines = []
    for variable in module.globals.values():
        init = ""
        if variable.initializer is not None:
            values = ", ".join(repr(v) for v in variable.initializer)
            init = f" init [{values}]"
        lines.append(
            f"@{variable.name} = global [{variable.size} x "
            f"{variable.element_type}]{init}"
        )
    for function in module.functions.values():
        if function.is_declaration:
            params = ", ".join(str(t) for t in function.type.param_types)
            pure = " pure" if function.pure else ""
            lines.append(
                f"declare{pure} {function.type.return_type} "
                f"@{function.name}({params})"
            )
    for function in module.defined_functions():
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines) + "\n"
