"""Modules: the top-level container of functions and global variables."""

from __future__ import annotations

from typing import Iterator

from .function import Function
from .types import FunctionType, Type
from .values import GlobalVariable


class Module:
    """A translation unit holding functions and globals by name."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}

    def add_function(
        self,
        name: str,
        type: FunctionType,
        param_names: list[str] | None = None,
        pure: bool = False,
    ) -> Function:
        """Create and register a new function."""
        if name in self.functions:
            raise ValueError(f"function {name!r} already defined")
        function = Function(name, type, param_names, pure=pure)
        function.parent = self
        self.functions[name] = function
        return function

    def add_global(
        self,
        name: str,
        element_type: Type,
        size: int = 1,
        initializer: list | None = None,
    ) -> GlobalVariable:
        """Create and register a module-level array or scalar."""
        if name in self.globals:
            raise ValueError(f"global {name!r} already defined")
        variable = GlobalVariable(name, element_type, size, initializer)
        self.globals[name] = variable
        return variable

    def get_function(self, name: str) -> Function:
        """Look up a function by name (KeyError if missing)."""
        return self.functions[name]

    def get_global(self, name: str) -> GlobalVariable:
        """Look up a global by name (KeyError if missing)."""
        return self.globals[name]

    def defined_functions(self) -> Iterator[Function]:
        """Iterate over functions that have bodies."""
        for function in self.functions.values():
            if not function.is_declaration:
                yield function

    def __repr__(self) -> str:
        return f"<Module {self.name}: {len(self.functions)} functions>"
