"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .instructions import BranchInst, Instruction, PhiInst
from .types import LABEL
from .values import Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .function import Function


class BasicBlock(Value):
    """A basic block.

    Blocks are values (of label type) so they can appear as branch and
    PHI operands — matching LLVM, where block labels are part of the
    value universe the constraint solver searches (§3.2).
    """

    def __init__(self, name: str = ""):
        super().__init__(LABEL, name)
        self.parent: "Function | None" = None
        self.instructions: list[Instruction] = []

    # -- structure ---------------------------------------------------------

    def append(self, instruction: Instruction) -> Instruction:
        """Append ``instruction`` and set its parent."""
        if instruction.parent is not None:
            raise ValueError(f"{instruction} already belongs to a block")
        if self.terminator is not None:
            raise ValueError(f"block {self.name} is already terminated")
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        """Insert ``instruction`` at position ``index``."""
        if instruction.parent is not None:
            raise ValueError(f"{instruction} already belongs to a block")
        instruction.parent = self
        self.instructions.insert(index, instruction)
        return instruction

    def remove(self, instruction: Instruction) -> None:
        """Detach ``instruction`` from this block (uses are untouched)."""
        self.instructions.remove(instruction)
        instruction.parent = None

    @property
    def terminator(self) -> Instruction | None:
        """The final branch/return, or None while under construction."""
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def phis(self) -> list[PhiInst]:
        """The PHI nodes at the head of the block."""
        result = []
        for instruction in self.instructions:
            if isinstance(instruction, PhiInst):
                result.append(instruction)
            else:
                break
        return result

    def non_phi_instructions(self) -> Iterator[Instruction]:
        """Iterate over the instructions after the PHI prefix."""
        for instruction in self.instructions:
            if not isinstance(instruction, PhiInst):
                yield instruction

    # -- CFG -----------------------------------------------------------------

    def successors(self) -> list["BasicBlock"]:
        """Successor blocks (empty for return blocks)."""
        terminator = self.terminator
        if isinstance(terminator, BranchInst):
            return terminator.targets()
        return []

    def predecessors(self) -> list["BasicBlock"]:
        """Predecessor blocks, in deterministic function order."""
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def short_name(self) -> str:
        return self.name or "<block>"

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.short_name()}>"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)
