"""Logical combinators: conjunction and disjunction of constraints.

These correspond to the ``ConstraintAnd``/``ConstraintOr`` classes the
paper's C++ DSL provides (Fig. 7) and to the ∧/∨ operators of the
description language (Fig. 5).
"""

from __future__ import annotations

from typing import Iterable

from ..ir.values import Value
from .core import Assignment, Constraint, SolverContext


def intersect_proposals(proposals: list[list[Value]]) -> list[Value]:
    """Intersect candidate lists, keeping the order of the smallest.

    Shared by :meth:`ConstraintAnd.propose` and the compiled solver's
    proposal path so the two can never diverge in ordering or dedup
    semantics (the solver guarantees identical enumeration).
    """
    if len(proposals) == 1:
        return proposals[0]
    proposals.sort(key=len)
    result = proposals[0]
    for other in proposals[1:]:
        other_ids = {id(v) for v in other}
        result = [v for v in result if id(v) in other_ids]
    return result


def _flatten(kind, constraints):
    flat: list[Constraint] = []
    for constraint in constraints:
        if isinstance(constraint, kind):
            flat.extend(constraint.children)
        else:
            flat.append(constraint)
    return flat


#: Marker for a child whose partial verdict is constant-true at the
#: bound set being compiled (see :func:`_compile_children`).
_CHILD_VACUOUS = object()


def _generic_child(child: Constraint):
    partial = child.partial_check

    def run(ctx, slots, view):
        return partial(ctx, view)

    return run


def _compile_children(children, bound, slot_of):
    """Lower each child for one bound set; vacuous children become
    :data:`_CHILD_VACUOUS`, unlowerable ones a ``partial_check``
    wrapper."""
    from .core import PARTIAL_VACUOUS

    subs = []
    for child in children:
        lowered = child.compile_partial(bound, slot_of)
        if lowered is PARTIAL_VACUOUS:
            subs.append(_CHILD_VACUOUS)
        elif lowered is None:
            subs.append(_generic_child(child))
        else:
            subs.append(lowered)
    return subs


class ConstraintAnd(Constraint):
    """Conjunction; proposals are intersected across children."""

    def __init__(self, *children: Constraint):
        self.children: list[Constraint] = _flatten(ConstraintAnd, children)
        labels: list[str] = []
        for child in self.children:
            from .core import constraint_labels

            for label in constraint_labels(child):
                if label not in labels:
                    labels.append(label)
        self.labels = tuple(labels)

    def check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        return all(c.check(ctx, assignment) for c in self.children)

    def partial_check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        return all(c.partial_check(ctx, assignment) for c in self.children)

    def compile_partial(self, bound, slot_of):
        """Compose the children's lowered partial checks (``all`` of
        them).  A vacuous child contributes constant-true and drops out
        of the conjunction; if every child drops out the whole node is
        vacuous."""
        subs = [
            fn
            for fn in _compile_children(self.children, bound, slot_of)
            if fn is not _CHILD_VACUOUS
        ]
        if not subs:
            from .core import PARTIAL_VACUOUS

            return PARTIAL_VACUOUS
        if len(subs) == 1:
            return subs[0]

        def run(ctx, slots, view):
            for fn in subs:
                if not fn(ctx, slots, view):
                    return False
            return True

        return run

    def propose(
        self, ctx: SolverContext, assignment: Assignment, label: str
    ) -> Iterable[Value] | None:
        proposals: list[list[Value]] = []
        for child in self.children:
            if label not in getattr(child, "labels", ()):  # fast path
                from .core import constraint_labels

                if label not in constraint_labels(child):
                    continue
            candidates = child.propose(ctx, assignment, label)
            if candidates is not None:
                proposals.append(list(candidates))
        if not proposals:
            return None
        return intersect_proposals(proposals)

    def label_kinds(self):
        pairs: list[tuple[str, str]] = []
        for child in self.children:
            pairs.extend(child.label_kinds())
        return tuple(pairs)

    def proposable_labels(self, bound):
        # Any one child's guaranteed proposal suffices — propose()
        # collects from every child mentioning the label.
        proposable: set[str] = set()
        for child in self.children:
            proposable |= child.proposable_labels(bound)
        return frozenset(proposable)


class ConstraintOr(Constraint):
    """Disjunction.

    A disjunct whose labels are all bound and whose check fails is
    eliminated; if any disjunct may still hold the Or may hold.
    Proposals are the union of the children's proposals, and only
    usable when *every* live child can propose.
    """

    def __init__(self, *children: Constraint):
        self.children: list[Constraint] = _flatten(ConstraintOr, children)
        labels: list[str] = []
        for child in self.children:
            from .core import constraint_labels

            for label in constraint_labels(child):
                if label not in labels:
                    labels.append(label)
        self.labels = tuple(labels)

    def check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        return any(c.check(ctx, assignment) for c in self.children)

    def partial_check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        return any(c.partial_check(ctx, assignment) for c in self.children)

    def compile_partial(self, bound, slot_of):
        """Compose the children's lowered partial checks (``any`` of
        them).  One vacuous child makes the disjunction constant-true,
        hence the whole node vacuous."""
        subs = _compile_children(self.children, bound, slot_of)
        if any(fn is _CHILD_VACUOUS for fn in subs):
            from .core import PARTIAL_VACUOUS

            return PARTIAL_VACUOUS
        if len(subs) == 1:
            return subs[0]

        def run(ctx, slots, view):
            for fn in subs:
                if fn(ctx, slots, view):
                    return True
            return False

        return run

    def propose(
        self, ctx: SolverContext, assignment: Assignment, label: str
    ) -> Iterable[Value] | None:
        union: list[Value] = []
        seen: set[int] = set()
        for child in self.children:
            if not child.partial_check(ctx, assignment):
                continue  # disjunct already ruled out
            candidates = child.propose(ctx, assignment, label)
            if candidates is None:
                return None
            for value in candidates:
                if id(value) not in seen:
                    seen.add(id(value))
                    union.append(value)
        return union

    def label_kinds(self):
        # A disjunction only pins a label to the *join* of what its
        # children require — and a child not mentioning the label
        # leaves it unconstrained whenever that disjunct is the one
        # satisfied, widening the join to "any".
        from .core import constraint_labels, kind_join, kind_meet

        pairs: list[tuple[str, str]] = []
        for label in self.labels:
            joined: str | None = None
            for child in self.children:
                required = "any"
                if label in constraint_labels(child):
                    met: str | None = "any"
                    for own, kind in child.label_kinds():
                        if own == label and met is not None:
                            met = kind_meet(met, kind)
                    if met is None:
                        continue  # unsatisfiable disjunct: no vote
                    required = met
                joined = (
                    required if joined is None
                    else kind_join(joined, required)
                )
            if joined is not None and joined != "any":
                pairs.append((label, joined))
        return tuple(pairs)

    def proposable_labels(self, bound):
        # propose() abstains the moment any live child abstains, and a
        # child can only be ruled out dynamically — so a guaranteed
        # proposal needs *every* child to guarantee one.
        proposable: frozenset | None = None
        for child in self.children:
            own = child.proposable_labels(bound)
            proposable = own if proposable is None else proposable & own
        return proposable or frozenset()
