"""Static analysis (lint) over ICSL specs, compiled plans and registries.

The solver never complains: a spec with an unconstrained solution
label silently over-matches, a label placed before its proposing atom
silently falls back to enumerating the whole universe, and a conjunct
implied by another is silently pruned by the plan compiler.  This
module turns each of those silences into a position-exact diagnostic,
surfaced by ``python -m repro lint`` and (opt-in) as a gate on
registry loads.

Every diagnostic carries a stable code:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
ICSL000   error     spec file failed to parse / load
ICSL001   error     order label constrained by no conjunct (over-match)
ICSL002   warning   label has no guaranteed proposer at its depth
ICSL003   error     label used with irreconcilable value kinds
ICSL004   error     conjunct is unsatisfiable (always false)
ICSL005   warning   conjunct is trivially satisfied (always true)
ICSL006   warning   conjunct duplicates an earlier conjunct
ICSL007   warning   conjunct implied by an earlier conjunct
ICSL008   warning   ``extends`` order no longer keeps the base prefix
ICSL009   note      engine-level pruning record (never gates)
ICSL010   warning   registry idioms subsume each other (micro-universe)
ICSL012   warning   ``# lint: ignore[...]`` suppression matched nothing
========  ========  =====================================================

Suppressions: a ``# lint: ignore[ICSL0xx]`` comment on a statement
suppresses that conjunct's diagnostics; on the ``idiom``/``order`` line
(or a standalone comment inside the block) it suppresses spec-wide.
Unused suppressions are themselves flagged (ICSL012).
"""

from __future__ import annotations

import json
import os
from typing import Iterable

from .core import (
    IdiomSpec,
    SolverContext,
    constraint_labels,
    kind_meet,
    top_level_conjuncts,
)

#: Severity rank used for sorting and gating (lower = more severe).
_SEVERITY_RANK = {"error": 0, "warning": 1, "note": 2}

#: Human explanations of each code, for docs and ``--json`` consumers.
DIAGNOSTIC_CODES: dict[str, tuple[str, str]] = {
    "ICSL000": ("error", "spec file failed to parse or load"),
    "ICSL001": ("error", "order label constrained by no conjunct"),
    "ICSL002": ("warning", "label has no guaranteed proposer at its depth"),
    "ICSL003": ("error", "label used with irreconcilable value kinds"),
    "ICSL004": ("error", "conjunct is unsatisfiable"),
    "ICSL005": ("warning", "conjunct is trivially satisfied"),
    "ICSL006": ("warning", "conjunct duplicates an earlier conjunct"),
    "ICSL007": ("warning", "conjunct is implied by an earlier conjunct"),
    "ICSL008": ("warning", "extends order no longer keeps the base prefix"),
    "ICSL009": ("note", "engine-level pruning record"),
    "ICSL010": ("warning", "registry idioms subsume each other"),
    "ICSL012": ("warning", "lint suppression matched nothing"),
}


class Diagnostic:
    """One lint finding, with a stable code and a source span."""

    __slots__ = ("code", "severity", "spec", "message", "hint",
                 "path", "line", "column", "count", "anchor")

    def __init__(self, code: str, severity: str, spec: str, message: str,
                 hint: str = "", span: tuple | None = None,
                 count: int | None = None, anchor=None):
        self.code = code
        self.severity = severity
        self.spec = spec
        self.message = message
        self.hint = hint
        path = line = column = None
        if span is not None:
            path = span[0]
            line = span[1] if len(span) > 1 else None
            column = span[2] if len(span) > 2 else None
        self.path = path
        self.line = line
        self.column = column
        #: For pruning diagnostics: how many scheduled check positions
        #: this finding accounts for (reconciles with ``evals_pruned``).
        self.count = count
        #: The conjunct object the finding is anchored to (suppression
        #: scope); not serialized.
        self.anchor = anchor

    def where(self) -> str:
        out = self.path if self.path else f"<{self.spec or 'spec'}>"
        if self.line is not None:
            out += f":{self.line}"
            if self.column is not None:
                out += f":{self.column}"
        return out

    def render(self) -> str:
        """``path:line:col: severity: message [code]`` plus a hint line."""
        out = f"{self.where()}: {self.severity}: {self.message} [{self.code}]"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def sort_key(self):
        return (
            self.path or "~", self.line or 0, self.column or 0,
            _SEVERITY_RANK.get(self.severity, 3), self.code,
            self.spec, self.message,
        )

    def to_jsonable(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "spec": self.spec,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
        }
        if self.count is not None:
            out["count"] = self.count
        return out

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<Diagnostic {self.code} {self.where()}: {self.message!r}>"


def _describe(conjunct) -> str:
    """A conjunct in ICSL syntax (best effort)."""
    try:
        from .specfile import _render_constraint

        return _render_constraint(conjunct)
    except Exception:
        return repr(conjunct)


def _span_of(conjunct, fallback=None):
    return getattr(conjunct, "spec_span", None) or fallback


def _place(conjunct) -> str:
    """Short human position of a conjunct, for cross-references."""
    span = getattr(conjunct, "spec_span", None)
    if span and span[0]:
        return f"{os.path.basename(span[0])}:{span[1]}"
    if span:
        return f"line {span[1]}"
    return "an earlier conjunct"


# -- per-conjunct constant-verdict analysis (ICSL004/ICSL005) -----------------


def _always_verdict(constraint):
    """``(verdict, why)`` when the conjunct's truth is decidable
    statically for *any* assignment satisfying the label kinds, else
    None.  Conservative: only patterns that cannot be rescued by a
    particular universe are reported."""
    from .atomic import Distinct, Dominates, InBlock, Opcode, SESERegion
    from .logical import ConstraintAnd, ConstraintOr

    if isinstance(constraint, ConstraintAnd):
        verdicts = [_always_verdict(c) for c in constraint.children]
        for v in verdicts:
            if v is not None and v[0] is False:
                return v
        if verdicts and all(v is not None and v[0] for v in verdicts):
            return (True, "every conjunct of the conjunction is trivial")
        return None
    if isinstance(constraint, ConstraintOr):
        verdicts = [_always_verdict(c) for c in constraint.children]
        for v in verdicts:
            if v is not None and v[0]:
                return (True, f"one disjunct is always satisfied ({v[1]})")
        if verdicts and all(v is not None and not v[0] for v in verdicts):
            return (False, "every disjunct is unsatisfiable")
        return None
    if isinstance(constraint, Distinct):
        labels = constraint.labels
        if len(labels) < 2:
            return (True, "distinct() over fewer than two labels")
        if len(set(labels)) != len(labels):
            dup = next(l for l in labels if labels.count(l) > 1)
            return (False, f"distinct() repeats label {dup!r}")
        return None
    if isinstance(constraint, Dominates):
        a, b = constraint.labels
        if a == b:
            kind = ("post-dominates" if constraint.post else "dominates")
            if constraint.strict:
                return (False, f"no block strictly {kind} itself")
            return (True, f"every block {kind} itself")
        return None
    if isinstance(constraint, SESERegion):
        a, b = constraint.labels
        if a == b:
            return (True, "sese(x, x) holds for any block")
        return None
    if isinstance(constraint, Opcode):
        if (constraint.x_label in constraint.operand_labels
                and "phi" not in constraint.opcodes):
            return (
                False,
                "a non-phi instruction cannot be its own operand in SSA",
            )
        return None
    if isinstance(constraint, InBlock):
        x, block = constraint.labels
        if x == block:
            return (False, "an instruction cannot be its own parent block")
        return None
    return None


# -- per-spec analysis --------------------------------------------------------


def _kind_conflicts(conjuncts):
    """Walk the conjuncts folding per-label kind meets; yield
    irreconcilable uses as ``(label, prior_kind, prior, kind, conjunct)``."""
    kinds: dict[str, str] = {}
    origin: dict[str, object] = {}
    conflicts = []
    seen = set()
    for conjunct in conjuncts:
        for label, kind in conjunct.label_kinds():
            if kind == "any":
                continue
            current = kinds.get(label)
            if current is None:
                kinds[label] = kind
                origin[label] = conjunct
                continue
            met = kind_meet(current, kind)
            if met is None:
                key = (label, id(conjunct), current, kind)
                if key not in seen:
                    seen.add(key)
                    conflicts.append(
                        (label, current, origin[label], kind, conjunct)
                    )
                continue
            if met != current:
                origin[label] = conjunct
            kinds[label] = met
    return conflicts


def _owned_conjuncts(spec, conjuncts):
    """The conjuncts this spec states itself (not inherited via
    ``extends``) — the scope for unused-suppression reporting, so a
    suppression used by the base is not re-flagged by every extension."""
    base = spec.declared_base
    if base is None:
        return conjuncts
    return conjuncts[len(top_level_conjuncts(base.constraint)):]


def analyze_spec(spec: IdiomSpec, *, pruning: bool = True) -> list[Diagnostic]:
    """All diagnostics for one spec (suppressions already applied).

    ``pruning=False`` skips the plan-compiler pruning records
    (ICSL006/007/009) — the cheap mode the registry gate uses is the
    full one; this knob exists for callers that only want the
    structural checks.
    """
    diags: list[Diagnostic] = []
    name = spec.name
    order = spec.label_order
    conjuncts = top_level_conjuncts(spec.constraint)
    labelsets = [frozenset(constraint_labels(c)) for c in conjuncts]
    mentioned: frozenset = (
        frozenset().union(*labelsets) if labelsets else frozenset()
    )
    origin = getattr(spec, "origin", None)
    spec_span = origin if origin and origin[0] is not None else None
    order_span = getattr(spec, "order_span", None) or spec_span

    # ICSL001: a solution label no conjunct constrains binds *every*
    # universe value — the classic silent over-match.
    unconstrained = set()
    for label in order:
        if label not in mentioned:
            unconstrained.add(label)
            diags.append(Diagnostic(
                "ICSL001", "error", name,
                f"order label {label!r} is not constrained by any conjunct",
                hint="every universe value matches it, multiplying the "
                     "solution set — constrain the label or drop it from "
                     "the order",
                span=order_span,
            ))

    # ICSL002: no conjunct guarantees proposals for the label at its
    # depth, so the solver enumerates the whole value universe there.
    for k, label in enumerate(order):
        if label in unconstrained:
            continue
        bound = frozenset(order[:k])
        if any(label in c.proposable_labels(bound) for c in conjuncts):
            continue
        diags.append(Diagnostic(
            "ICSL002", "warning", name,
            f"label {label!r} has no guaranteed proposer at depth {k}",
            hint="the solver may fall back to enumerating the whole "
                 "universe here — move the label after one of the atoms "
                 "that can propose it",
            span=order_span,
        ))

    # ICSL003: kind meet over all uses of a label hit bottom.
    for label, prior_kind, prior, kind, conjunct in _kind_conflicts(conjuncts):
        diags.append(Diagnostic(
            "ICSL003", "error", name,
            f"label {label!r} is used as kind '{kind}' here but as "
            f"'{prior_kind}' by {_describe(prior)} ({_place(prior)})",
            hint="no single value satisfies both atoms, so the conjunct "
                 "can never hold — rename one of the labels",
            span=_span_of(conjunct, spec_span),
            anchor=conjunct,
        ))

    # ICSL004/ICSL005: statically decidable conjuncts.
    for conjunct in conjuncts:
        verdict = _always_verdict(conjunct)
        if verdict is None:
            continue
        value, why = verdict
        if value:
            diags.append(Diagnostic(
                "ICSL005", "warning", name,
                f"conjunct {_describe(conjunct)} is always satisfied: {why}",
                hint="the conjunct constrains nothing — delete it",
                span=_span_of(conjunct, spec_span),
                anchor=conjunct,
            ))
        else:
            diags.append(Diagnostic(
                "ICSL004", "error", name,
                f"conjunct {_describe(conjunct)} can never hold: {why}",
                hint="the spec matches nothing — fix or delete the conjunct",
                span=_span_of(conjunct, spec_span),
                anchor=conjunct,
            ))

    # ICSL008: extends declared but the enumeration order no longer
    # keeps the base's order as a prefix — full replay is off.
    base = spec.declared_base
    if base is not None and spec.base is None:
        shared = spec.shared_prefix_len()
        diags.append(Diagnostic(
            "ICSL008", "warning", name,
            f"order keeps only {shared} of base {base.name!r}'s "
            f"{len(base.label_order)} labels as a prefix, so solved-prefix "
            "replay is disabled",
            hint="restate the base's label order as this order's prefix "
                 "to re-enable full prefix replay (the engine falls back "
                 "to the partial-prefix trie)",
            span=order_span,
        ))

    if pruning:
        diags.extend(_pruning_diags(spec, spec_span))

    return _apply_suppressions(spec, conjuncts, diags)


def _pruning_diags(spec: IdiomSpec, spec_span) -> list[Diagnostic]:
    """Lift the plan compiler's typed :class:`PruneDecision` records
    into user-facing diagnostics, aggregated per (conjunct, reason).

    The per-diagnostic ``count`` fields sum to exactly
    ``plan.conjuncts_pruned`` — the same quantity
    ``SolverStats.evals_pruned`` reports per search position — so the
    lint report and the engine's counters reconcile by construction.
    """
    from .plan import compile_plan

    plan = compile_plan(spec)
    order = spec.label_order
    groups: dict[tuple, list] = {}
    for decision in plan.pruning_decisions:
        groups.setdefault((decision.index, decision.reason), []).append(
            decision
        )

    def positions(decisions) -> str:
        spots = []
        for d in decisions:
            if d.where == "depth":
                spots.append(f"depth {d.depth} (binding {order[d.depth]!r})")
            elif d.where == "replay":
                spots.append("the full-prefix replay slice")
            else:
                spots.append(f"the partial-prefix slice at depth {d.depth}")
        return ", ".join(spots)

    diags: list[Diagnostic] = []
    for (index, reason), decisions in sorted(groups.items()):
        conjunct = decisions[0].conjunct
        span = _span_of(conjunct, spec_span)
        count = len(decisions)
        at = positions(decisions)
        if reason == "duplicate":
            by = decisions[0].established_by
            diags.append(Diagnostic(
                "ICSL006", "warning", spec.name,
                f"conjunct {_describe(conjunct)} is a structural duplicate "
                f"of the conjunct at {_place(by)}",
                hint=f"remove one copy; the engine already skips the repeat "
                     f"at {at} (counted in evals_pruned)",
                span=span, count=count, anchor=conjunct,
            ))
        elif reason == "implied-conjunct":
            by = decisions[0].established_by
            diags.append(Diagnostic(
                "ICSL007", "warning", spec.name,
                f"conjunct {_describe(conjunct)} is implied by "
                f"{_describe(by)} ({_place(by)})",
                hint=f"the engine skips it at {at}; stating only the "
                     "stronger conjunct keeps the spec minimal",
                span=span, count=count, anchor=conjunct,
            ))
        elif reason == "implied-proposal":
            diags.append(Diagnostic(
                "ICSL009", "note", spec.name,
                f"conjunct {_describe(conjunct)} is pre-satisfied by its "
                f"own proposals at {at}",
                hint="informational: the depth's candidates come from this "
                     "conjunct, so its check is pruned",
                span=span, count=count, anchor=conjunct,
            ))
        else:  # vacuous
            diags.append(Diagnostic(
                "ICSL009", "note", spec.name,
                f"partial check of {_describe(conjunct)} is constant-true "
                f"at {at}",
                hint="informational: the c_k padding the plan compiler "
                     "drops instead of emitting",
                span=span, count=count, anchor=conjunct,
            ))
    return diags


def _apply_suppressions(spec, conjuncts, diags) -> list[Diagnostic]:
    """Filter out suppressed diagnostics; flag unused suppressions."""
    spec_ignores = dict(getattr(spec, "lint_ignores", None) or {})
    used_spec: set[str] = set()
    used_conjunct: set[tuple] = set()
    kept: list[Diagnostic] = []
    for diag in diags:
        anchor = diag.anchor
        conj_ignores = (
            getattr(anchor, "lint_ignores", frozenset())
            if anchor is not None else frozenset()
        )
        if diag.code in conj_ignores:
            used_conjunct.add((id(anchor), diag.code))
            continue
        if diag.code in spec_ignores:
            used_spec.add(diag.code)
            continue
        kept.append(diag)

    origin = getattr(spec, "origin", None)
    for code in sorted(spec_ignores):
        if code in used_spec or code == "ICSL012":
            continue
        kept.append(Diagnostic(
            "ICSL012", "warning", spec.name,
            f"suppression for {code} matches no diagnostic",
            hint="remove the stale '# lint: ignore[...]' comment",
            span=spec_ignores[code] or origin,
        ))
    for conjunct in _owned_conjuncts(spec, conjuncts):
        for code in sorted(getattr(conjunct, "lint_ignores", ())):
            if (id(conjunct), code) in used_conjunct or code == "ICSL012":
                continue
            kept.append(Diagnostic(
                "ICSL012", "warning", spec.name,
                f"suppression for {code} on {_describe(conjunct)} matches "
                "no diagnostic",
                hint="remove the stale '# lint: ignore[...]' comment",
                span=_span_of(conjunct, origin),
                anchor=conjunct,
            ))
    kept.sort(key=Diagnostic.sort_key)
    return kept


# -- cross-spec registry analysis (ICSL010) -----------------------------------

#: Deterministic mini-C programs exercising each shipped idiom family.
#: Small enough that a full detection sweep per registered spec stays
#: cheap, varied enough that a genuinely narrower spec produces a
#: non-empty projected solution set.
_MICRO_UNIVERSE_SOURCE = """
double a[16]; double b[16]; int n;
int hist[8]; int keys[16];
double grid[40];

double lint_sum(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + a[i];
    return s;
}

double lint_dot(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + a[i] * b[i];
    return s;
}

void lint_hist(void) {
    for (int i = 0; i < n; i++)
        hist[keys[i]] = hist[keys[i]] + 1;
}

int lint_argmin(void) {
    double best = 1000000.0;
    int pos = 0;
    for (int i = 0; i < n; i++) {
        if (a[i] < best) { best = a[i]; pos = i; }
    }
    return pos;
}

void lint_nested(void) {
    for (int i = 0; i < n; i++)
        for (int m = 0; m < 5; m++) {
            double add = a[i*5 + m];
            grid[m] = grid[m] + add * add;
        }
}
"""

_micro_contexts_cache: list | None = None


def _micro_universe_contexts() -> list:
    """Solver contexts for the lint micro-universe (built once)."""
    global _micro_contexts_cache
    if _micro_contexts_cache is None:
        from ..frontend import compile_source

        module = compile_source(_MICRO_UNIVERSE_SOURCE, name="lint-universe")
        _micro_contexts_cache = [
            SolverContext(function, module)
            for function in module.defined_functions()
        ]
    return _micro_contexts_cache


def _ancestor_names(spec: IdiomSpec) -> set[str]:
    names: set[str] = set()
    seen: set[int] = set()
    base = spec.declared_base
    while base is not None and id(base) not in seen:
        seen.add(id(base))
        names.add(base.name)
        base = base.declared_base
    return names


def cross_spec_diagnostics(specs: Iterable[IdiomSpec]) -> list[Diagnostic]:
    """ICSL010: detect subsumption/overlap between specs.

    Runs every spec over the synthesized micro-universe and compares
    solution sets pairwise wherever one spec's label set is a subset of
    the other's (projecting the larger one down).  Pairs related by a
    declared ``extends`` ancestry are skipped — an extension *is meant*
    to refine its base.  Evidence is required: a pair is only reported
    when the subsumed spec actually matched something.
    """
    from .solver import SolverStats, detect

    specs = sorted(specs, key=lambda s: s.name)
    if len(specs) < 2:
        return []
    contexts = _micro_universe_contexts()
    solutions: dict[str, list] = {}
    evals: dict[str, int] = {}
    for spec in specs:
        stats = SolverStats()
        solutions[spec.name] = [
            detect(ctx, spec, stats=stats) for ctx in contexts
        ]
        evals[spec.name] = stats.constraint_evals

    def projected(name: str, labels: tuple) -> list:
        return [
            {tuple(id(sol[label]) for label in labels) for sol in per_ctx}
            for per_ctx in solutions[name]
        ]

    def subsumes(wide: IdiomSpec, narrow: IdiomSpec) -> bool:
        """Every ``narrow`` match projects onto a ``wide`` match."""
        labels = tuple(sorted(wide.label_order))
        if not set(labels) <= set(narrow.label_order):
            return False
        wide_sets = projected(wide.name, labels)
        narrow_sets = projected(narrow.name, labels)
        if not any(narrow_sets):
            return False  # no evidence
        return all(
            narrow_set <= wide_set
            for narrow_set, wide_set in zip(narrow_sets, wide_sets)
        )

    diags: list[Diagnostic] = []
    for i, first in enumerate(specs):
        for second in specs[i + 1:]:
            if (first.name in _ancestor_names(second)
                    or second.name in _ancestor_names(first)):
                continue
            forward = subsumes(first, second)
            backward = subsumes(second, first)
            if not forward and not backward:
                continue
            cost = (
                f"micro-universe solver cost: {first.name}="
                f"{evals[first.name]} evals, {second.name}="
                f"{evals[second.name]} evals"
            )
            if forward and backward:
                wide, narrow = first, second
                message = (
                    f"idioms {first.name!r} and {second.name!r} match "
                    "exactly the same solutions on the lint micro-universe"
                )
                hint = (f"running both duplicates work ({cost}) — drop one "
                        "or differentiate their constraints")
            else:
                wide, narrow = (first, second) if forward else (second, first)
                message = (
                    f"idiom {wide.name!r} subsumes {narrow.name!r} on the "
                    f"lint micro-universe: every {narrow.name!r} match is "
                    f"already a {wide.name!r} match"
                )
                hint = (f"{cost}; declare {narrow.name!r} as 'extends "
                        f"{wide.name}' or tighten its constraints")
            span = getattr(wide, "origin", None)
            if span is None or span[0] is None:
                span = getattr(narrow, "origin", None)
            diags.append(Diagnostic(
                "ICSL010", "warning", wide.name, message, hint=hint,
                span=span,
            ))
    diags.sort(key=Diagnostic.sort_key)
    return diags


def analyze_registry(registry, *, cross: bool = True) -> list[Diagnostic]:
    """Every per-spec diagnostic plus (optionally) the cross-spec
    subsumption analysis over the registry's full contents."""
    diags: list[Diagnostic] = []
    entries = sorted(registry, key=lambda entry: entry.name)
    for entry in entries:
        diags.extend(analyze_spec(entry.spec))
    if cross and len(entries) > 1:
        diags.extend(cross_spec_diagnostics(e.spec for e in entries))
    diags.sort(key=Diagnostic.sort_key)
    return diags


# -- file-level driver (the CLI's engine) -------------------------------------


def lint_spec_files(
    paths: Iterable[str], *, cross: bool = True
) -> tuple[list[Diagnostic], bool]:
    """Lint spec files; returns ``(diagnostics, parse_failed)``.

    Files are loaded in order (so later files may ``extends`` earlier
    ones; built-ins resolve automatically).  A file that fails to parse
    contributes a rendered ICSL000 diagnostic instead of aborting the
    whole run.
    """
    from .specfile import SpecFileError, load_spec_file

    diags: list[Diagnostic] = []
    specs: dict[str, IdiomSpec] = {}
    parse_failed = False
    for path in paths:
        try:
            loaded = load_spec_file(path, known=dict(specs))
        except (OSError, SpecFileError) as exc:
            parse_failed = True
            if isinstance(exc, SpecFileError):
                span = (exc.path or path, exc.line, exc.column)
                message = str(exc)
                prefix = f"line {exc.line}: "
                if exc.line is not None and message.startswith(prefix):
                    message = message[len(prefix):]
            else:
                span = (path, None, None)
                message = str(exc)
            diags.append(Diagnostic(
                "ICSL000", "error", "", message,
                hint="fix the spec file; nothing after the error was "
                     "analyzed",
                span=span,
            ))
            continue
        specs.update(loaded)
    for name in sorted(specs):
        diags.extend(analyze_spec(specs[name]))
    if cross and len(specs) > 1:
        diags.extend(cross_spec_diagnostics(specs.values()))
    diags.sort(key=Diagnostic.sort_key)
    return diags, parse_failed


def severity_counts(diags: Iterable[Diagnostic]) -> dict[str, int]:
    counts = {"error": 0, "warning": 0, "note": 0}
    for diag in diags:
        counts[diag.severity] = counts.get(diag.severity, 0) + 1
    return counts


def exit_code(diags: Iterable[Diagnostic], *, strict: bool = False,
              parse_failed: bool = False) -> int:
    """The lint gate: 2 on load failure, 1 on errors (or, under
    ``--strict``, warnings), 0 otherwise.  Notes never gate."""
    if parse_failed:
        return 2
    counts = severity_counts(diags)
    if counts["error"]:
        return 1
    if strict and counts["warning"]:
        return 1
    return 0


def render_report(diags: list[Diagnostic], *, notes: bool = False) -> str:
    """The human-readable report (deterministic).  Notes are elided by
    default — they record engine behaviour, not spec problems."""
    counts = severity_counts(diags)
    lines = []
    hidden = 0
    for diag in diags:
        if diag.severity == "note" and not notes:
            hidden += 1
            continue
        lines.append(diag.render())
    summary = (
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['note']} note(s)"
    )
    if hidden:
        summary += f" ({hidden} note(s) hidden; pass --notes to show)"
    lines.append(summary)
    return "\n".join(lines)


def report_json(diags: list[Diagnostic], *, strict: bool = False,
                files: Iterable[str] = ()) -> str:
    """The machine-readable report: stable key order, sorted
    diagnostics, byte-deterministic for identical inputs."""
    payload = {
        "version": 1,
        "strict": bool(strict),
        "files": list(files),
        "summary": severity_counts(diags),
        "diagnostics": [diag.to_jsonable() for diag in diags],
    }
    return json.dumps(payload, indent=2) + "\n"
