"""Constraint-based idiom description language and solver.

This package is the paper's primary contribution: a description
language for computational idioms (atomic constraints over SSA values,
combined with ∧/∨ plus generalized graph domination) and a generic
backtracking solver that finds all satisfying value tuples in a
function.
"""

from .atomic import (
    Blocked,
    CFGEdge,
    DefDominatesBlock,
    Distinct,
    Dominates,
    EndsInCondBranch,
    EndsInUncondBranch,
    InBlock,
    IsConstantLike,
    Opcode,
    PhiIncomingFromBlock,
    PhiOfTwo,
    PostDominates,
    Predicate,
    SESERegion,
    StrictlyDominates,
    StrictlyPostDominates,
)
from .core import Assignment, Constraint, IdiomSpec, SolverContext, constraint_labels
from .flow import (
    ComputedOnlyFrom,
    FlowChecker,
    FlowPolicy,
    FlowResult,
    root_base,
    stored_bases,
)
from .logical import ConstraintAnd, ConstraintOr
from .solver import SolverStats, detect, detect_brute_force
from .specfile import SpecFileError, load_spec_file, parse_spec_text

__all__ = [
    "Constraint",
    "ConstraintAnd",
    "ConstraintOr",
    "IdiomSpec",
    "SolverContext",
    "Assignment",
    "constraint_labels",
    "CFGEdge",
    "EndsInUncondBranch",
    "EndsInCondBranch",
    "Dominates",
    "StrictlyDominates",
    "PostDominates",
    "StrictlyPostDominates",
    "Blocked",
    "SESERegion",
    "Opcode",
    "PhiOfTwo",
    "PhiIncomingFromBlock",
    "InBlock",
    "IsConstantLike",
    "DefDominatesBlock",
    "Distinct",
    "Predicate",
    "FlowPolicy",
    "FlowChecker",
    "FlowResult",
    "ComputedOnlyFrom",
    "root_base",
    "stored_bases",
    "detect",
    "detect_brute_force",
    "SolverStats",
    "load_spec_file",
    "parse_spec_text",
    "SpecFileError",
]
