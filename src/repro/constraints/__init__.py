"""Constraint-based idiom description language and solver.

This package is the paper's primary contribution: a description
language for computational idioms (atomic constraints over SSA values,
combined with ∧/∨ plus generalized graph domination) and a generic
backtracking solver that finds all satisfying value tuples in a
function.
"""

from .analysis import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    analyze_registry,
    analyze_spec,
    cross_spec_diagnostics,
    lint_spec_files,
)
from .atomic import (
    Blocked,
    CFGEdge,
    DefDominatesBlock,
    Distinct,
    Dominates,
    EndsInCondBranch,
    EndsInUncondBranch,
    InBlock,
    IsConstantLike,
    Opcode,
    PhiIncomingFromBlock,
    PhiOfTwo,
    PostDominates,
    Predicate,
    SESERegion,
    StrictlyDominates,
    StrictlyPostDominates,
)
from .core import Assignment, Constraint, IdiomSpec, SolverContext, constraint_labels
from .flow import (
    ComputedOnlyFrom,
    FlowChecker,
    FlowPolicy,
    FlowResult,
    declarative_flow,
    root_base,
    stored_bases,
)
from .logical import ConstraintAnd, ConstraintOr
from .plan import FlatPlan, compile_plan, detect_plan
from .predicates import PREDICATE_ATOMS, register_predicate_atom
from .solver import (
    CompiledSpec,
    SharedSolverCache,
    SolverStats,
    compile_spec,
    detect,
    detect_brute_force,
    suggest_order,
)
from .specfile import (
    BUILTIN_SPEC_FILES,
    SpecFileError,
    builtin_spec_dir,
    builtin_spec_path,
    load_spec_file,
    parse_spec_text,
    render_spec_text,
)

__all__ = [
    "Constraint",
    "ConstraintAnd",
    "ConstraintOr",
    "IdiomSpec",
    "SolverContext",
    "Assignment",
    "constraint_labels",
    "CFGEdge",
    "EndsInUncondBranch",
    "EndsInCondBranch",
    "Dominates",
    "StrictlyDominates",
    "PostDominates",
    "StrictlyPostDominates",
    "Blocked",
    "SESERegion",
    "Opcode",
    "PhiOfTwo",
    "PhiIncomingFromBlock",
    "InBlock",
    "IsConstantLike",
    "DefDominatesBlock",
    "Distinct",
    "Predicate",
    "FlowPolicy",
    "FlowChecker",
    "FlowResult",
    "ComputedOnlyFrom",
    "declarative_flow",
    "root_base",
    "stored_bases",
    "detect",
    "detect_brute_force",
    "SolverStats",
    "SharedSolverCache",
    "CompiledSpec",
    "FlatPlan",
    "compile_plan",
    "detect_plan",
    "compile_spec",
    "suggest_order",
    "PREDICATE_ATOMS",
    "register_predicate_atom",
    "load_spec_file",
    "parse_spec_text",
    "render_spec_text",
    "SpecFileError",
    "BUILTIN_SPEC_FILES",
    "builtin_spec_dir",
    "builtin_spec_path",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "analyze_spec",
    "analyze_registry",
    "cross_spec_diagnostics",
    "lint_spec_files",
]
