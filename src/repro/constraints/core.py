"""Constraint interface and solver context.

The paper (§3.2) describes idiom specifications as a set of labels ``I``
plus a boolean predicate ``c`` over ``LLVM::Value^I``, built from atomic
constraints combined with ∧ and ∨.  Detection means enumerating

    { x ∈ values(F)^I  |  c(x) = true }.

:class:`Constraint` is the Python analogue of the paper's abstract C++
``Constraint`` interface (Fig. 7): every constraint knows

* the ``labels`` it mentions,
* how to :meth:`~Constraint.check` a full assignment of those labels,
* how to :meth:`~Constraint.partial_check` an assignment in which only
  some labels are bound (used by the backtracking solver to prune), and
* optionally how to :meth:`~Constraint.propose` candidate values for a
  yet-unbound label — the paper's ``next_solution`` candidate iterator,
  which is what turns brute-force enumeration into a guided search.

:class:`SolverContext` is the paper's ``FunctionWrapper``: one function
plus every cached analysis the atomic constraints consult.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..analysis.cfg import CFG
from ..analysis.controldep import control_dependences
from ..analysis.dominators import DominatorTree
from ..analysis.loops import LoopInfo
from ..analysis.purity import PurityAnalysis
from ..analysis.scev import ScalarEvolution
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.values import Value

#: A (partial) assignment of labels to IR values.
Assignment = Mapping[str, Value]


class SolverContext:
    """A function plus cached analyses — the ``FunctionWrapper`` of Fig. 7."""

    def __init__(self, function: Function, module: Module | None = None):
        self.function = function
        self.module = module
        self.cfg = CFG(function)
        self.dom = DominatorTree.compute(function)
        self.postdom = DominatorTree.compute_post(function)
        self.loop_info = LoopInfo(function)
        self.scev = ScalarEvolution(function, self.loop_info)
        self.control_deps = control_dependences(function, self.postdom)
        self.purity = PurityAnalysis(module) if module is not None else None
        #: ``values(F)`` from §3.2 — the candidate universe.
        self.universe: list[Value] = function.value_universe()
        self._by_opcode: dict[str, list[Instruction]] = {}
        for instruction in function.instructions():
            self._by_opcode.setdefault(instruction.opcode, []).append(
                instruction
            )
        self._solver_cache = None

    @property
    def solver_cache(self):
        """The search state shared by every spec run on this context.

        Holds memoized proposals (keyed by conjunct identity, so specs
        sharing conjunct objects — e.g. the ``extends for-loop`` family
        — hit each other's entries) and solved base-spec prefixes.
        Created lazily; see :class:`~repro.constraints.solver.
        SharedSolverCache`.
        """
        if self._solver_cache is None:
            from .solver import SharedSolverCache

            self._solver_cache = SharedSolverCache()
        return self._solver_cache

    def instructions_with_opcode(self, opcode: str) -> list[Instruction]:
        """All instructions of the function with the given opcode."""
        return self._by_opcode.get(opcode, [])

    def blocks(self) -> list[BasicBlock]:
        """All basic blocks of the function."""
        return self.function.blocks

    def is_pure_call_target(self, function: Function) -> bool:
        """Purity of a callee (module-wide analysis when available)."""
        if self.purity is not None:
            return self.purity.is_pure(function)
        return function.pure


class Constraint:
    """Base class of all constraints.

    Subclasses set :attr:`labels` to the tuple of label names they
    constrain and implement :meth:`check`.
    """

    labels: tuple[str, ...] = ()

    def check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        """Evaluate the constraint; all of ``self.labels`` are bound."""
        raise NotImplementedError

    def partial_check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        """Evaluate with possibly-unbound labels; True means "may hold".

        The default implementation is the paper's ``c_k`` construction
        (§3.3): a constraint whose labels are not yet all assigned is
        replaced by constant true.

        Contract: overrides must agree with :meth:`check` once *all*
        labels are bound (``c_n = c``) — the solver prunes with this
        method only and never re-walks the tree with ``check`` on full
        assignments.  The differential tests enforce this.
        """
        if all(label in assignment for label in self.labels):
            return self.check(ctx, assignment)
        return True

    def propose(
        self, ctx: SolverContext, assignment: Assignment, label: str
    ) -> Iterable[Value] | None:
        """Candidate values for ``label`` under ``assignment``.

        Returning None means "no specific candidates"; the solver then
        falls back to other constraints or the full universe.
        """
        return None

    # -- composition sugar ----------------------------------------------------

    def __and__(self, other: "Constraint") -> "Constraint":
        from .logical import ConstraintAnd

        return ConstraintAnd(self, other)

    def __or__(self, other: "Constraint") -> "Constraint":
        from .logical import ConstraintOr

        return ConstraintOr(self, other)


class IdiomSpec:
    """A named idiom: an ordered label tuple plus its root constraint.

    The label order is the solver's enumeration order; §3.3 notes the
    choice "will be very important for the runtime behavior", so specs
    curate it explicitly (each label should be proposable from the
    labels before it).
    """

    def __init__(self, name: str, label_order: tuple[str, ...],
                 constraint: Constraint, base: "IdiomSpec | None" = None):
        self.name = name
        self.label_order = tuple(label_order)
        self.constraint = constraint
        missing = set(constraint_labels(constraint)) - set(self.label_order)
        if missing:
            raise ValueError(
                f"spec {name!r}: labels {sorted(missing)} missing from order"
            )
        #: The spec this one extends (``extends`` in ICSL).  When the
        #: extension's label order starts with the base's and the base's
        #: conjunct objects are reused verbatim, the solver can replay
        #: the base's solved prefix instead of re-enumerating it (see
        #: :class:`~repro.constraints.solver.SharedSolverCache`).
        self.base = base if base is not None and self._extends(base) else None

    def _extends(self, base: "IdiomSpec") -> bool:
        """Whether this spec's enumeration order starts with ``base``'s."""
        n = len(base.label_order)
        return (
            len(self.label_order) > n and self.label_order[:n] == base.label_order
        )

    def reordered(self, label_order: tuple[str, ...]) -> "IdiomSpec":
        """The same spec with a different enumeration order (ablation)."""
        return IdiomSpec(self.name, label_order, self.constraint,
                         base=self.base)


def constraint_labels(constraint: Constraint) -> set[str]:
    """All labels mentioned anywhere in a constraint tree."""
    from .logical import ConstraintAnd, ConstraintOr

    if isinstance(constraint, (ConstraintAnd, ConstraintOr)):
        result: set[str] = set()
        for child in constraint.children:
            result |= constraint_labels(child)
        return result
    return set(constraint.labels)
