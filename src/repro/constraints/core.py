"""Constraint interface and solver context.

The paper (§3.2) describes idiom specifications as a set of labels ``I``
plus a boolean predicate ``c`` over ``LLVM::Value^I``, built from atomic
constraints combined with ∧ and ∨.  Detection means enumerating

    { x ∈ values(F)^I  |  c(x) = true }.

:class:`Constraint` is the Python analogue of the paper's abstract C++
``Constraint`` interface (Fig. 7): every constraint knows

* the ``labels`` it mentions,
* how to :meth:`~Constraint.check` a full assignment of those labels,
* how to :meth:`~Constraint.partial_check` an assignment in which only
  some labels are bound (used by the backtracking solver to prune), and
* optionally how to :meth:`~Constraint.propose` candidate values for a
  yet-unbound label — the paper's ``next_solution`` candidate iterator,
  which is what turns brute-force enumeration into a guided search.

:class:`SolverContext` is the paper's ``FunctionWrapper``: one function
plus every cached analysis the atomic constraints consult.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..analysis.cfg import CFG
from ..analysis.controldep import control_dependences
from ..analysis.dominators import DominatorTree
from ..analysis.loops import LoopInfo
from ..analysis.purity import PurityAnalysis
from ..analysis.scev import ScalarEvolution
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.values import Value

#: A (partial) assignment of labels to IR values.
Assignment = Mapping[str, Value]

#: Sentinel returned by :meth:`Constraint.compile_partial` when the
#: partial verdict is constant-true for the given bound label set — the
#: plan compiler drops the check from the schedule slice and accounts
#: the skipped evaluation in :attr:`SolverStats.evals_pruned`.
PARTIAL_VACUOUS = object()

#: The value-kind lattice consulted by :meth:`Constraint.label_kinds`
#: and the lint pass's domain analysis (ICSL003): child -> parent.
#: ``any`` is the top; ``block`` and ``value`` are disjoint below it
#: (a basic block is never an SSA value candidate and vice versa), so
#: a label required to be both is unsatisfiable.
KIND_PARENT: dict[str, str] = {
    "block": "any",
    "value": "any",
    "instruction": "value",
    "constlike": "value",
    "phi": "instruction",
    "load": "instruction",
    "store": "instruction",
    "cmp": "instruction",
}


def _kind_ancestry(kind: str) -> tuple[str, ...]:
    chain = [kind]
    while chain[-1] != "any":
        chain.append(KIND_PARENT[chain[-1]])
    return tuple(chain)


def kind_meet(a: str, b: str) -> str | None:
    """Greatest lower bound of two kinds, or None when incompatible
    (the lattice is a tree, so the meet is whichever is the deeper of
    an ancestor/descendant pair)."""
    if a == b:
        return a
    if b in _kind_ancestry(a):
        return a
    if a in _kind_ancestry(b):
        return b
    return None


def kind_join(a: str, b: str) -> str:
    """Least upper bound of two kinds (lowest common ancestor)."""
    ancestry = _kind_ancestry(a)
    for candidate in _kind_ancestry(b):
        if candidate in ancestry:
            return candidate
    return "any"


class SolverContext:
    """A function plus cached analyses — the ``FunctionWrapper`` of Fig. 7.

    The cheap, universally-consulted analyses (CFG, dominators, the
    value universe and the opcode index) are built eagerly; the heavier
    ones (post-dominators, loops, SCEV, control dependences, purity)
    are computed on first access and cached.  Laziness only moves the
    cost to the first constraint that consults the analysis — verdicts
    are unchanged, and a spec set that never touches e.g. SCEV never
    pays for it.
    """

    def __init__(self, function: Function, module: Module | None = None):
        self.function = function
        self.module = module
        self.cfg = CFG(function)
        self.dom = DominatorTree.compute(function, self.cfg)
        #: ``values(F)`` from §3.2 — the candidate universe.
        self.universe: list[Value] = function.value_universe()
        self._by_opcode: dict[str, list[Instruction]] = {}
        for instruction in function.instructions():
            self._by_opcode.setdefault(instruction.opcode, []).append(
                instruction
            )
        self._solver_cache = None
        #: Memoized flow-slice verdicts, keyed by the checking
        #: constraint and the identities of its bound label values —
        #: an analysis cache like the lazy properties below (the
        #: verdict is a pure function of this context and those
        #: bindings), consulted by
        #: :class:`~repro.constraints.flow.ComputedOnlyFrom`.
        self.flow_memo: dict[tuple, bool] = {}
        self._postdom = None
        self._loop_info = None
        self._scev = None
        self._control_deps = None
        self._purity = None

    @property
    def postdom(self) -> DominatorTree:
        if self._postdom is None:
            self._postdom = DominatorTree.compute_post(
                self.function, self.cfg
            )
        return self._postdom

    @property
    def loop_info(self) -> LoopInfo:
        if self._loop_info is None:
            self._loop_info = LoopInfo(self.function, self.cfg, self.dom)
        return self._loop_info

    @property
    def scev(self) -> ScalarEvolution:
        if self._scev is None:
            self._scev = ScalarEvolution(self.function, self.loop_info)
        return self._scev

    @property
    def control_deps(self):
        if self._control_deps is None:
            self._control_deps = control_dependences(
                self.function, self.postdom, self.cfg
            )
        return self._control_deps

    @property
    def purity(self) -> PurityAnalysis | None:
        if self.module is not None and self._purity is None:
            self._purity = PurityAnalysis(self.module)
        return self._purity

    @property
    def solver_cache(self):
        """The search state shared by every spec run on this context.

        Holds memoized proposals (keyed by conjunct identity, so specs
        sharing conjunct objects — e.g. the ``extends for-loop`` family
        — hit each other's entries) and solved base-spec prefixes.
        Created lazily; see :class:`~repro.constraints.solver.
        SharedSolverCache`.
        """
        if self._solver_cache is None:
            from .solver import SharedSolverCache

            self._solver_cache = SharedSolverCache()
        return self._solver_cache

    def instructions_with_opcode(self, opcode: str) -> list[Instruction]:
        """All instructions of the function with the given opcode."""
        return self._by_opcode.get(opcode, [])

    def blocks(self) -> list[BasicBlock]:
        """All basic blocks of the function."""
        return self.function.blocks

    def is_pure_call_target(self, function: Function) -> bool:
        """Purity of a callee (module-wide analysis when available)."""
        if self.purity is not None:
            return self.purity.is_pure(function)
        return function.pure


class Constraint:
    """Base class of all constraints.

    Subclasses set :attr:`labels` to the tuple of label names they
    constrain and implement :meth:`check`.
    """

    labels: tuple[str, ...] = ()

    def check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        """Evaluate the constraint; all of ``self.labels`` are bound."""
        raise NotImplementedError

    def partial_check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        """Evaluate with possibly-unbound labels; True means "may hold".

        The default implementation is the paper's ``c_k`` construction
        (§3.3): a constraint whose labels are not yet all assigned is
        replaced by constant true.

        Contract: overrides must agree with :meth:`check` once *all*
        labels are bound (``c_n = c``) — the solver prunes with this
        method only and never re-walks the tree with ``check`` on full
        assignments.  The differential tests enforce this.
        """
        if all(label in assignment for label in self.labels):
            return self.check(ctx, assignment)
        return True

    def propose(
        self, ctx: SolverContext, assignment: Assignment, label: str
    ) -> Iterable[Value] | None:
        """Candidate values for ``label`` under ``assignment``.

        Returning None means "no specific candidates"; the solver then
        falls back to other constraints or the full universe.
        """
        return None

    def propose_implies_partial(self, bound: frozenset, label: str) -> bool:
        """Whether this constraint's own proposals pre-satisfy its check.

        True asserts: whenever exactly ``bound`` is bound and this
        constraint's :meth:`partial_check` held on the path so far,
        :meth:`propose` for ``label`` returns a list (never None) every
        element of which satisfies :meth:`partial_check` at
        ``bound | {label}``.  The solver draws candidates from the
        intersection of all proposals — a subset of this constraint's
        list — so its check at the depth binding ``label`` is implied
        and the plan compiler drops it (counted in
        ``SolverStats.evals_pruned``).  Only the ⊆ direction is
        required; proposals narrower than the satisfying set are fine.

        The default is conservative (False).  Overrides must hold for
        *every* context and assignment matching ``bound`` — a
        value-dependent ``propose`` that can return None must answer
        False for that pattern.
        """
        return False

    # -- plan compilation (the flat-evaluation-plan engine) -------------------

    def compile_partial(self, bound: frozenset, slot_of: Mapping[str, int]):
        """Lower this constraint's partial check for one exact bound set.

        The plan compiler knows, for every depth of the enumeration
        order, precisely which of this constraint's labels are bound
        (``bound``).  The return value is one of

        * :data:`PARTIAL_VACUOUS` — the verdict is constant-true for
          this bound set, so the plan skips the check entirely (counted
          in ``SolverStats.evals_pruned``);
        * a callable ``fn(ctx, slots, view) -> bool`` — a specialized
          evaluator reading values straight out of the solver's slot
          list (``slots[slot_of[label]]``), agreeing with
          :meth:`partial_check` on every assignment binding exactly
          ``bound``;
        * ``None`` — no specialization; the plan wraps
          :meth:`partial_check` generically (never pruned).

        The default lowers the paper's ``c_k`` construction: vacuous
        until every label is bound, then :meth:`compile_check` (or a
        generic :meth:`check` wrapper).  Subclasses that override
        :meth:`partial_check` get ``None`` here unless they also
        override this method — an unmirrored custom partial verdict is
        never silently treated as vacuous.
        """
        if type(self).partial_check is not Constraint.partial_check:
            return None
        if not set(self.labels) <= bound:
            return PARTIAL_VACUOUS
        lowered = self.compile_check(slot_of)
        if lowered is not None:
            return lowered
        # Fully bound with no specialization: wrap check() directly —
        # the bound-set scan partial_check would repeat is already
        # decided at compile time.
        check = self.check

        def run(ctx, slots, view):
            return check(ctx, view)

        return run

    def compile_check(self, slot_of: Mapping[str, int]):
        """A slot-indexed ``fn(ctx, slots, view) -> bool`` agreeing with
        :meth:`check` on full assignments, or None for no
        specialization."""
        return None

    def structural_key(self):
        """A hashable identity for duplicate elimination, or None.

        Two constraints in one spec with equal keys must be
        semantically identical on full assignments of their labels —
        the plan compiler then evaluates only the first.  The default
        recognizes atoms stamped with a ``spec_atom`` tag (the ICSL
        loader's named predicates and flow atoms).
        """
        atom = getattr(self, "spec_atom", None)
        if atom is not None:
            try:
                hash(atom)
            except TypeError:
                return None  # e.g. flow atoms tag themselves with a dict
            return ("named", atom)
        return None

    def implied_structural_keys(self) -> tuple:
        """Keys of constraints this one logically implies when it holds
        on a full assignment (e.g. strict dominance implies dominance).
        A later conjunct whose key appears here is redundant once this
        one passed."""
        return ()

    # -- static analysis (the lint pass) --------------------------------------

    def label_kinds(self) -> tuple[tuple[str, str], ...]:
        """``(label, kind)`` requirements this constraint imposes.

        Kinds name positions in the lint pass's value-kind lattice
        (``repro.constraints.analysis.KIND_PARENT``): ``block``,
        ``value``, ``instruction``, ``constlike``, ``phi``, ``load``,
        ``store``, ``cmp`` — or ``any`` for no requirement.  A label may
        appear more than once; the analyzer meets all requirements and
        reports a conflict (ICSL003) when the meet is empty.  The
        default imposes nothing.
        """
        return ()

    def proposable_labels(self, bound: frozenset) -> frozenset:
        """Own labels :meth:`propose` is *guaranteed* to enumerate
        (return non-None) for, given exactly ``bound`` already bound.

        This is the static mirror of :meth:`propose` consumed by the
        lint pass's use-before-bind analysis (ICSL002): a depth whose
        label no conjunct guarantees to propose falls back to the full
        value universe at runtime.  Must underapproximate — never name
        a label ``propose`` could answer None for.
        """
        return frozenset()

    # -- composition sugar ----------------------------------------------------

    def __and__(self, other: "Constraint") -> "Constraint":
        from .logical import ConstraintAnd

        return ConstraintAnd(self, other)

    def __or__(self, other: "Constraint") -> "Constraint":
        from .logical import ConstraintOr

        return ConstraintOr(self, other)


class IdiomSpec:
    """A named idiom: an ordered label tuple plus its root constraint.

    The label order is the solver's enumeration order; §3.3 notes the
    choice "will be very important for the runtime behavior", so specs
    curate it explicitly (each label should be proposable from the
    labels before it).
    """

    def __init__(self, name: str, label_order: tuple[str, ...],
                 constraint: Constraint, base: "IdiomSpec | None" = None,
                 origin: tuple | None = None,
                 lint_ignores: "Mapping[str, tuple] | Iterable[str]" = ()):
        self.name = name
        self.label_order = tuple(label_order)
        self.constraint = constraint
        missing = set(constraint_labels(constraint)) - set(self.label_order)
        if missing:
            raise ValueError(
                f"spec {name!r}: labels {sorted(missing)} missing from order"
            )
        #: ``(path, line)`` of the defining ``idiom`` header, or None
        #: for specs built in Python (spans for lint diagnostics).
        self.origin = origin
        #: Spec-level lint suppressions: ``code -> (path, line)`` of the
        #: ``# lint: ignore[...]`` comment (None span for API specs).
        if isinstance(lint_ignores, Mapping):
            self.lint_ignores = dict(lint_ignores)
        else:
            self.lint_ignores = {code: None for code in lint_ignores}
        #: The spec named by ``extends`` in ICSL, regardless of whether
        #: the current enumeration order still permits prefix replay.
        #: The plan engine consults this for *partial*-prefix reuse
        #: when a reorder broke the full-prefix property.
        self.declared_base = base
        #: The spec this one extends (``extends`` in ICSL).  When the
        #: extension's label order starts with the base's and the base's
        #: conjunct objects are reused verbatim, the solver can replay
        #: the base's solved prefix instead of re-enumerating it (see
        #: :class:`~repro.constraints.solver.SharedSolverCache`).
        self.base = base if base is not None and self._extends(base) else None

    def _extends(self, base: "IdiomSpec") -> bool:
        """Whether this spec's enumeration order starts with ``base``'s."""
        n = len(base.label_order)
        return (
            len(self.label_order) > n and self.label_order[:n] == base.label_order
        )

    def shared_prefix_len(self) -> int:
        """Length of the label-order prefix shared with the declared
        base — the depth at which the plan engine's partial-prefix trie
        can splice in the base's solved frontier.  Zero when there is
        no declared base or the orders diverge immediately; equals the
        base's full order length exactly when :attr:`base` is set."""
        base = self.declared_base
        if base is None:
            return 0
        n = 0
        for mine, theirs in zip(self.label_order, base.label_order):
            if mine != theirs:
                break
            n += 1
        return n

    def reordered(self, label_order: tuple[str, ...]) -> "IdiomSpec":
        """The same spec with a different enumeration order (ablation).

        The declared base travels along: an order that restores (or
        keeps) the base's prefix re-enables full replay, one that
        merely shares a shorter prefix leaves the plan engine its
        partial-prefix trie.
        """
        return IdiomSpec(self.name, label_order, self.constraint,
                         base=self.declared_base, origin=self.origin,
                         lint_ignores=self.lint_ignores)


def top_level_conjuncts(constraint: Constraint) -> list[Constraint]:
    """The spec's top-level conjunct list — its root And's children, or
    the root itself.  One definition shared by the interpreted engine,
    the plan compiler, the ICSL ``extends`` loader and the lint pass, so
    "conjunct index i" means the same thing everywhere."""
    from .logical import ConstraintAnd

    if isinstance(constraint, ConstraintAnd):
        return list(constraint.children)
    return [constraint]


def constraint_labels(constraint: Constraint) -> set[str]:
    """All labels mentioned anywhere in a constraint tree."""
    from .logical import ConstraintAnd, ConstraintOr

    if isinstance(constraint, (ConstraintAnd, ConstraintOr)):
        result: set[str] = set()
        for child in constraint.children:
            result |= constraint_labels(child)
        return result
    return set(constraint.labels)
