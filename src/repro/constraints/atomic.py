"""Atomic constraints — the vocabulary of Fig. 5 and Fig. 7.

Each atom checks one structural fact about bound values and, where
possible, *proposes* candidates for unbound labels from bound ones —
e.g. ``CFGEdge`` proposes successors of a bound source block.  Good
proposals are what make the backtracking search near-linear in
practice (§3.3).
"""

from __future__ import annotations

from ..ir.block import BasicBlock
from ..ir.instructions import BranchInst, Instruction, PhiInst
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .core import Assignment, Constraint, SolverContext


class CFGEdge(Constraint):
    """Control can flow directly from block ``a`` to block ``b``."""

    def __init__(self, a: str, b: str):
        self.labels = (a, b)

    def check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        a = assignment[self.labels[0]]
        b = assignment[self.labels[1]]
        if not isinstance(a, BasicBlock) or not isinstance(b, BasicBlock):
            return False
        return ctx.cfg.has_edge(a, b)

    def propose(self, ctx, assignment, label):
        a_label, b_label = self.labels
        if label == b_label and a_label in assignment:
            source = assignment[a_label]
            if isinstance(source, BasicBlock):
                return ctx.cfg.successors.get(source, [])
            return []
        if label == a_label and b_label in assignment:
            target = assignment[b_label]
            if isinstance(target, BasicBlock):
                return ctx.cfg.predecessors.get(target, [])
            return []
        if label in self.labels:
            return ctx.blocks()
        return None


class EndsInUncondBranch(Constraint):
    """Block ``block`` terminates in ``br target`` — Fig. 5's
    ``x = branch(y)``."""

    def __init__(self, block: str, target: str):
        self.labels = (block, target)

    @staticmethod
    def _target_of(block: Value) -> BasicBlock | None:
        if not isinstance(block, BasicBlock):
            return None
        terminator = block.terminator
        if isinstance(terminator, BranchInst) and not terminator.is_conditional:
            return terminator.targets()[0]
        return None

    def check(self, ctx, assignment):
        target = self._target_of(assignment[self.labels[0]])
        return target is not None and target is assignment[self.labels[1]]

    def propose(self, ctx, assignment, label):
        block_label, target_label = self.labels
        if label == target_label and block_label in assignment:
            target = self._target_of(assignment[block_label])
            return [] if target is None else [target]
        if label == block_label:
            if target_label in assignment:
                wanted = assignment[target_label]
                return [
                    b for b in ctx.blocks() if self._target_of(b) is wanted
                ]
            return [b for b in ctx.blocks() if self._target_of(b) is not None]
        return None


class EndsInCondBranch(Constraint):
    """Block ends in ``br cond, then, els`` — Fig. 5's
    ``x = branch(y, z, w)``."""

    def __init__(self, block: str, cond: str, then: str, els: str):
        self.labels = (block, cond, then, els)

    @staticmethod
    def _parts(block: Value):
        if not isinstance(block, BasicBlock):
            return None
        terminator = block.terminator
        if isinstance(terminator, BranchInst) and terminator.is_conditional:
            then_block, else_block = terminator.targets()
            return terminator.condition, then_block, else_block
        return None

    def check(self, ctx, assignment):
        parts = self._parts(assignment[self.labels[0]])
        if parts is None:
            return False
        return all(
            parts[i] is assignment[self.labels[i + 1]] for i in range(3)
        )

    def propose(self, ctx, assignment, label):
        block_label = self.labels[0]
        if label == block_label:
            candidates = [b for b in ctx.blocks() if self._parts(b)]
            for i in range(3):
                bound = assignment.get(self.labels[i + 1])
                if bound is not None:
                    candidates = [
                        b for b in candidates if self._parts(b)[i] is bound
                    ]
            return candidates
        if label in self.labels[1:] and block_label in assignment:
            parts = self._parts(assignment[block_label])
            if parts is None:
                return []
            return [parts[self.labels.index(label) - 1]]
        return None


class Dominates(Constraint):
    """Block ``a`` dominates block ``b`` in the CFG."""

    strict = False
    post = False

    def __init__(self, a: str, b: str):
        self.labels = (a, b)

    def _tree(self, ctx: SolverContext):
        return ctx.postdom if self.post else ctx.dom

    def check(self, ctx, assignment):
        a = assignment[self.labels[0]]
        b = assignment[self.labels[1]]
        if not isinstance(a, BasicBlock) or not isinstance(b, BasicBlock):
            return False
        tree = self._tree(ctx)
        if self.strict:
            return tree.strictly_dominates(a, b)
        return tree.dominates(a, b)

    def propose(self, ctx, assignment, label):
        if label in self.labels:
            return ctx.blocks()
        return None


class StrictlyDominates(Dominates):
    """Strict dominance."""

    strict = True


class PostDominates(Dominates):
    """Post-dominance (dominance in the reversed CFG)."""

    post = True


class StrictlyPostDominates(Dominates):
    """Strict post-dominance."""

    strict = True
    post = True


class Blocked(Constraint):
    """Every CFG path from ``a`` to ``c`` passes through ``via`` —
    Fig. 7's ``ConstraintCFGBlocked``."""

    def __init__(self, a: str, via: str, c: str):
        self.labels = (a, via, c)

    def check(self, ctx, assignment):
        a = assignment[self.labels[0]]
        via = assignment[self.labels[1]]
        c = assignment[self.labels[2]]
        if not all(isinstance(x, BasicBlock) for x in (a, via, c)):
            return False
        return not ctx.cfg.path_exists_avoiding(a, c, via)


class SESERegion(Constraint):
    """``begin`` and ``end`` span a single-entry single-exit region —
    the ``sese`` arrow of Fig. 5."""

    def __init__(self, begin: str, end: str):
        self.labels = (begin, end)

    def check(self, ctx, assignment):
        begin = assignment[self.labels[0]]
        end = assignment[self.labels[1]]
        if not isinstance(begin, BasicBlock) or not isinstance(end, BasicBlock):
            return False
        return ctx.dom.dominates(begin, end) and ctx.postdom.dominates(
            end, begin
        )

    def propose(self, ctx, assignment, label):
        if label in self.labels:
            return ctx.blocks()
        return None


class Opcode(Constraint):
    """``x`` is an instruction with one of the given opcodes, with
    optional operand labels: ``Opcode("x", "add", ("y", "z"))`` is
    Fig. 5's ``x = add(y, z)``.

    ``commutative`` allows the two operand labels to match in either
    order (used for ``add`` and for ``int_comparison``).
    """

    def __init__(
        self,
        x: str,
        opcodes: str | tuple[str, ...],
        operands: tuple[str | None, ...] = (),
        commutative: bool = False,
    ):
        self.opcodes = (opcodes,) if isinstance(opcodes, str) else tuple(opcodes)
        self.operand_labels = tuple(operands)
        self.commutative = commutative and len(self.operand_labels) == 2
        labels = [x]
        labels.extend(l for l in self.operand_labels if l is not None)
        self.labels = tuple(dict.fromkeys(labels))
        self.x_label = x

    def _instruction(self, assignment) -> Instruction | None:
        x = assignment[self.x_label]
        if isinstance(x, Instruction) and x.opcode in self.opcodes:
            return x
        return None

    def _operand_match(self, instruction: Instruction, assignment) -> bool:
        operands = instruction.operands
        if self.operand_labels and len(operands) < len(self.operand_labels):
            return False
        orders = [self.operand_labels]
        if self.commutative:
            orders.append(tuple(reversed(self.operand_labels)))
        for order in orders:
            if all(
                label is None or label not in assignment
                or operands[i] is assignment[label]
                for i, label in enumerate(order)
            ):
                return True
        return False

    def check(self, ctx, assignment):
        instruction = self._instruction(assignment)
        if instruction is None:
            return False
        return self._operand_match(instruction, assignment)

    def partial_check(self, ctx, assignment):
        if self.x_label not in assignment:
            return True
        instruction = self._instruction(assignment)
        if instruction is None:
            return False
        return self._operand_match(instruction, assignment)

    def propose(self, ctx, assignment, label):
        if label == self.x_label:
            candidates: list[Value] = []
            for opcode in self.opcodes:
                candidates.extend(ctx.instructions_with_opcode(opcode))
            return [
                c
                for c in candidates
                if self._operand_match(c, assignment)
            ]
        if label in self.operand_labels and self.x_label in assignment:
            instruction = self._instruction(assignment)
            if instruction is None:
                return []
            positions = [
                i for i, l in enumerate(self.operand_labels) if l == label
            ]
            if self.commutative:
                positions = [0, 1]
            operands = instruction.operands
            return [operands[i] for i in positions if i < len(operands)]
        return None


class PhiOfTwo(Constraint):
    """``x = Φ(a, b)``: a PHI with exactly two incoming values, matching
    ``a`` and ``b`` in either order (Fig. 5's iterator constraint)."""

    def __init__(self, x: str, a: str, b: str):
        self.labels = (x, a, b)

    def check(self, ctx, assignment):
        x = assignment[self.labels[0]]
        if not isinstance(x, PhiInst) or len(x.incoming) != 2:
            return False
        values = x.incoming_values()
        a = assignment[self.labels[1]]
        b = assignment[self.labels[2]]
        return (values[0] is a and values[1] is b) or (
            values[0] is b and values[1] is a
        )

    def partial_check(self, ctx, assignment):
        x = assignment.get(self.labels[0])
        if x is None:
            return True
        if not isinstance(x, PhiInst) or len(x.incoming) != 2:
            return False
        if all(label in assignment for label in self.labels[1:]):
            # Fully bound: the verdict must be exact — the solver never
            # re-walks the tree with check(), so a weaker answer here
            # would admit Φ(a, a) against a Φ(t, 0) instruction.
            return self.check(ctx, assignment)
        values = x.incoming_values()
        for label in self.labels[1:]:
            bound = assignment.get(label)
            if bound is not None and bound not in values:
                return False
        return True

    def propose(self, ctx, assignment, label):
        x_label, a_label, b_label = self.labels
        if label == x_label:
            return [
                p
                for p in ctx.instructions_with_opcode("phi")
                if len(p.incoming) == 2
            ]
        if x_label in assignment:
            x = assignment[x_label]
            if isinstance(x, PhiInst) and len(x.incoming) == 2:
                return x.incoming_values()
            return []
        return None


class PhiIncomingFromBlock(Constraint):
    """The PHI ``phi`` receives ``value`` from predecessor ``block``."""

    def __init__(self, phi: str, value: str, block: str):
        self.labels = (phi, value, block)

    def check(self, ctx, assignment):
        phi = assignment[self.labels[0]]
        if not isinstance(phi, PhiInst):
            return False
        value = assignment[self.labels[1]]
        block = assignment[self.labels[2]]
        return any(
            v is value and b is block for v, b in phi.incoming
        )

    def propose(self, ctx, assignment, label):
        phi_label, value_label, block_label = self.labels
        phi = assignment.get(phi_label)
        if label == phi_label:
            return ctx.instructions_with_opcode("phi")
        if not isinstance(phi, PhiInst):
            return None
        if label == value_label:
            block = assignment.get(block_label)
            if block is not None:
                return [v for v, b in phi.incoming if b is block]
            return phi.incoming_values()
        if label == block_label:
            value = assignment.get(value_label)
            if value is not None:
                return [b for v, b in phi.incoming if v is value]
            return [b for _, b in phi.incoming]
        return None


class InBlock(Constraint):
    """Instruction ``x`` lives in block ``block``."""

    def __init__(self, x: str, block: str):
        self.labels = (x, block)

    def check(self, ctx, assignment):
        x = assignment[self.labels[0]]
        block = assignment[self.labels[1]]
        return isinstance(x, Instruction) and x.parent is block

    def propose(self, ctx, assignment, label):
        x_label, block_label = self.labels
        if label == block_label and x_label in assignment:
            x = assignment[x_label]
            if isinstance(x, Instruction) and x.parent is not None:
                return [x.parent]
            return []
        if label == x_label and block_label in assignment:
            block = assignment[block_label]
            if isinstance(block, BasicBlock):
                return list(block.instructions)
            return []
        return None


class IsConstantLike(Constraint):
    """``x ∈ constant`` from Fig. 5: a compile-time constant, function
    argument or global — anything fixed before the function runs."""

    def __init__(self, x: str):
        self.labels = (x,)

    def check(self, ctx, assignment):
        x = assignment[self.labels[0]]
        return isinstance(x, (Constant, Argument, GlobalVariable))

    def propose(self, ctx, assignment, label):
        if label == self.labels[0]:
            return [
                v
                for v in ctx.universe
                if isinstance(v, (Constant, Argument, GlobalVariable))
            ]
        return None


class DefDominatesBlock(Constraint):
    """``x`` is an instruction whose defining block dominates ``block``
    — Fig. 5's ``x dominate→ entry`` loop-invariance condition."""

    def __init__(self, x: str, block: str):
        self.labels = (x, block)

    def check(self, ctx, assignment):
        x = assignment[self.labels[0]]
        block = assignment[self.labels[1]]
        if not isinstance(x, Instruction) or not isinstance(block, BasicBlock):
            return False
        return x.parent is not None and ctx.dom.dominates(x.parent, block)


class Distinct(Constraint):
    """All bound labels take pairwise distinct values."""

    def __init__(self, *labels: str):
        self.labels = tuple(labels)

    def check(self, ctx, assignment):
        values = [assignment[l] for l in self.labels]
        return len({id(v) for v in values}) == len(values)

    def partial_check(self, ctx, assignment):
        values = [assignment[l] for l in self.labels if l in assignment]
        return len({id(v) for v in values}) == len(values)


class Predicate(Constraint):
    """Escape hatch: an arbitrary Python predicate over bound labels.

    Used by idiom specifications for conditions that are cheap to state
    in Python (e.g. "the bound header actually heads a natural loop").
    """

    def __init__(self, labels: tuple[str, ...], fn, name: str = "predicate"):
        self.labels = tuple(labels)
        self.fn = fn
        self.name = name

    def check(self, ctx, assignment):
        return bool(self.fn(ctx, assignment))

    def __repr__(self) -> str:
        return f"<Predicate {self.name}>"
