"""Atomic constraints — the vocabulary of Fig. 5 and Fig. 7.

Each atom checks one structural fact about bound values and, where
possible, *proposes* candidates for unbound labels from bound ones —
e.g. ``CFGEdge`` proposes successors of a bound source block.  Good
proposals are what make the backtracking search near-linear in
practice (§3.3).
"""

from __future__ import annotations

from ..ir.block import BasicBlock
from ..ir.instructions import BranchInst, Instruction, PhiInst
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .core import PARTIAL_VACUOUS, Assignment, Constraint, SolverContext


def _universe_opcode_codes(ctx, np):
    """Per-context opcode code table over ``ctx.universe`` for numpy
    batch filtering: an int32 array (one entry per universe value, -1
    for non-instructions) plus the opcode → code index.  Built once per
    context on first use and cached on it."""
    cached = getattr(ctx, "_plan_opcode_codes", None)
    if cached is None:
        index: dict[str, int] = {}
        rows = []
        for value in ctx.universe:
            if isinstance(value, Instruction):
                code = index.setdefault(value.opcode, len(index))
            else:
                code = -1
            rows.append(code)
        cached = (np.asarray(rows, dtype=np.int32), index)
        ctx._plan_opcode_codes = cached
    return cached


def _universe_constlike_mask(ctx, np):
    """Per-context boolean mask of constant-like universe values."""
    cached = getattr(ctx, "_plan_constlike_mask", None)
    if cached is None:
        cached = np.fromiter(
            (
                isinstance(v, (Constant, Argument, GlobalVariable))
                for v in ctx.universe
            ),
            dtype=bool,
            count=len(ctx.universe),
        )
        ctx._plan_constlike_mask = cached
    return cached


class CFGEdge(Constraint):
    """Control can flow directly from block ``a`` to block ``b``."""

    def __init__(self, a: str, b: str):
        self.labels = (a, b)

    def check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        a = assignment[self.labels[0]]
        b = assignment[self.labels[1]]
        if not isinstance(a, BasicBlock) or not isinstance(b, BasicBlock):
            return False
        return ctx.cfg.has_edge(a, b)

    def compile_check(self, slot_of):
        sa, sb = slot_of[self.labels[0]], slot_of[self.labels[1]]

        def run(ctx, slots, view):
            a = slots[sa]
            b = slots[sb]
            if not isinstance(a, BasicBlock) or not isinstance(b, BasicBlock):
                return False
            return ctx.cfg.has_edge(a, b)

        return run

    def structural_key(self):
        return ("cfg_edge", self.labels)

    def propose(self, ctx, assignment, label):
        a_label, b_label = self.labels
        if label == b_label and a_label in assignment:
            source = assignment[a_label]
            if isinstance(source, BasicBlock):
                return ctx.cfg.successors.get(source, [])
            return []
        if label == a_label and b_label in assignment:
            target = assignment[b_label]
            if isinstance(target, BasicBlock):
                return ctx.cfg.predecessors.get(target, [])
            return []
        if label in self.labels:
            return ctx.blocks()
        return None

    def propose_implies_partial(self, bound, label):
        # With the other endpoint bound the proposals are exactly the
        # successors/predecessors — every candidate closes the edge.
        a, b = self.labels
        return (label == b and a in bound) or (label == a and b in bound)

    def label_kinds(self):
        return tuple((label, "block") for label in self.labels)

    def proposable_labels(self, bound):
        return frozenset(self.labels)


class EndsInUncondBranch(Constraint):
    """Block ``block`` terminates in ``br target`` — Fig. 5's
    ``x = branch(y)``."""

    def __init__(self, block: str, target: str):
        self.labels = (block, target)

    @staticmethod
    def _target_of(block: Value) -> BasicBlock | None:
        if not isinstance(block, BasicBlock):
            return None
        terminator = block.terminator
        if isinstance(terminator, BranchInst) and not terminator.is_conditional:
            return terminator.targets()[0]
        return None

    def check(self, ctx, assignment):
        target = self._target_of(assignment[self.labels[0]])
        return target is not None and target is assignment[self.labels[1]]

    def compile_check(self, slot_of):
        sb, st = slot_of[self.labels[0]], slot_of[self.labels[1]]
        target_of = self._target_of

        def run(ctx, slots, view):
            target = target_of(slots[sb])
            return target is not None and target is slots[st]

        return run

    def structural_key(self):
        return ("uncond_branch", self.labels)

    def propose(self, ctx, assignment, label):
        block_label, target_label = self.labels
        if label == target_label and block_label in assignment:
            target = self._target_of(assignment[block_label])
            return [] if target is None else [target]
        if label == block_label:
            if target_label in assignment:
                wanted = assignment[target_label]
                return [
                    b for b in ctx.blocks() if self._target_of(b) is wanted
                ]
            return [b for b in ctx.blocks() if self._target_of(b) is not None]
        return None

    def propose_implies_partial(self, bound, label):
        # Either direction proposes only values satisfying the check
        # once the other label is bound (the branch target is unique).
        block, target = self.labels
        return (label == target and block in bound) or (
            label == block and target in bound
        )

    def label_kinds(self):
        return tuple((label, "block") for label in self.labels)

    def proposable_labels(self, bound):
        block, target = self.labels
        proposable = {block}
        if block in bound:
            proposable.add(target)
        return frozenset(proposable)


class EndsInCondBranch(Constraint):
    """Block ends in ``br cond, then, els`` — Fig. 5's
    ``x = branch(y, z, w)``."""

    def __init__(self, block: str, cond: str, then: str, els: str):
        self.labels = (block, cond, then, els)

    @staticmethod
    def _parts(block: Value):
        if not isinstance(block, BasicBlock):
            return None
        terminator = block.terminator
        if isinstance(terminator, BranchInst) and terminator.is_conditional:
            then_block, else_block = terminator.targets()
            return terminator.condition, then_block, else_block
        return None

    def check(self, ctx, assignment):
        parts = self._parts(assignment[self.labels[0]])
        if parts is None:
            return False
        return all(
            parts[i] is assignment[self.labels[i + 1]] for i in range(3)
        )

    def compile_check(self, slot_of):
        sb = slot_of[self.labels[0]]
        s1, s2, s3 = (slot_of[self.labels[i]] for i in (1, 2, 3))
        parts_of = self._parts

        def run(ctx, slots, view):
            parts = parts_of(slots[sb])
            if parts is None:
                return False
            return (
                parts[0] is slots[s1]
                and parts[1] is slots[s2]
                and parts[2] is slots[s3]
            )

        return run

    def structural_key(self):
        return ("cond_branch", self.labels)

    def propose(self, ctx, assignment, label):
        block_label = self.labels[0]
        if label == block_label:
            candidates = [b for b in ctx.blocks() if self._parts(b)]
            for i in range(3):
                bound = assignment.get(self.labels[i + 1])
                if bound is not None:
                    candidates = [
                        b for b in candidates if self._parts(b)[i] is bound
                    ]
            return candidates
        if label in self.labels[1:] and block_label in assignment:
            parts = self._parts(assignment[block_label])
            if parts is None:
                return []
            return [parts[self.labels.index(label) - 1]]
        return None

    def propose_implies_partial(self, bound, label):
        # Block proposals are filtered against every bound part; a
        # proposed part (cond/then/else) is NOT filtered against the
        # other bound parts, so only the block direction is implied.
        return label == self.labels[0]

    def label_kinds(self):
        block, cond, then, els = self.labels
        return (
            (block, "block"), (cond, "value"),
            (then, "block"), (els, "block"),
        )

    def proposable_labels(self, bound):
        proposable = {self.labels[0]}
        if self.labels[0] in bound:
            proposable.update(self.labels[1:])
        return frozenset(proposable)


class Dominates(Constraint):
    """Block ``a`` dominates block ``b`` in the CFG."""

    strict = False
    post = False

    def __init__(self, a: str, b: str):
        self.labels = (a, b)

    def _tree(self, ctx: SolverContext):
        return ctx.postdom if self.post else ctx.dom

    def check(self, ctx, assignment):
        a = assignment[self.labels[0]]
        b = assignment[self.labels[1]]
        if not isinstance(a, BasicBlock) or not isinstance(b, BasicBlock):
            return False
        tree = self._tree(ctx)
        if self.strict:
            return tree.strictly_dominates(a, b)
        return tree.dominates(a, b)

    def compile_check(self, slot_of):
        sa, sb = slot_of[self.labels[0]], slot_of[self.labels[1]]
        strict, post = self.strict, self.post

        def run(ctx, slots, view):
            a = slots[sa]
            b = slots[sb]
            if not isinstance(a, BasicBlock) or not isinstance(b, BasicBlock):
                return False
            tree = ctx.postdom if post else ctx.dom
            if strict:
                return tree.strictly_dominates(a, b)
            return tree.dominates(a, b)

        return run

    def structural_key(self):
        return ("dom", self.strict, self.post, self.labels)

    def implied_structural_keys(self):
        if self.strict:
            # Strict (post-)dominance implies the non-strict relation
            # on the same labels.
            return (("dom", False, self.post, self.labels),)
        return ()

    def propose(self, ctx, assignment, label):
        if label in self.labels:
            return ctx.blocks()
        return None

    def label_kinds(self):
        return tuple((label, "block") for label in self.labels)

    def proposable_labels(self, bound):
        return frozenset(self.labels)


class StrictlyDominates(Dominates):
    """Strict dominance."""

    strict = True


class PostDominates(Dominates):
    """Post-dominance (dominance in the reversed CFG)."""

    post = True


class StrictlyPostDominates(Dominates):
    """Strict post-dominance."""

    strict = True
    post = True


class Blocked(Constraint):
    """Every CFG path from ``a`` to ``c`` passes through ``via`` —
    Fig. 7's ``ConstraintCFGBlocked``."""

    def __init__(self, a: str, via: str, c: str):
        self.labels = (a, via, c)

    def check(self, ctx, assignment):
        a = assignment[self.labels[0]]
        via = assignment[self.labels[1]]
        c = assignment[self.labels[2]]
        if not all(isinstance(x, BasicBlock) for x in (a, via, c)):
            return False
        return not ctx.cfg.path_exists_avoiding(a, c, via)

    def compile_check(self, slot_of):
        sa = slot_of[self.labels[0]]
        sv = slot_of[self.labels[1]]
        sc = slot_of[self.labels[2]]

        def run(ctx, slots, view):
            a, via, c = slots[sa], slots[sv], slots[sc]
            if (
                not isinstance(a, BasicBlock)
                or not isinstance(via, BasicBlock)
                or not isinstance(c, BasicBlock)
            ):
                return False
            return not ctx.cfg.path_exists_avoiding(a, c, via)

        return run

    def structural_key(self):
        return ("blocked", self.labels)

    def label_kinds(self):
        return tuple((label, "block") for label in self.labels)


class SESERegion(Constraint):
    """``begin`` and ``end`` span a single-entry single-exit region —
    the ``sese`` arrow of Fig. 5."""

    def __init__(self, begin: str, end: str):
        self.labels = (begin, end)

    def check(self, ctx, assignment):
        begin = assignment[self.labels[0]]
        end = assignment[self.labels[1]]
        if not isinstance(begin, BasicBlock) or not isinstance(end, BasicBlock):
            return False
        return ctx.dom.dominates(begin, end) and ctx.postdom.dominates(
            end, begin
        )

    def compile_check(self, slot_of):
        sb, se = slot_of[self.labels[0]], slot_of[self.labels[1]]

        def run(ctx, slots, view):
            begin = slots[sb]
            end = slots[se]
            if not isinstance(begin, BasicBlock) or not isinstance(
                end, BasicBlock
            ):
                return False
            return ctx.dom.dominates(begin, end) and ctx.postdom.dominates(
                end, begin
            )

        return run

    def structural_key(self):
        return ("sese", self.labels)

    def implied_structural_keys(self):
        # sese(begin, end) ⇔ begin dominates end ∧ end post-dominates
        # begin: both dominance conjuncts are redundant after it.
        begin, end = self.labels
        return (
            ("dom", False, False, (begin, end)),
            ("dom", False, True, (end, begin)),
        )

    def propose(self, ctx, assignment, label):
        if label in self.labels:
            return ctx.blocks()
        return None

    def label_kinds(self):
        return tuple((label, "block") for label in self.labels)

    def proposable_labels(self, bound):
        return frozenset(self.labels)


class Opcode(Constraint):
    """``x`` is an instruction with one of the given opcodes, with
    optional operand labels: ``Opcode("x", "add", ("y", "z"))`` is
    Fig. 5's ``x = add(y, z)``.

    ``commutative`` allows the two operand labels to match in either
    order (used for ``add`` and for ``int_comparison``).
    """

    def __init__(
        self,
        x: str,
        opcodes: str | tuple[str, ...],
        operands: tuple[str | None, ...] = (),
        commutative: bool = False,
    ):
        self.opcodes = (opcodes,) if isinstance(opcodes, str) else tuple(opcodes)
        self.operand_labels = tuple(operands)
        self.commutative = commutative and len(self.operand_labels) == 2
        labels = [x]
        labels.extend(l for l in self.operand_labels if l is not None)
        self.labels = tuple(dict.fromkeys(labels))
        self.x_label = x

    def _instruction(self, assignment) -> Instruction | None:
        x = assignment[self.x_label]
        if isinstance(x, Instruction) and x.opcode in self.opcodes:
            return x
        return None

    def _operand_match(self, instruction: Instruction, assignment) -> bool:
        operands = instruction.operands
        if self.operand_labels and len(operands) < len(self.operand_labels):
            return False
        orders = [self.operand_labels]
        if self.commutative:
            orders.append(tuple(reversed(self.operand_labels)))
        for order in orders:
            if all(
                label is None or label not in assignment
                or operands[i] is assignment[label]
                for i, label in enumerate(order)
            ):
                return True
        return False

    def check(self, ctx, assignment):
        instruction = self._instruction(assignment)
        if instruction is None:
            return False
        return self._operand_match(instruction, assignment)

    def partial_check(self, ctx, assignment):
        if self.x_label not in assignment:
            return True
        instruction = self._instruction(assignment)
        if instruction is None:
            return False
        return self._operand_match(instruction, assignment)

    def compile_partial(self, bound, slot_of):
        # Mirrors partial_check for the exact bound set: vacuous until
        # x binds, then opcode membership plus the operand restriction
        # over whichever operand labels are bound.
        if self.x_label not in bound:
            return PARTIAL_VACUOUS
        x_slot = slot_of[self.x_label]
        opcodes = self.opcodes
        only = opcodes[0] if len(opcodes) == 1 else None
        orders = [self.operand_labels]
        if self.commutative:
            orders.append(tuple(reversed(self.operand_labels)))
        compiled_orders = tuple(
            tuple(
                (i, slot_of[l])
                for i, l in enumerate(order)
                if l is not None and l in bound
            )
            for order in orders
        )
        nops = len(self.operand_labels)

        def run(ctx, slots, view):
            x = slots[x_slot]
            if not isinstance(x, Instruction):
                return False
            if only is not None:
                if x.opcode != only:
                    return False
            elif x.opcode not in opcodes:
                return False
            # In-place operand list: the public .operands copies to a
            # tuple on every access, too costly per candidate.
            operands = x._operands
            if nops and len(operands) < nops:
                return False
            for pairs in compiled_orders:
                for i, slot in pairs:
                    if operands[i] is not slots[slot]:
                        break
                else:
                    return True
            return False

        return run

    def structural_key(self):
        return (
            "opcode",
            self.x_label,
            self.opcodes,
            self.operand_labels,
            self.commutative,
        )

    def compile_batch_filter(self, new_label):
        """A universe-wide opcode-membership mask when ``new_label`` is
        the instruction label: a candidate outside the mask is certain
        to fail this atom's check, so the plan engine may reject it in
        bulk.  Conservative — survivors still run the full check."""
        if new_label != self.x_label:
            return None
        opcodes = self.opcodes

        def mask(ctx, np):
            codes, index = _universe_opcode_codes(ctx, np)
            wanted = [index[o] for o in opcodes if o in index]
            if not wanted:
                return np.zeros(len(codes), dtype=bool)
            m = codes == wanted[0]
            for code in wanted[1:]:
                m |= codes == code
            return m

        return mask

    def propose(self, ctx, assignment, label):
        if label == self.x_label:
            candidates: list[Value] = []
            for opcode in self.opcodes:
                candidates.extend(ctx.instructions_with_opcode(opcode))
            return [
                c
                for c in candidates
                if self._operand_match(c, assignment)
            ]
        if label in self.operand_labels and self.x_label in assignment:
            instruction = self._instruction(assignment)
            if instruction is None:
                return []
            positions = [
                i for i, l in enumerate(self.operand_labels) if l == label
            ]
            if self.commutative:
                positions = [0, 1]
            operands = instruction.operands
            return [operands[i] for i in positions if i < len(operands)]
        return None

    def propose_implies_partial(self, bound, label):
        if label == self.x_label:
            # Instruction proposals replay the partial check verbatim
            # (opcode membership + operand match over the same bound
            # labels) — unless x itself names an operand slot, which
            # only the check-time assignment constrains.
            return self.x_label not in self.operand_labels
        if self.x_label not in bound or label not in self.operand_labels:
            return False
        if self.operand_labels.count(label) != 1:
            # A label at several positions must match all of them;
            # propose offers each position's value independently.
            return False
        if self.commutative:
            # With another operand already matched in one of the two
            # orders, a proposed value can still clash in both.
            return not any(
                l is not None and l != label and l in bound
                for l in self.operand_labels
            )
        return True

    #: The kind each opcode pins its instruction label to; anything
    #: else is just "instruction".
    _OPCODE_KINDS = {
        "phi": "phi", "load": "load", "store": "store",
        "icmp": "cmp", "fcmp": "cmp",
    }

    def label_kinds(self):
        kinds = {
            self._OPCODE_KINDS.get(opcode, "instruction")
            for opcode in self.opcodes
        }
        x_kind = kinds.pop() if len(kinds) == 1 else "instruction"
        pairs = [(self.x_label, x_kind)]
        pairs.extend(
            (label, "value")
            for label in self.operand_labels
            if label is not None
        )
        return tuple(pairs)

    def proposable_labels(self, bound):
        proposable = {self.x_label}
        if self.x_label in bound:
            proposable.update(
                label for label in self.operand_labels if label is not None
            )
        return frozenset(proposable)


class PhiOfTwo(Constraint):
    """``x = Φ(a, b)``: a PHI with exactly two incoming values, matching
    ``a`` and ``b`` in either order (Fig. 5's iterator constraint)."""

    def __init__(self, x: str, a: str, b: str):
        self.labels = (x, a, b)

    def check(self, ctx, assignment):
        x = assignment[self.labels[0]]
        if not isinstance(x, PhiInst) or len(x.incoming) != 2:
            return False
        values = x.incoming_values()
        a = assignment[self.labels[1]]
        b = assignment[self.labels[2]]
        return (values[0] is a and values[1] is b) or (
            values[0] is b and values[1] is a
        )

    def partial_check(self, ctx, assignment):
        x = assignment.get(self.labels[0])
        if x is None:
            return True
        if not isinstance(x, PhiInst) or len(x.incoming) != 2:
            return False
        if all(label in assignment for label in self.labels[1:]):
            # Fully bound: the verdict must be exact — the solver never
            # re-walks the tree with check(), so a weaker answer here
            # would admit Φ(a, a) against a Φ(t, 0) instruction.
            return self.check(ctx, assignment)
        values = x.incoming_values()
        for label in self.labels[1:]:
            bound = assignment.get(label)
            if bound is not None and bound not in values:
                return False
        return True

    def compile_partial(self, bound, slot_of):
        if self.labels[0] not in bound:
            return PARTIAL_VACUOUS
        x_slot = slot_of[self.labels[0]]
        if all(label in bound for label in self.labels[1:]):
            sa, sb = slot_of[self.labels[1]], slot_of[self.labels[2]]

            def run_full(ctx, slots, view):
                x = slots[x_slot]
                # PHI operands interleave (value, block) pairs; four
                # operands ⇔ two incoming edges, values at 0 and 2.
                if not isinstance(x, PhiInst) or len(x._operands) != 4:
                    return False
                ops = x._operands
                v0, v1 = ops[0], ops[2]
                a = slots[sa]
                b = slots[sb]
                return (v0 is a and v1 is b) or (v0 is b and v1 is a)

            return run_full
        rest = tuple(
            slot_of[label] for label in self.labels[1:] if label in bound
        )

        def run(ctx, slots, view):
            x = slots[x_slot]
            if not isinstance(x, PhiInst) or len(x._operands) != 4:
                return False
            ops = x._operands
            v0, v1 = ops[0], ops[2]
            for slot in rest:
                value = slots[slot]
                if value is not v0 and value is not v1:
                    return False
            return True

        return run

    def structural_key(self):
        return ("phi_of_two", self.labels)

    def propose(self, ctx, assignment, label):
        x_label, a_label, b_label = self.labels
        if label == x_label:
            return [
                p
                for p in ctx.instructions_with_opcode("phi")
                if len(p.incoming) == 2
            ]
        if x_label in assignment:
            x = assignment[x_label]
            if isinstance(x, PhiInst) and len(x.incoming) == 2:
                return x.incoming_values()
            return []
        return None

    def propose_implies_partial(self, bound, label):
        x, a, b = self.labels
        if label == x:
            # Shape-only filtering: sound while neither incoming label
            # is bound (membership is not checked at propose time).
            return a not in bound and b not in bound
        if x not in bound:
            return False
        # Proposing one incoming value guarantees membership, but not
        # the exact pairing the full check demands once both are bound.
        other = b if label == a else a if label == b else None
        return other is not None and other not in bound

    def label_kinds(self):
        x, a, b = self.labels
        return ((x, "phi"), (a, "value"), (b, "value"))

    def proposable_labels(self, bound):
        if self.labels[0] in bound:
            return frozenset(self.labels)
        return frozenset((self.labels[0],))


class PhiIncomingFromBlock(Constraint):
    """The PHI ``phi`` receives ``value`` from predecessor ``block``."""

    def __init__(self, phi: str, value: str, block: str):
        self.labels = (phi, value, block)

    def check(self, ctx, assignment):
        phi = assignment[self.labels[0]]
        if not isinstance(phi, PhiInst):
            return False
        value = assignment[self.labels[1]]
        block = assignment[self.labels[2]]
        return any(
            v is value and b is block for v, b in phi.incoming
        )

    def compile_check(self, slot_of):
        sp, sv, sb = (slot_of[label] for label in self.labels)

        def run(ctx, slots, view):
            phi = slots[sp]
            if not isinstance(phi, PhiInst):
                return False
            value = slots[sv]
            block = slots[sb]
            # Interleaved (value, block) operand pairs, scanned in place.
            ops = phi._operands
            for i in range(0, len(ops), 2):
                if ops[i] is value and ops[i + 1] is block:
                    return True
            return False

        return run

    def structural_key(self):
        return ("phi_incoming", self.labels)

    def propose(self, ctx, assignment, label):
        phi_label, value_label, block_label = self.labels
        phi = assignment.get(phi_label)
        if label == phi_label:
            return ctx.instructions_with_opcode("phi")
        if phi is None:
            return None
        if not isinstance(phi, PhiInst):
            # Bound to a non-PHI: nothing can ever satisfy this atom,
            # so propose the empty set rather than abstaining.
            return []
        if label == value_label:
            block = assignment.get(block_label)
            if block is not None:
                return [v for v, b in phi.incoming if b is block]
            return phi.incoming_values()
        if label == block_label:
            value = assignment.get(value_label)
            if value is not None:
                return [b for v, b in phi.incoming if v is value]
            return [b for _, b in phi.incoming]
        return None

    def propose_implies_partial(self, bound, label):
        # Value/block proposals filtered by the other bound component
        # enumerate exactly the satisfying incoming entries.  The check
        # only fires once all three labels are bound, so the remaining
        # patterns stay vacuous anyway.
        phi, value, block = self.labels
        if label == value:
            return phi in bound and block in bound
        if label == block:
            return phi in bound and value in bound
        return False

    def label_kinds(self):
        phi, value, block = self.labels
        return ((phi, "phi"), (value, "value"), (block, "block"))

    def proposable_labels(self, bound):
        if self.labels[0] in bound:
            return frozenset(self.labels)
        return frozenset((self.labels[0],))


class InBlock(Constraint):
    """Instruction ``x`` lives in block ``block``."""

    def __init__(self, x: str, block: str):
        self.labels = (x, block)

    def check(self, ctx, assignment):
        x = assignment[self.labels[0]]
        block = assignment[self.labels[1]]
        return isinstance(x, Instruction) and x.parent is block

    def compile_check(self, slot_of):
        sx, sb = slot_of[self.labels[0]], slot_of[self.labels[1]]

        def run(ctx, slots, view):
            x = slots[sx]
            return isinstance(x, Instruction) and x.parent is slots[sb]

        return run

    def structural_key(self):
        return ("in_block", self.labels)

    def propose(self, ctx, assignment, label):
        x_label, block_label = self.labels
        if label == block_label and x_label in assignment:
            x = assignment[x_label]
            if isinstance(x, Instruction) and x.parent is not None:
                return [x.parent]
            return []
        if label == x_label and block_label in assignment:
            block = assignment[block_label]
            if isinstance(block, BasicBlock):
                return list(block.instructions)
            return []
        return None

    def propose_implies_partial(self, bound, label):
        # Either direction proposes exactly the members/parent.
        x, block = self.labels
        return (label == block and x in bound) or (
            label == x and block in bound
        )

    def label_kinds(self):
        x, block = self.labels
        return ((x, "instruction"), (block, "block"))

    def proposable_labels(self, bound):
        x, block = self.labels
        proposable = set()
        if x in bound:
            proposable.add(block)
        if block in bound:
            proposable.add(x)
        return frozenset(proposable)


class IsConstantLike(Constraint):
    """``x ∈ constant`` from Fig. 5: a compile-time constant, function
    argument or global — anything fixed before the function runs."""

    def __init__(self, x: str):
        self.labels = (x,)

    def check(self, ctx, assignment):
        x = assignment[self.labels[0]]
        return isinstance(x, (Constant, Argument, GlobalVariable))

    def compile_check(self, slot_of):
        sx = slot_of[self.labels[0]]

        def run(ctx, slots, view):
            return isinstance(
                slots[sx], (Constant, Argument, GlobalVariable)
            )

        return run

    def structural_key(self):
        return ("constlike", self.labels)

    def compile_batch_filter(self, new_label):
        if new_label != self.labels[0]:
            return None

        def mask(ctx, np):
            return _universe_constlike_mask(ctx, np)

        return mask

    def propose(self, ctx, assignment, label):
        if label == self.labels[0]:
            return [
                v
                for v in ctx.universe
                if isinstance(v, (Constant, Argument, GlobalVariable))
            ]
        return None

    def propose_implies_partial(self, bound, label):
        # Proposals are the universe filtered by the check itself.
        return label == self.labels[0]

    def label_kinds(self):
        return ((self.labels[0], "constlike"),)

    def proposable_labels(self, bound):
        return frozenset(self.labels)


class DefDominatesBlock(Constraint):
    """``x`` is an instruction whose defining block dominates ``block``
    — Fig. 5's ``x dominate→ entry`` loop-invariance condition."""

    def __init__(self, x: str, block: str):
        self.labels = (x, block)

    def check(self, ctx, assignment):
        x = assignment[self.labels[0]]
        block = assignment[self.labels[1]]
        if not isinstance(x, Instruction) or not isinstance(block, BasicBlock):
            return False
        return x.parent is not None and ctx.dom.dominates(x.parent, block)

    def compile_check(self, slot_of):
        sx, sb = slot_of[self.labels[0]], slot_of[self.labels[1]]

        def run(ctx, slots, view):
            x = slots[sx]
            block = slots[sb]
            if not isinstance(x, Instruction) or not isinstance(
                block, BasicBlock
            ):
                return False
            return x.parent is not None and ctx.dom.dominates(
                x.parent, block
            )

        return run

    def structural_key(self):
        return ("def_dominates_block", self.labels)

    def label_kinds(self):
        x, block = self.labels
        return ((x, "instruction"), (block, "block"))


class Distinct(Constraint):
    """All bound labels take pairwise distinct values."""

    def __init__(self, *labels: str):
        self.labels = tuple(labels)

    def check(self, ctx, assignment):
        values = [assignment[l] for l in self.labels]
        return len({id(v) for v in values}) == len(values)

    def partial_check(self, ctx, assignment):
        values = [assignment[l] for l in self.labels if l in assignment]
        return len({id(v) for v in values}) == len(values)

    def compile_partial(self, bound, slot_of):
        slots_bound = tuple(
            slot_of[l] for l in self.labels if l in bound
        )
        if len(slots_bound) < 2:
            return PARTIAL_VACUOUS
        if len(slots_bound) == 2:
            s0, s1 = slots_bound

            def run_pair(ctx, slots, view):
                return slots[s0] is not slots[s1]

            return run_pair

        def run(ctx, slots, view):
            seen = set()
            for slot in slots_bound:
                key = id(slots[slot])
                if key in seen:
                    return False
                seen.add(key)
            return True

        return run

    def structural_key(self):
        return ("distinct", tuple(sorted(self.labels)))


class Predicate(Constraint):
    """Escape hatch: an arbitrary Python predicate over bound labels.

    Used by idiom specifications for conditions that are cheap to state
    in Python (e.g. "the bound header actually heads a natural loop").
    """

    def __init__(self, labels: tuple[str, ...], fn, name: str = "predicate",
                 kinds: tuple[str, ...] | None = None):
        self.labels = tuple(labels)
        self.fn = fn
        self.name = name
        #: Optional value-kind requirements aligned with ``labels``
        #: (see :meth:`Constraint.label_kinds`).
        self.kinds = tuple(kinds) if kinds else ()

    def check(self, ctx, assignment):
        return bool(self.fn(ctx, assignment))

    def label_kinds(self):
        return tuple(
            (label, kind)
            for label, kind in zip(self.labels, self.kinds)
            if kind != "any"
        )

    def __repr__(self) -> str:
        return f"<Predicate {self.name}>"
