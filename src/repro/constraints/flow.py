"""Generalized graph domination — the paper's flow constraints.

§3.1.2 describes the key non-structural constraint family: a condition
specifies *a set of allowed input values* for an expression computing a
single output, and requires that **every path to the output value in
both the control dominance graph and the data flow graph passes through
at least one allowed input**.  Memory reads and impure calls are the
potential "origins" that must be explicitly allowed.

:class:`FlowPolicy` describes the allowed set for one slice, and
:class:`FlowChecker` performs the combined data/control walk:

* data edges: instruction operands, PHI incomings, pure-call arguments;
* control edges: from any in-loop instruction to the branch conditions
  it is control dependent on (the spec loop's own header is exempt —
  the iteration space is part of the idiom, §3.1.1 condition 1);
* loads are allowed origins only if their base pointer is loop
  invariant, is not one of the forbidden bases (e.g. the histogram
  array itself) and is never stored to inside the loop — and their
  index expression must itself be allowed-composed (this is what lets
  tpacf's binary-search histogram index through, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loops import Loop
from ..ir.block import BasicBlock
from ..ir.instructions import (
    AllocaInst,
    BranchInst,
    CallInst,
    GEPInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.values import Constant, Value
from .core import Assignment, Constraint, SolverContext


def root_base(pointer: Value) -> Value:
    """Strip ``gep`` chains from a pointer to find the underlying array."""
    while isinstance(pointer, GEPInst):
        pointer = pointer.base
    return pointer


def stored_bases(loop: Loop) -> set[int]:
    """ids of every base pointer stored to anywhere inside ``loop``."""
    result: set[int] = set()
    for block in loop.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, StoreInst):
                result.add(id(root_base(instruction.pointer)))
    return result


@dataclass
class FlowPolicy:
    """The allowed-input set for one generalized-domination slice."""

    #: Values accepted as origins outright (e.g. the accumulator PHI for
    #: the data slice of a scalar reduction, or the histogram load).
    extra_sources: tuple[Value, ...] = ()
    #: Values rejected outright (e.g. the loop iterator: the paper's
    #: reduction conditions compose updates from array values and loop
    #: constants only, never the iterator itself).
    rejected: tuple[Value, ...] = ()
    #: Base pointers loads may never come from (the histogram array).
    forbidden_bases: tuple[Value, ...] = ()
    #: Whether in-loop memory reads are allowed at all.
    allow_loads: bool = True
    #: Values additionally allowed inside *address* computations — the
    #: loop iterator may index arrays even though it may not feed the
    #: reduced value itself.
    index_sources: tuple[Value, ...] = ()
    #: When True, load indices must be affine in the loop nest (the
    #: scalar reduction condition 3); when False, indices only need to
    #: be allowed-composed (histograms: binary-search indices etc.).
    require_affine_index: bool = False

    def __post_init__(self) -> None:
        self._source_ids = {id(v) for v in self.extra_sources}
        self._rejected_ids = {id(v) for v in self.rejected}
        self._forbidden_ids = {id(v) for v in self.forbidden_bases}

    def for_index(self) -> "FlowPolicy":
        """The derived policy used for address computations."""
        merged = self.extra_sources + tuple(
            v for v in self.index_sources if id(v) not in self._source_ids
        )
        index_ids = {id(v) for v in self.index_sources}
        return FlowPolicy(
            extra_sources=merged,
            rejected=tuple(v for v in self.rejected if id(v) not in index_ids),
            forbidden_bases=self.forbidden_bases,
            allow_loads=self.allow_loads,
            index_sources=self.index_sources,
            require_affine_index=self.require_affine_index,
        )


@dataclass
class FlowResult:
    """Outcome of a generalized graph domination check."""

    ok: bool
    reason: str = ""
    #: Every value visited on the data walk (used for the
    #: "accumulator is only used inside its own update" post-check).
    visited: set[int] = field(default_factory=set)
    #: The loads accepted as origins.
    loads: list[LoadInst] = field(default_factory=list)
    #: The pure calls traversed.
    calls: list[CallInst] = field(default_factory=list)


class FlowChecker:
    """Performs generalized graph domination walks within one loop."""

    def __init__(
        self,
        ctx: SolverContext,
        loop: Loop,
        exempt_blocks: tuple[BasicBlock, ...] = (),
    ):
        self.ctx = ctx
        self.loop = loop
        self.exempt = {id(b) for b in exempt_blocks}
        self._stored_bases = stored_bases(loop)

    def check(
        self,
        output: Value,
        data_policy: FlowPolicy,
        control_policy: FlowPolicy | None = None,
    ) -> FlowResult:
        """Check that ``output`` is computed only from allowed inputs.

        ``control_policy`` (defaults to ``data_policy``) governs branch
        conditions: for reductions it must not include the accumulator,
        which is how the §2 counterexample (``t1 <= sx``) is rejected.
        """
        control_policy = control_policy or data_policy
        result = FlowResult(True)
        # Two visited sets: a value may be legal for the data slice but
        # still need re-examination under the stricter control policy.
        data_seen: set[int] = set()
        control_seen: set[int] = set()

        def fail(reason: str) -> bool:
            result.ok = False
            if not result.reason:
                result.reason = reason
            return False

        def visit(value: Value, policy: FlowPolicy, seen: set[int]) -> bool:
            if id(value) in seen:
                return True
            seen.add(id(value))
            if seen is data_seen:
                result.visited.add(id(value))
            if id(value) in policy._rejected_ids:
                return fail(f"forbidden value {value.short_name()}")
            if id(value) in policy._source_ids:
                return True
            if isinstance(value, Constant):
                return True
            if not isinstance(value, Instruction):
                # Arguments, globals, block labels: fixed before the loop.
                return True
            if value.parent not in self.loop.blocks:
                # Defined outside the loop: loop invariant.
                return True
            if not self._visit_control(value, control_policy, control_seen,
                                       fail, visit):
                return False
            if isinstance(value, LoadInst):
                return self._visit_load(value, policy, seen, fail, visit,
                                        result)
            if isinstance(value, CallInst):
                if not self.ctx.is_pure_call_target(value.callee):
                    return fail(
                        f"impure call to {value.callee.name}"
                    )
                result.calls.append(value)
                return all(visit(a, policy, seen) for a in value.args)
            if isinstance(value, PhiInst):
                if value.parent is self.loop.header:
                    # A PHI at the spec loop's header is a loop-carried
                    # intermediate result (the §2 counterexample: a
                    # condition reading another accumulator).  Only the
                    # explicitly allowed sources (the accumulator, the
                    # iterator inside addresses) may cross iterations.
                    return fail(
                        f"loop-carried value {value.short_name()} is not an "
                        f"allowed source"
                    )
                for incoming_value, pred in value.incoming:
                    if not visit(incoming_value, policy, seen):
                        return False
                    if not self._visit_edge_control(
                        pred, control_policy, control_seen, visit
                    ):
                        return False
                return True
            if isinstance(value, (StoreInst, BranchInst, AllocaInst)):
                return fail(f"illegal value kind {value.opcode}")
            return all(visit(op, policy, seen) for op in value.operands)

        ok = visit(output, data_policy, data_seen)
        result.ok = ok and result.ok
        return result

    # -- helpers -----------------------------------------------------------

    def _visit_load(self, load: LoadInst, policy: FlowPolicy, seen, fail,
                    visit, result: FlowResult) -> bool:
        if not policy.allow_loads:
            return fail("loads are not allowed in this slice")
        pointer = load.pointer
        base = root_base(pointer)
        if id(base) in policy._forbidden_ids:
            return fail(
                f"load from forbidden base {base.short_name()}"
            )
        if isinstance(base, Instruction) and base.parent in self.loop.blocks:
            return fail(
                f"load base {base.short_name()} is not loop invariant"
            )
        if id(base) in self._stored_bases:
            return fail(
                f"load from base {base.short_name()} that the loop stores to"
            )
        if isinstance(pointer, GEPInst):
            if policy.require_affine_index:
                if self.ctx.scev.affine_at(pointer.index, self.loop) is None:
                    return fail(
                        f"load index {pointer.index.short_name()} is not "
                        f"affine in the loop iterator"
                    )
                result.loads.append(load)
                return True
            # Address computations use the derived index policy: the
            # iterator is permitted there even when the value slice
            # rejects it.
            index_seen: set[int] = set()
            if not visit(pointer.index, policy.for_index(), index_seen):
                return False
            result.loads.append(load)
            return True
        result.loads.append(load)
        return True

    def _visit_control(self, value: Instruction, policy: FlowPolicy,
                       seen, fail, visit) -> bool:
        block = value.parent
        if block is None:
            return True
        for controller in self.ctx.control_deps.get(block, ()):
            if id(controller) in self.exempt:
                continue
            if controller not in self.loop.blocks:
                continue
            terminator = controller.terminator
            if isinstance(terminator, BranchInst) and terminator.is_conditional:
                if not visit(terminator.condition, policy, seen):
                    return False
        return True

    def _visit_edge_control(self, pred: BasicBlock, policy: FlowPolicy,
                            seen, visit) -> bool:
        """PHI selection depends on which predecessor edge was taken."""
        if pred not in self.loop.blocks or id(pred) in self.exempt:
            return True
        terminator = pred.terminator
        if isinstance(terminator, BranchInst) and terminator.is_conditional:
            if not visit(terminator.condition, policy, seen):
                return False
        for controller in self.ctx.control_deps.get(pred, ()):
            if id(controller) in self.exempt or controller not in self.loop.blocks:
                continue
            terminator = controller.terminator
            if isinstance(terminator, BranchInst) and terminator.is_conditional:
                if not visit(terminator.condition, policy, seen):
                    return False
        return True


class ComputedOnlyFrom(Constraint):
    """Constraint adapter for generalized graph domination.

    ``policy_factory(ctx, assignment)`` builds the (data, control)
    policies once the structural labels are bound; ``output`` and
    ``header`` name the sliced value and the spec loop's header block.
    """

    def __init__(self, output: str, header: str, policy_factory,
                 extra_labels: tuple[str, ...] = ()):
        self.labels = tuple(dict.fromkeys((output, header) + extra_labels))
        self.output_label = output
        self.header_label = header
        self.policy_factory = policy_factory

    def label_kinds(self):
        pairs = [(self.output_label, "value"), (self.header_label, "block")]
        pairs.extend(
            (label, "value")
            for label in self.labels
            if label != self.output_label and label != self.header_label
        )
        return tuple(pairs)

    def check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        # The verdict is a pure function of the context's (immutable)
        # analyses and this constraint's bound label values, and the
        # same slice is re-checked across specs sharing conjuncts and
        # across prefix replays — memoized per context like the other
        # analysis caches.
        # The constraint object itself is part of the key — identity
        # addressing that also pins it alive in the memo, exactly like
        # the shared proposal cache (value ids are stable: the context
        # keeps the function's values alive).
        key = (self,) + tuple(
            id(assignment[label]) for label in self.labels
        )
        memo = ctx.flow_memo
        verdict = memo.get(key)
        if verdict is None:
            verdict = self._check(ctx, assignment)
            memo[key] = verdict
        return verdict

    def _check(self, ctx: SolverContext, assignment: Assignment) -> bool:
        header = assignment[self.header_label]
        if not isinstance(header, BasicBlock):
            return False
        loop = ctx.loop_info.loop_with_header(header)
        if loop is None:
            return False
        data_policy, control_policy = self.policy_factory(ctx, assignment)
        checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
        return checker.check(
            assignment[self.output_label], data_policy, control_policy
        ).ok


def declarative_flow(
    output: str,
    header: str,
    sources: tuple[str, ...] = (),
    rejected: tuple[str, ...] = (),
    forbidden: tuple[str, ...] = (),
    index: tuple[str, ...] = (),
    affine: bool = False,
    loads: bool = True,
) -> ComputedOnlyFrom:
    """A :class:`ComputedOnlyFrom` whose policies are described by label
    names instead of a Python factory — the ICSL ``flow(...)`` atom.

    The data slice allows the ``sources`` labels as origins and rejects
    the ``rejected`` ones; the control slice is derived by additionally
    rejecting the sources (§3.1.1: branch conditions may not observe
    partial results — this is what rejects the §2 ``t1 <= sx``
    counterexample).  ``forbidden`` names base pointers loads may never
    come from, ``index`` names values allowed inside address
    computations only, ``affine`` requires load indices affine in the
    loop nest, and ``loads=False`` forbids in-loop reads entirely.
    """
    sources = tuple(sources)
    rejected = tuple(rejected)
    forbidden = tuple(forbidden)
    index = tuple(index)

    def factory(ctx, assignment):
        def resolve(names: tuple[str, ...]):
            return tuple(assignment[n] for n in names)

        data = FlowPolicy(
            extra_sources=resolve(sources),
            rejected=resolve(rejected),
            forbidden_bases=resolve(forbidden),
            allow_loads=loads,
            index_sources=resolve(index),
            require_affine_index=affine,
        )
        control = FlowPolicy(
            rejected=resolve(rejected) + resolve(sources),
            forbidden_bases=resolve(forbidden),
            allow_loads=loads,
            index_sources=resolve(index),
            require_affine_index=affine,
        )
        return data, control

    extra = tuple(dict.fromkeys(sources + rejected + forbidden + index))
    constraint = ComputedOnlyFrom(output, header, factory, extra_labels=extra)
    constraint.spec_atom = (
        "flow",
        {
            "output": output,
            "header": header,
            "sources": sources,
            "rejected": rejected,
            "forbidden": forbidden,
            "index": index,
            "affine": affine,
            "loads": loads,
        },
    )
    return constraint
