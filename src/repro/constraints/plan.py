"""Flat evaluation plans — the compiled constraint engine.

The incremental solver (:mod:`.solver`) still *interprets* a tree of
Python constraint objects per candidate: every search node walks the
depth's conjunct slice, dispatches ``partial_check`` through a method
lookup, and rebuilds memo keys with per-lookup sorting.  At corpus
scale that interpreter overhead dominates the search itself.  This
module lowers each :class:`~repro.constraints.solver.CompiledSpec`
depth-slice once, per spec, into a :class:`FlatPlan`:

* **slot-indexed bindings** — the partial assignment is a flat list
  indexed by label-order position (slot ``k`` is the label bound at
  depth ``k``); atom closures read ``slots[i]`` directly instead of
  hashing label strings into a dict;
* **precomputed atom closures** — every scheduled ``(depth, conjunct)``
  pair is lowered via :meth:`Constraint.compile_partial` for its exact
  bound label set, eliminating the ``partial_check`` dispatch and the
  per-call bound-set discovery;
* **redundancy pruning** (CoreDiag-style) — conjuncts whose partial
  verdict is constant-true for a depth's bound set (the vacuous checks
  the ``c_k`` construction generates), structural duplicates, and
  conjuncts implied by an earlier conjunct in the chosen order (strict
  dominance ⇒ dominance, ``sese`` ⇒ both dominance legs) are dropped
  from the slice at compile time.  Every skipped evaluation the
  interpreted engine *would* have counted is recorded in
  :attr:`SolverStats.evals_pruned`, position-exactly, so
  ``interpreted.constraint_evals == plan.constraint_evals +
  plan.evals_pruned`` holds per search — fingerprint accounting stays
  honest;
* **numpy-vectorized candidate filtering** — when the solver falls
  back to the whole value universe, a data-parallel atom (opcode
  membership, constant-likeness) rejects the bulk of the batch with
  one array mask; survivors run the exact per-candidate loop, and the
  rejected candidates' counters are accounted in bulk with the same
  position arithmetic, so results *and statistics* are identical with
  or without numpy (graceful fallback when it is absent, or when
  ``REPRO_NO_NUMPY`` is set);
* **partial-prefix replay tries** — full-prefix replay
  (``base_solutions``) requires the extension's label order to start
  with the base's *entire* order.  The plan engine extends
  :class:`~repro.constraints.solver.SharedSolverCache` with
  ``prefix_trie``: the depth-``d`` frontier of a base spec's search
  (every partial assignment of its first ``d`` labels that survived
  pruning), keyed ``(base, d)``.  An ``extends`` spec whose order
  diverges from the base mid-way replays the shared frontier at the
  divergence depth instead of re-enumerating it — sound because
  partial rejections are monotone under binding growth (a conjunct
  that rejected with fewer bindings still rejects with more), so the
  replayed frontier, re-validated against the extension's own
  conjuncts, reaches exactly the solutions the native search reaches.

The interpreted engine is unchanged and remains the differential
oracle; :func:`detect_plan` is bit-identical to it in solutions,
assignments tried, rejections, universe fallbacks, proposal cache hits
and candidate statistics, and eval-exact modulo the recorded pruning.
"""

from __future__ import annotations

import os
import sys
from typing import Iterator, Mapping

from ..ir.values import Value
from .core import PARTIAL_VACUOUS, IdiomSpec, SolverContext
from .logical import intersect_proposals

if os.environ.get("REPRO_NO_NUMPY"):  # CI fallback leg / forced-off switch
    _np = None
else:
    try:
        import numpy as _np
    except Exception:  # pragma: no cover - environment without numpy
        _np = None

#: Slot value marking an unbound label.
_UNBOUND = object()

#: Minimum candidate-batch size before the vectorized filter engages —
#: below this the mask setup costs more than the Python loop it saves.
#: Results and statistics are identical either way (the cutoff is a
#: pure performance knob, and deterministic).
_BATCH_MIN = 24

#: Stand-in bound when no solution limit is set: one comparison against
#: a never-reached integer replaces a None test per search node.
_NO_LIMIT = 1 << 62


class SlotView(Mapping):
    """A live ``Mapping`` view of the solver's slot list.

    Generic fallbacks (``partial_check`` wrappers, ``propose``
    implementations) receive this instead of a dict: lookups translate
    label → slot through the plan's table and unbound slots read as
    missing keys.  One instance per search, always current — the view
    wraps the mutable slot list itself.
    """

    __slots__ = ("_slots", "_slot_of", "_order")

    def __init__(self, slots: list, slot_of: dict, order: tuple):
        self._slots = slots
        self._slot_of = slot_of
        self._order = order

    def __getitem__(self, label: str) -> Value:
        value = self._slots[self._slot_of[label]]
        if value is _UNBOUND:
            raise KeyError(label)
        return value

    def get(self, label: str, default=None):
        slot = self._slot_of.get(label)
        if slot is None:
            return default
        value = self._slots[slot]
        return default if value is _UNBOUND else value

    def __contains__(self, label: object) -> bool:
        slot = self._slot_of.get(label)
        return slot is not None and self._slots[slot] is not _UNBOUND

    def __iter__(self) -> Iterator[str]:
        slots = self._slots
        for i, label in enumerate(self._order):
            if slots[i] is not _UNBOUND:
                yield label

    def __len__(self) -> int:
        return sum(1 for value in self._slots if value is not _UNBOUND)


def _generic_partial(constraint):
    """Wrap an unlowerable constraint's ``partial_check`` for the plan
    runtime (never pruned; reads bindings through the slot view)."""
    partial = constraint.partial_check

    def run(ctx, slots, view):
        return partial(ctx, view)

    return run


class CheckChain:
    """A lowered conjunct slice with O(1)-per-candidate accounting.

    Built from ``(closure, pruned_before)`` pairs in schedule order:
    ``pruned_before`` is how many vacuous/redundant conjuncts the
    interpreted engine would have evaluated immediately before this
    closure.  Rather than charging counters check by check, the chain
    precomputes what each outcome costs: a failure at closure index
    ``i`` charges ``i + 1`` evaluations and ``fail_pruned[i]`` skipped
    ones (the pruned entries the interpreter would have reached before
    short-circuiting); a full pass charges ``pass_evals`` and
    ``pass_pruned`` (which folds in ``tail_pruned``, the pruned entries
    after the last kept check).
    """

    __slots__ = ("fns", "fail_pruned", "pass_evals", "pass_pruned")

    def __init__(self, checks, tail_pruned):
        self.fns = tuple(fn for fn, _ in checks)
        prefix = []
        running = 0
        for _, pruned_before in checks:
            running += pruned_before
            prefix.append(running)
        self.fail_pruned = tuple(prefix)
        self.pass_evals = len(checks)
        self.pass_pruned = running + tail_pruned


class PlanStep:
    """One depth of a flat plan.

    ``chain`` is the depth's :class:`CheckChain` — the lowered conjunct
    slice with its precomputed eval/pruned accounting.
    """

    __slots__ = ("label", "slot", "chain", "proposers", "batch",
                 "dep_slots")

    def __init__(self, label, slot, chain, proposers, batch):
        self.label = label
        self.slot = slot
        self.chain = chain
        #: ``(conjunct, key_pairs, const_key, single, double)`` rows;
        #: ``key_pairs`` are
        #: the pre-sorted ``(label, slot)`` pairs of the conjunct's
        #: labels bound at this depth — the memo key builds from them
        #: without per-lookup sorting, and matches the interpreted
        #: engine's key byte for byte (the caches are
        #: engine-interoperable).  When no labels are bound the key is
        #: a compile-time constant (``const_key``); the common one- and
        #: two-bound-label cases skip tuple iteration (``single`` /
        #: ``double``).
        self.proposers = proposers
        #: Optional bulk candidate filter ``fn(ctx, numpy) -> mask``
        #: derived from the first kept check.
        self.batch = batch
        #: Sorted union of the slots all proposer rows read — the
        #: value ids at these slots determine every row's proposal, so
        #: ``(step, ids)`` keys a whole-depth candidate memo.
        deps = sorted({s for _, pairs, _, _, _ in proposers
                       for _, s in pairs})
        self.dep_slots = tuple(deps)


class PruneDecision:
    """One conjunct the plan compiler dropped from a schedule slice.

    The typed record behind every ``SolverStats.evals_pruned`` unit:
    rather than dropping checks silently, :func:`_compile_slice` logs
    *which* conjunct was pruned *where* and *why*, and the lint pass
    (:mod:`repro.constraints.analysis`) surfaces the records as
    position-exact diagnostics.  ``len(plan.pruning_decisions) ==
    plan.conjuncts_pruned`` by construction.

    ``reason`` is one of

    * ``"vacuous"`` — the partial verdict is constant-true for the
      slice's bound set (the ``c_k`` construction's padding);
    * ``"duplicate"`` — an earlier conjunct with the *same* structural
      key already ran (``established_by``);
    * ``"implied-conjunct"`` — an earlier conjunct *implies* this one
      (``established_by``; e.g. ``sese`` ⇒ its dominance legs);
    * ``"implied-proposal"`` — the depth's candidates come from this
      conjunct's own proposals, which pre-satisfy its check.

    ``where`` names the slice kind (``"depth"``, ``"replay"`` or
    ``"partial"``), ``depth`` the bound-prefix length there, ``index``
    the conjunct's position in ``CompiledSpec.conjuncts``.
    """

    __slots__ = ("reason", "where", "depth", "index", "conjunct",
                 "established_by")

    def __init__(self, reason, where, depth, index, conjunct,
                 established_by=None):
        self.reason = reason
        self.where = where
        self.depth = depth
        self.index = index
        self.conjunct = conjunct
        self.established_by = established_by

    def __repr__(self):  # pragma: no cover - debug aid
        return (
            f"<PruneDecision {self.reason} conjunct={self.index}"
            f" {self.where}@{self.depth}>"
        )


def _compile_slice(entries, slot_of, bound_of, *, where, depth,
                   known_keys=None, batch_label=None, implied=None):
    """Lower one ordered conjunct slice into kept checks.

    ``entries`` yields ``(index, conjunct, labelset)`` in schedule
    order; ``bound_of(labelset)`` names the exact bound label subset at
    this point.  Returns ``(checks, tail_pruned, decisions, batch)``
    where ``decisions`` is the list of :class:`PruneDecision` records
    (one per dropped conjunct, so ``len(decisions)`` is the slice's
    pruned count).  ``known_keys`` seeds the redundancy pass with
    structural keys already established to hold, mapped to the
    establishing conjunct (the base conjuncts of a replay).
    ``implied`` holds ids of conjuncts whose verdict at this depth is
    implied by their own proposals (see
    :meth:`Constraint.propose_implies_partial`) — dropped like
    duplicates, and their structural keys still count as established.
    """
    checks = []
    pending = 0
    decisions: list[PruneDecision] = []
    established: dict = dict(known_keys) if known_keys else {}
    batch = None
    for index, conjunct, labelset in entries:
        bound = bound_of(labelset)
        lowered = conjunct.compile_partial(frozenset(bound), slot_of)
        if lowered is PARTIAL_VACUOUS:
            pending += 1
            decisions.append(
                PruneDecision("vacuous", where, depth, index, conjunct)
            )
            continue
        key = conjunct.structural_key() if labelset <= bound else None
        if key is not None and key in established:
            pending += 1
            by = established[key]
            reason = (
                "duplicate" if by.structural_key() == key
                else "implied-conjunct"
            )
            decisions.append(
                PruneDecision(reason, where, depth, index, conjunct,
                              established_by=by)
            )
            continue
        if implied is not None and id(conjunct) in implied:
            pending += 1
            decisions.append(
                PruneDecision("implied-proposal", where, depth, index,
                              conjunct)
            )
            if key is not None:
                established.setdefault(key, conjunct)
                for implied_key in conjunct.implied_structural_keys():
                    established.setdefault(implied_key, conjunct)
            continue
        if lowered is None:
            lowered = _generic_partial(conjunct)
        if batch is None and not checks and batch_label is not None:
            factory = getattr(conjunct, "compile_batch_filter", None)
            if factory is not None:
                batch = factory(batch_label)
        checks.append((lowered, pending))
        pending = 0
        if key is not None:
            established.setdefault(key, conjunct)
            for implied_key in conjunct.implied_structural_keys():
                established.setdefault(implied_key, conjunct)
    return tuple(checks), pending, decisions, batch


class FlatPlan:
    """The compiled execution plan of one spec (cached on the spec)."""

    def __init__(self, spec: IdiomSpec):
        from .solver import compile_spec

        self.spec = spec
        compiled = compile_spec(spec)
        order = spec.label_order
        self.order = order
        self.slot_of = {label: i for i, label in enumerate(order)}
        self.prefix_sets = [
            frozenset(order[:k]) for k in range(len(order) + 1)
        ]
        conjuncts = compiled.conjuncts
        labelsets = compiled.labelsets

        #: Schedule slots eliminated by the redundancy pass, summed over
        #: all depths (and replay slices) — a static property of the
        #: plan, charged once per search to ``SolverStats``.
        self.conjuncts_pruned = 0
        #: The typed record of every eliminated slot (one
        #: :class:`PruneDecision` per ``conjuncts_pruned`` unit), in
        #: compile order — consumed by the lint pass.
        self.pruning_decisions: list[PruneDecision] = []
        self.steps: list[PlanStep] = []
        for k, label in enumerate(order):
            bound_after = set(order[: k + 1])
            bound_before = frozenset(order[:k])
            # Conjuncts that propose for this depth's label and whose
            # proposals pre-satisfy their own partial check: candidates
            # come from the proposal intersection, so these checks are
            # implied and compile away.
            implied = {
                id(conjuncts[i])
                for i in compiled.proposers.get(label, ())
                if conjuncts[i].propose_implies_partial(bound_before, label)
            }
            checks, tail, decisions, batch = _compile_slice(
                (
                    (i, conjuncts[i], labelsets[i])
                    for i in compiled.schedule[k]
                ),
                self.slot_of,
                lambda labelset, _b=bound_after: labelset & _b,
                where="depth",
                depth=k,
                batch_label=label,
                implied=implied or None,
            )
            self.conjuncts_pruned += len(decisions)
            self.pruning_decisions.extend(decisions)
            proposers = []
            for i in compiled.proposers.get(label, ()):
                key_pairs = tuple(
                    (l, self.slot_of[l])
                    for l in sorted(labelsets[i])
                    if l in bound_before
                )
                const_key = (
                    (conjuncts[i], label, ()) if not key_pairs else None
                )
                single = key_pairs[0] if len(key_pairs) == 1 else None
                double = None
                if len(key_pairs) == 2:
                    (l0, s0), (l1, s1) = key_pairs
                    double = (l0, s0, l1, s1)
                proposers.append(
                    (conjuncts[i], key_pairs, const_key, single, double)
                )
            proposers = tuple(proposers)
            self.steps.append(
                PlanStep(label, k, CheckChain(checks, tail), proposers,
                         batch)
            )

        #: Depth → label table, used when flushing per-depth candidate
        #: statistics into ``SolverStats`` after a search.
        self.step_label = [s.label for s in self.steps]

        # -- full-prefix replay (mirrors the interpreted engine) ----------
        self.prefix_len = compiled.prefix_len
        self.replay_chain: CheckChain | None = None
        if self.prefix_len:
            prefix_set = set(order[: self.prefix_len])
            base_keys = self._base_established_keys(spec.base, prefix_set)
            checks, tail, decisions, _ = _compile_slice(
                (
                    (i, conjuncts[i], labelsets[i])
                    for i in compiled.replay_indices
                ),
                self.slot_of,
                lambda labelset, _p=prefix_set: labelset & _p,
                where="replay",
                depth=self.prefix_len,
                known_keys=base_keys,
            )
            self.conjuncts_pruned += len(decisions)
            self.pruning_decisions.extend(decisions)
            self.replay_chain = CheckChain(checks, tail)

        # -- partial-prefix trie replay -----------------------------------
        self.partial_base: IdiomSpec | None = None
        self.partial_len = 0
        self.partial_chain: CheckChain | None = None
        if not self.prefix_len:
            self._compile_partial_prefix(compiled, conjuncts, labelsets)

        # -- specialized search function ----------------------------------
        # The search binds into a per-plan slot buffer (all-unbound
        # between searches — every exit path of the generated function
        # restores it), so detect_plan allocates nothing per call.
        self._slots = [_UNBOUND] * len(order)
        self._view = SlotView(self._slots, self.slot_of, order)
        self.search_src, self.search = _codegen_search(self)

    @staticmethod
    def _base_established_keys(base, prefix_set):
        """Structural keys known to hold on every replayed base tuple —
        the keys (and implications) of base conjuncts fully bound
        within the prefix — mapped to the establishing conjunct (for
        the pruning record's provenance)."""
        from .core import constraint_labels, top_level_conjuncts

        keys: dict = {}
        for conjunct in top_level_conjuncts(base.constraint):
            if set(constraint_labels(conjunct)) <= prefix_set:
                key = conjunct.structural_key()
                if key is not None:
                    keys.setdefault(key, conjunct)
                    for implied_key in conjunct.implied_structural_keys():
                        keys.setdefault(implied_key, conjunct)
        return keys

    def _compile_partial_prefix(self, compiled, conjuncts, labelsets):
        """Index the mid-order shared prefix with the declared base.

        Engaged when full-prefix replay is unavailable (the orders
        diverge before the base's order ends) but a proper shared
        prefix remains and the base's conjunct objects appear verbatim
        — the ICSL ``extends`` guarantee that makes the base's
        depth-``d`` frontier a sound stand-in for this spec's own
        prefix search.
        """
        spec = self.spec
        base = spec.declared_base
        if base is None or spec.base is not None:
            return
        depth = spec.shared_prefix_len()
        if depth == 0:
            return
        from .core import top_level_conjuncts

        base_conjuncts = top_level_conjuncts(base.constraint)
        own_ids = {id(c) for c in conjuncts}
        if any(id(c) not in own_ids for c in base_conjuncts):
            return  # conjuncts were rebuilt, not shared: cannot replay
        base_ids = {id(c) for c in base_conjuncts}
        prefix_set = set(self.order[:depth])
        base_keys = self._base_established_keys(base, prefix_set)
        replay = [
            (i, conjuncts[i], labelsets[i])
            for i in range(len(conjuncts))
            if id(conjuncts[i]) not in base_ids
            and (labelsets[i] & prefix_set)
        ]
        checks, tail, decisions, _ = _compile_slice(
            replay,
            self.slot_of,
            lambda labelset, _p=prefix_set: labelset & _p,
            where="partial",
            depth=depth,
            known_keys=base_keys,
        )
        self.conjuncts_pruned += len(decisions)
        self.pruning_decisions.extend(decisions)
        self.partial_base = base
        self.partial_len = depth
        self.partial_chain = CheckChain(checks, tail)


def _codegen_search(plan: FlatPlan):
    """Generate and compile the specialized search function of a plan.

    The final lowering stage: instead of interpreting the per-depth
    step tables with a generic recursive loop, emit one Python function
    per plan — a ladder of per-depth closures whose slot indices,
    proposal memo-key shapes, check chains and counter deltas are baked
    in as source-level constants — then ``compile``/``exec`` it once
    and cache the function on the plan.  Per search node this removes
    every table index, the check-dispatch loop (lowered to a nested
    ``if`` chain), and all constant arithmetic on the statistics
    counters.  Semantics are unchanged: the generated function is the
    same search the generic loop ran, so the engine stays bit-identical
    to the interpreted oracle.

    Returns ``(source, function)``.  The function signature is

    ``_search(ctx, slots, view, memo, isect_memo, depth_memo, universe,
    results, limit_v, stop_depth, stats, mode, frontier)``

    and it flushes all search counters and per-depth candidate
    statistics straight into ``stats`` (the dict keys are compile-time
    constants).  ``mode`` selects a fresh search from depth 0 (``0``),
    a full-prefix replay of ``frontier`` (``1``), or a partial-prefix
    trie replay (``2``); the replay bodies are specialized per plan —
    binder slots, check chain and entry depth are baked in.  numpy is
    re-read from this module per batch so runtime toggles keep working.
    """
    order = plan.order
    nslots = len(order)
    env: dict = {
        "order": order,
        "slot_of": plan.slot_of,
        "_UNBOUND": _UNBOUND,
        "_NO_LIMIT": _NO_LIMIT,
        "_BATCH_MIN": _BATCH_MIN,
        "intersect_proposals": intersect_proposals,
        "_plan_module": sys.modules[__name__],
    }
    lines: list[str] = []

    def w(indent: int, text: str) -> None:
        lines.append("    " * indent + text)

    def emit_rows(ind: int, k: int, rows, label: str) -> None:
        for i, (conjunct, key_pairs, const_key, single,
                double) in enumerate(rows):
            cname = f"c{k}_{i}"
            env[cname] = conjunct
            if const_key is not None:
                kname = f"key{k}_{i}"
                env[kname] = const_key
                key_expr = kname
            elif single is not None:
                l, s = single
                key_expr = f"({cname}, {label!r}, (({l!r}, id(slots[{s}])),))"
            elif double is not None:
                l0, s0, l1, s1 = double
                key_expr = (
                    f"({cname}, {label!r}, (({l0!r}, id(slots[{s0}])), "
                    f"({l1!r}, id(slots[{s1}]))))"
                )
            else:
                pname = f"pairs{k}_{i}"
                env[pname] = key_pairs
                key_expr = (
                    f"({cname}, {label!r}, "
                    f"tuple((l, id(slots[s])) for l, s in {pname}))"
                )
            w(ind, f"key = {key_expr}")
            w(ind, "try:")
            w(ind + 1, "cand = memo[key]")
            w(ind + 1, "n_hits += 1")
            w(ind, "except KeyError:")
            w(ind + 1, f"cand = {cname}.propose(ctx, view, {label!r})")
            w(ind + 1, "if cand is not None:")
            w(ind + 2, "cand = list(cand)")
            w(ind + 1, "memo[key] = cand")
            w(ind, "if cand is not None:")
            w(ind + 1, "proposals.append(cand)")

    def emit_loop(ind: int, k: int, chain: CheckChain, slot: int) -> None:
        fns_count = len(chain.fns)
        fail = chain.fail_pruned
        passp = chain.pass_pruned
        w(ind, "for value in candidates:")
        w(ind + 1, f"slots[{slot}] = value")
        w(ind + 1, "n_tried += 1")

        def descend(j: int) -> None:
            if passp:
                w(ind + 1 + j, f"n_pruned += {passp}")
            w(ind + 1 + j, f"if not cont{k}():")
            w(ind + 2 + j, f"slots[{slot}] = _UNBOUND")
            w(ind + 2 + j, "return False")

        if fns_count == 0:
            descend(0)
        else:
            def nest(i: int) -> None:
                if i == fns_count:
                    w(ind + 1 + i, f"n_evals += {fns_count}")
                    descend(i)
                    return
                w(ind + 1 + i, f"if f{k}_{i}(ctx, slots, view):")
                nest(i + 1)
                w(ind + 1 + i, "else:")
                w(ind + 2 + i, f"n_evals += {i + 1}")
                if fail[i]:
                    w(ind + 2 + i, f"n_pruned += {fail[i]}")
                w(ind + 2 + i, "n_rejected += 1")

            nest(0)
        w(ind, f"slots[{slot}] = _UNBOUND")
        w(ind, "return True")

    w(0, "def _search(ctx, slots, view, memo, isect_memo, depth_memo,")
    w(0, "            universe, results, limit_v, stop_depth, stats,")
    w(0, "            mode, frontier):")
    for name in ("n_tried", "n_evals", "n_pruned", "n_rejected",
                 "n_hits", "n_fallbacks", "n_solutions"):
        w(1, f"{name} = 0")
    for k in range(nslots):
        w(1, f"nv{k} = 0")
        w(1, f"nc{k} = 0")
    w(1, "order_prefix = order[:stop_depth]")
    w(1, "def emit():")
    w(2, "nonlocal n_solutions")
    w(2, "if len(results) >= limit_v:")
    w(3, "return False")
    w(2, "results.append(dict(zip(order_prefix, slots)))")
    w(2, "n_solutions += 1")
    w(2, "return True")

    for k, step in enumerate(plan.steps):
        chain = step.chain
        env[f"step{k}"] = step
        for i, fn in enumerate(chain.fns):
            env[f"f{k}_{i}"] = fn
        rows = step.proposers
        label = step.label
        w(1, f"def d{k}():")
        w(2, "nonlocal n_tried, n_evals, n_pruned, n_rejected, "
             f"n_hits, n_fallbacks, nv{k}, nc{k}")
        w(2, "if len(results) >= limit_v:")
        w(3, "return False")
        if rows:
            ids = ", ".join(f"id(slots[{s}])" for s in step.dep_slots)
            inner = f"({ids},)" if len(step.dep_slots) == 1 else f"({ids})"
            w(2, f"dkey = (step{k}, {inner})")
            w(2, "entry = depth_memo.get(dkey)")
            w(2, "if entry is not None:")
            w(3, "candidates, fu = entry")
            w(3, f"n_hits += {len(rows)}")
            w(3, "if fu:")
            w(4, "n_fallbacks += 1")
            w(2, "else:")
            w(3, "proposals = []")
            emit_rows(3, k, rows, label)
            w(3, "if proposals:")
            w(4, "if len(proposals) == 1:")
            w(5, "candidates = proposals[0]")
            w(4, "else:")
            w(5, "ikey = tuple(map(id, proposals))")
            w(5, "candidates = isect_memo.get(ikey)")
            w(5, "if candidates is None:")
            w(6, "candidates = intersect_proposals(proposals)")
            w(6, "isect_memo[ikey] = candidates")
            w(4, "fu = False")
            w(3, "else:")
            w(4, "candidates = universe")
            w(4, "n_fallbacks += 1")
            w(4, "fu = True")
            w(3, "depth_memo[dkey] = (candidates, fu)")
        else:
            w(2, "candidates = universe")
            w(2, "n_fallbacks += 1")
        w(2, f"nv{k} += 1")
        w(2, f"nc{k} += len(candidates)")
        if step.batch is not None and chain.fns:
            env[f"batch{k}"] = step.batch
            guard = "fu and " if rows else ""
            w(2, "np = _plan_module._np")
            w(2, f"if {guard}np is not None and limit_v == _NO_LIMIT "
                 f"and len(candidates) >= _BATCH_MIN:")
            w(3, f"mask = batch{k}(ctx, np)")
            w(3, "survivors = [candidates[j] for j in np.nonzero(mask)[0]]")
            w(3, "dropped = len(candidates) - len(survivors)")
            w(3, "if dropped:")
            w(4, "n_tried += dropped")
            w(4, "n_rejected += dropped")
            w(4, "n_evals += dropped")
            if chain.fail_pruned[0]:
                w(4, f"n_pruned += dropped * {chain.fail_pruned[0]}")
            w(3, "candidates = survivors")
        emit_loop(2, k, chain, step.slot)

    for k in range(nslots):
        if k + 1 < nslots:
            w(1, f"cont{k} = d{k + 1} if stop_depth > {k + 1} else emit")
        else:
            w(1, f"cont{k} = emit")

    def emit_replay(mname: str, chain: CheckChain, start: int) -> None:
        fnames = []
        for i, fn in enumerate(chain.fns):
            env[f"{mname}_f{i}"] = fn
            fnames.append(f"{mname}_f{i}")
        entry = f"d{start}" if start < nslots else "emit"
        m = len(fnames)
        w(1, f"def {mname}():")
        w(2, "nonlocal n_evals, n_pruned, n_rejected")
        w(2, "for node in frontier:")
        w(3, "if len(results) >= limit_v:")
        w(4, "break")
        for i in range(start):
            w(3, f"slots[{i}] = node[{order[i]!r}]")
        if m == 0:
            if chain.pass_pruned:
                w(3, f"n_pruned += {chain.pass_pruned}")
            w(3, f"{entry}()")
        else:
            def nest(i: int) -> None:
                if i == m:
                    w(3 + i, f"n_evals += {m}")
                    if chain.pass_pruned:
                        w(3 + i, f"n_pruned += {chain.pass_pruned}")
                    w(3 + i, f"{entry}()")
                    return
                w(3 + i, f"if {fnames[i]}(ctx, slots, view):")
                nest(i + 1)
                w(3 + i, "else:")
                w(4 + i, f"n_evals += {i + 1}")
                if chain.fail_pruned[i]:
                    w(4 + i, f"n_pruned += {chain.fail_pruned[i]}")
                w(4 + i, "n_rejected += 1")

            nest(0)
        w(2, f"for i in range({nslots}):")
        w(3, "slots[i] = _UNBOUND")

    if plan.replay_chain is not None:
        emit_replay("replay1", plan.replay_chain, plan.prefix_len)
    if plan.partial_chain is not None:
        emit_replay("replay2", plan.partial_chain, plan.partial_len)

    w(1, "if mode == 0:")
    if nslots:
        w(2, "if stop_depth:")
        w(3, "d0()")
        w(2, "else:")
        w(3, "emit()")
    else:
        w(2, "emit()")
    if plan.replay_chain is not None:
        w(1, "elif mode == 1:")
        w(2, "replay1()")
    if plan.partial_chain is not None:
        w(1, "elif mode == 2:")
        w(2, "replay2()")

    # Statistics flush: straight-line stores with the per-depth dict
    # keys ((label, bound-prefix) pairs) baked as constants.
    if nslots:
        w(1, "per_label = stats.candidates_per_label")
        w(1, "per_prefix = stats.candidates_per_prefix")
    for k, step in enumerate(plan.steps):
        label = step.label
        pname = f"pkey{k}"
        env[pname] = (label, plan.prefix_sets[k])
        w(1, f"if nv{k}:")
        w(2, f"per_label[{label!r}] = per_label.get({label!r}, 0) + nc{k}")
        w(2, f"prev = per_prefix.get({pname})")
        w(2, "if prev is None:")
        w(3, f"per_prefix[{pname}] = (nv{k}, nc{k})")
        w(2, "else:")
        w(3, f"per_prefix[{pname}] = (prev[0] + nv{k}, prev[1] + nc{k})")
    w(1, "stats.assignments_tried += n_tried")
    w(1, "stats.constraint_evals += n_evals")
    w(1, "stats.evals_pruned += n_pruned")
    w(1, "stats.partial_rejections += n_rejected")
    w(1, "stats.proposal_cache_hits += n_hits")
    w(1, "stats.fallbacks_to_universe += n_fallbacks")
    w(1, "stats.solutions += n_solutions")

    src = "\n".join(lines)
    name = getattr(plan.spec, "name", "spec")
    code = compile(src, f"<flatplan:{name}>", "exec")
    exec(code, env)
    return src, env["_search"]


def compile_plan(spec: IdiomSpec) -> FlatPlan:
    """The flat plan of ``spec`` (cached on the spec object)."""
    plan = getattr(spec, "_plan", None)
    if plan is None or plan.spec is not spec:
        plan = FlatPlan(spec)
        spec._plan = plan
    return plan


def detect_plan(
    ctx: SolverContext,
    spec: IdiomSpec,
    stats=None,
    limit: int | None = None,
    cache=None,
    _frontier_depth: int | None = None,
):
    """All assignments satisfying ``spec`` — the compiled engine.

    Drop-in equivalent of :func:`~repro.constraints.solver.detect`:
    identical solutions in identical order, identical search counters
    (``assignments_tried``, ``partial_rejections``, ``solutions``,
    ``fallbacks_to_universe``, candidate statistics, proposal cache
    hits, prefix reuses), and ``constraint_evals + evals_pruned`` equal
    to the interpreted engine's ``constraint_evals``.

    ``_frontier_depth`` is internal: enumerate the depth-``d`` search
    frontier (partial assignments of the first ``d`` labels) instead of
    full solutions — the producer of the shared prefix trie.
    """
    from .solver import SolverStats

    plan = compile_plan(spec)
    stats = stats if stats is not None else SolverStats()
    cache = cache if cache is not None else ctx.solver_cache
    nslots = len(plan.order)
    results: list[dict[str, Value]] = []
    stats.conjuncts_pruned += plan.conjuncts_pruned
    stop_depth = nslots if _frontier_depth is None else _frontier_depth
    limit_v = _NO_LIMIT if limit is None else limit

    # Resolve replay up front; the generated search function then runs
    # a fresh depth-0 search (mode 0), a full-prefix replay (mode 1)
    # or a partial-prefix trie replay (mode 2) — the replay bodies are
    # specialized into the function alongside the depth ladder.
    mode = 0
    frontier = None
    if _frontier_depth is None:
        if plan.prefix_len:
            prefix = _base_solutions(ctx, spec, stats, cache, limit)
            if prefix is not None:
                stats.prefix_reuses += 1
                mode = 1
                frontier = prefix
        elif plan.partial_base is not None:
            shared = _partial_frontier(ctx, plan, stats, cache, limit)
            if shared is not None:
                stats.trie_reuses += 1
                mode = 2
                frontier = shared

    plan.search(
        ctx,
        plan._slots,
        plan._view,
        cache.proposal_memo,
        cache.intersection_memo,
        cache.depth_memo,
        ctx.universe,
        results,
        limit_v,
        stop_depth,
        stats,
        mode,
        frontier,
    )
    return results


def _base_solutions(ctx, spec, stats, cache, limit):
    """Solved base-prefix tuples, or None — the plan-engine twin of
    :func:`~repro.constraints.solver._base_prefix_solutions` (same
    cache slot, same charge-the-first-caller accounting, same
    ``limit`` gate)."""
    from .solver import SolverStats

    base = spec.base
    solutions = cache.solutions_for(base)
    if solutions is None:
        if limit is not None:
            return None
        base_stats = SolverStats()
        solutions = detect_plan(ctx, base, stats=base_stats, cache=cache)
        cache.store_solutions(base, solutions)
        base_stats.solutions = 0
        base_stats.prefix_reuses = 0
        stats.merge(base_stats)
    return solutions


def _partial_frontier(ctx, plan, stats, cache, limit):
    """The declared base's depth-``d`` search frontier, or None.

    Computed at most once per cache by a truncated plan search of the
    base spec (effort charged to the requester, like full-prefix
    replay); a ``limit``-bounded search only ever replays a frontier
    some unbounded search already paid for.
    """
    from .solver import SolverStats

    key = (plan.partial_base, plan.partial_len)
    frontier = cache.prefix_trie.get(key)
    if frontier is None:
        if limit is not None:
            return None
        base_stats = SolverStats()
        frontier = detect_plan(
            ctx,
            plan.partial_base,
            stats=base_stats,
            cache=cache,
            _frontier_depth=plan.partial_len,
        )
        cache.prefix_trie[key] = frontier
        base_stats.solutions = 0
        base_stats.prefix_reuses = 0
        stats.merge(base_stats)
    return frontier
