"""The backtracking detection algorithm (Fig. 6 of the paper).

Given an :class:`~repro.constraints.core.IdiomSpec` — a label order
``i1..in`` and a root constraint ``c`` — :func:`detect` enumerates all
assignments ``x ∈ values(F)^I`` with ``c(x) = true`` by depth-first
search: bind the next label to each candidate, prune with the partial
predicate ``c_k`` (every atom with unbound labels replaced by true),
recurse.

Candidates for the next label come from constraint *proposals*
(successors of a bound block, operands of a bound instruction, ...);
only when nothing proposes does the solver fall back to the whole value
universe, which is what makes a well-chosen label order crucial (§3.3).

The solver hot path is **incremental**: each spec is pre-compiled
(:class:`CompiledSpec`) into a per-depth index of top-level conjuncts
that mention the label bound at that depth.  Binding label ``k`` then
re-checks only the newly-decidable/affected conjuncts instead of
re-walking the whole constraint tree — sound because a conjunct's
partial verdict only depends on the bindings of its own labels, so
unaffected conjuncts keep the verdict they produced at an earlier
depth.  The naive full-tree walk is kept behind ``incremental=False``
for differential testing, and both paths count conjunct evaluations in
:attr:`SolverStats.constraint_evals` (the CoreDiag-flavored metric: how
much redundant constraint evaluation was eliminated).

Search state is shared **across** ``detect`` calls on one
:class:`~repro.constraints.core.SolverContext` through
:class:`SharedSolverCache`: proposal lookups are memoized by conjunct
*identity* (the ``extends for-loop`` family reuses the same conjunct
objects, so the scalar and histogram specs hit each other's entries),
and a spec with a :attr:`~repro.constraints.core.IdiomSpec.base` replays
the base's solved prefix tuples instead of re-enumerating the shared
for-loop search space — the Bailleux & Boufkhad view of the extension
idioms as *constraint reductions* of one for-loop formulation.  Passing
``cache=SharedSolverCache()`` restores fully per-call state (the PR-1
engine), which the differential tests and the pipeline benchmark use as
the comparison baseline.

:func:`detect_brute_force` is the exponential §3.2 strawman, kept for
differential testing and for the ablation benchmark.
:func:`suggest_order` is an automatic label-order heuristic scored by
proposability, for specs whose author did not curate an order; given a
:class:`SolverStats` from previous runs it instead follows the
cheapest *measured* continuation at every step, conditioned on the
bound label set (cost-aware ordering).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..ir.values import Value
from .core import (
    Constraint,
    IdiomSpec,
    SolverContext,
    constraint_labels,
    top_level_conjuncts,
)
from .logical import intersect_proposals


@dataclass
class SolverStats:
    """Search effort counters, used by the enumeration-order ablation."""

    assignments_tried: int = 0
    partial_rejections: int = 0
    solutions: int = 0
    fallbacks_to_universe: int = 0
    candidates_per_label: dict[str, int] = field(default_factory=dict)
    #: Observed candidate-list sizes conditioned on the *bound prefix*:
    #: ``(label, frozenset of labels bound when the proposal was made)``
    #: maps to ``(visits, total candidates)``.  Unlike the flat
    #: per-label totals above, this does not conflate a label's position
    #: in the enumeration order with its proposal quality — a label that
    #: saw few candidates only because the search was already pruned is
    #: distinguishable from one that proposes cheaply from nothing.
    candidates_per_prefix: dict[tuple[str, frozenset[str]], tuple[int, int]] = (
        field(default_factory=dict)
    )
    #: Top-level conjunct ``partial_check`` evaluations — the redundant
    #: work the incremental index eliminates.
    constraint_evals: int = 0
    #: Proposal lookups answered from the (shared) memo table.
    proposal_cache_hits: int = 0
    #: Searches that replayed a base spec's solved prefix instead of
    #: re-enumerating it.
    prefix_reuses: int = 0
    #: Schedule slots the plan compiler's redundancy pass removed
    #: (vacuous, duplicate or implied conjunct checks), counted once
    #: per search that ran under the pruned plan.
    conjuncts_pruned: int = 0
    #: Constraint evaluations the interpreted engine would have
    #: performed that the compiled plan skipped — position-exact, so
    #: ``interpreted.constraint_evals == plan.constraint_evals +
    #: plan.evals_pruned`` for the same search.
    evals_pruned: int = 0
    #: Searches that replayed a partial (mid-order) base frontier from
    #: the shared prefix trie instead of re-enumerating it.
    trie_reuses: int = 0

    def record_candidates(self, label: str, bound: frozenset[str],
                          count: int) -> None:
        """Record one proposal of ``count`` candidates for ``label``
        made while exactly ``bound`` labels were assigned."""
        self.candidates_per_label[label] = (
            self.candidates_per_label.get(label, 0) + count
        )
        visits, total = self.candidates_per_prefix.get((label, bound), (0, 0))
        self.candidates_per_prefix[(label, bound)] = (visits + 1,
                                                      total + count)

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Accumulate ``other``'s counters into this one (in place).

        Used to aggregate feedback across runs — several functions, or
        several enumeration orders of the same spec — before handing the
        result to :func:`suggest_order`.  Returns ``self``.

        Every counter is a sum, so merging is **commutative and
        associative** (property-tested): a corpus-wide aggregate is the
        same whichever order the per-unit statistics arrive in — the
        property that makes the pipeline's persisted feedback artifact
        byte-identical between ``jobs=1`` and ``jobs=N`` runs.
        """
        self.assignments_tried += other.assignments_tried
        self.partial_rejections += other.partial_rejections
        self.solutions += other.solutions
        self.fallbacks_to_universe += other.fallbacks_to_universe
        self.constraint_evals += other.constraint_evals
        self.proposal_cache_hits += other.proposal_cache_hits
        self.prefix_reuses += other.prefix_reuses
        self.conjuncts_pruned += other.conjuncts_pruned
        self.evals_pruned += other.evals_pruned
        self.trie_reuses += other.trie_reuses
        for label, count in other.candidates_per_label.items():
            self.candidates_per_label[label] = (
                self.candidates_per_label.get(label, 0) + count
            )
        for key, (visits, total) in other.candidates_per_prefix.items():
            seen_visits, seen_total = self.candidates_per_prefix.get(
                key, (0, 0)
            )
            self.candidates_per_prefix[key] = (seen_visits + visits,
                                               seen_total + total)
        return self

    # -- serialization ----------------------------------------------------

    def canonical(self) -> tuple:
        """The counters as nested, deterministically-ordered tuples.

        Two stats objects describe the same observations if and only if
        their canonical forms are equal, regardless of dict insertion
        order — the comparison (and fingerprint) form the feedback
        store hashes.
        """
        return (
            self.assignments_tried,
            self.partial_rejections,
            self.solutions,
            self.fallbacks_to_universe,
            self.constraint_evals,
            self.proposal_cache_hits,
            self.prefix_reuses,
            self.conjuncts_pruned,
            self.evals_pruned,
            self.trie_reuses,
            tuple(sorted(self.candidates_per_label.items())),
            tuple(sorted(
                (label, tuple(sorted(bound)), visits, total)
                for (label, bound), (visits, total)
                in self.candidates_per_prefix.items()
            )),
        )

    def to_jsonable(self) -> dict:
        """Plain-JSON form, deterministically ordered.

        The inverse of :meth:`from_jsonable`.  ``candidates_per_prefix``
        keys are ``(label, frozenset)`` pairs, which JSON cannot
        express as object keys; they serialize as sorted
        ``[label, [bound...], visits, total]`` rows, so two equal stats
        objects always produce byte-identical JSON.
        """
        return {
            "assignments_tried": self.assignments_tried,
            "partial_rejections": self.partial_rejections,
            "solutions": self.solutions,
            "fallbacks_to_universe": self.fallbacks_to_universe,
            "constraint_evals": self.constraint_evals,
            "proposal_cache_hits": self.proposal_cache_hits,
            "prefix_reuses": self.prefix_reuses,
            "conjuncts_pruned": self.conjuncts_pruned,
            "evals_pruned": self.evals_pruned,
            "trie_reuses": self.trie_reuses,
            "candidates_per_label": dict(
                sorted(self.candidates_per_label.items())
            ),
            "candidates_per_prefix": [
                [label, sorted(bound), visits, total]
                for (label, bound), (visits, total) in sorted(
                    self.candidates_per_prefix.items(),
                    key=lambda item: (item[0][0], tuple(sorted(item[0][1]))),
                )
            ],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "SolverStats":
        """Rebuild a stats object from :meth:`to_jsonable` data."""
        return cls(
            assignments_tried=data.get("assignments_tried", 0),
            partial_rejections=data.get("partial_rejections", 0),
            solutions=data.get("solutions", 0),
            fallbacks_to_universe=data.get("fallbacks_to_universe", 0),
            constraint_evals=data.get("constraint_evals", 0),
            proposal_cache_hits=data.get("proposal_cache_hits", 0),
            prefix_reuses=data.get("prefix_reuses", 0),
            conjuncts_pruned=data.get("conjuncts_pruned", 0),
            evals_pruned=data.get("evals_pruned", 0),
            trie_reuses=data.get("trie_reuses", 0),
            candidates_per_label=dict(data.get("candidates_per_label", {})),
            candidates_per_prefix={
                (label, frozenset(bound)): (visits, total)
                for label, bound, visits, total
                in data.get("candidates_per_prefix", [])
            },
        )

    def copy(self) -> "SolverStats":
        """An independent deep copy (merge mutates in place)."""
        return SolverStats().merge(self)

    def decay(self, keep: float) -> "SolverStats":
        """Scale every counter down to ``keep`` of its value (in place).

        The feedback store's retention primitive: ``decay(0.5)`` halves
        the weight of everything recorded so far, so newer observations
        merged afterwards dominate older ones (an exponential window).
        Counters are floored to integers — the artifact stays exact,
        serializable, and mergeable — and dict entries that decay to
        nothing are dropped (a prefix row whose visit count reaches 0
        carries no usable mean and would divide by zero downstream).

        ``keep=1.0`` is the identity; ``keep=0.0`` empties the stats.
        Returns ``self``.
        """
        if not 0.0 <= keep <= 1.0:
            raise ValueError(f"keep must be within [0, 1], got {keep}")
        if keep == 1.0:
            return self
        scale = lambda value: int(value * keep)  # noqa: E731
        self.assignments_tried = scale(self.assignments_tried)
        self.partial_rejections = scale(self.partial_rejections)
        self.solutions = scale(self.solutions)
        self.fallbacks_to_universe = scale(self.fallbacks_to_universe)
        self.constraint_evals = scale(self.constraint_evals)
        self.proposal_cache_hits = scale(self.proposal_cache_hits)
        self.prefix_reuses = scale(self.prefix_reuses)
        self.conjuncts_pruned = scale(self.conjuncts_pruned)
        self.evals_pruned = scale(self.evals_pruned)
        self.trie_reuses = scale(self.trie_reuses)
        self.candidates_per_label = {
            label: scaled
            for label, count in self.candidates_per_label.items()
            if (scaled := scale(count))
        }
        self.candidates_per_prefix = {
            key: (visits, scale(total))
            for key, (raw_visits, total)
            in self.candidates_per_prefix.items()
            if (visits := scale(raw_visits))
        }
        return self


class SharedSolverCache:
    """Search state hoisted out of individual ``detect`` calls.

    One instance lives on each :class:`~repro.constraints.core.
    SolverContext` (``ctx.solver_cache``); every spec run on that
    context shares it.  It holds

    * ``proposal_memo`` — conjunct proposal lookups, keyed by the
      conjunct's identity plus the bindings of its own labels.  Conjunct
      objects shared between specs (the ``extends`` family) therefore
      share entries across detects;
    * ``base_solutions`` — complete solution lists of base specs, keyed
      by spec identity.  An extending spec replays these as its solved
      prefix (see :meth:`CompiledSpec.prefix_plan`); the scalar and
      histogram idioms both extend ``for-loop``, so its search runs
      once per context instead of once per spec;
    * ``prefix_trie`` — *partial* search states for the plan engine:
      the depth-``d`` frontier of a base spec's search, keyed
      ``(base spec, d)``.  An ``extends`` spec whose enumeration order
      diverges from the base mid-way (so full-prefix replay is
      unavailable) replays the shared frontier at the divergence depth
      (see :mod:`~repro.constraints.plan`);
    * ``intersection_memo`` — plan-engine memo of
      :func:`~repro.constraints.logical.intersect_proposals` results,
      keyed by the identities of the memoized proposal lists being
      intersected (pure function of lists that live in
      ``proposal_memo``, so entries stay valid for the cache's
      lifetime);
    * ``depth_memo`` — plan-engine memo of a whole depth's final
      candidate list, keyed ``(plan step, bound-dependency value ids)``.
      A hit replaces the per-row proposal lookups and the intersection
      with one dict probe; since every row's memo entry necessarily
      exists by then, the interpreted engine would score one
      ``proposal_cache_hits`` per row, which the plan engine mirrors
      in bulk.
    """

    def __init__(self) -> None:
        #: Keys hold the conjunct/spec *objects* themselves (constraints
        #: hash by identity), which both addresses them by identity and
        #: pins them against garbage collection — a recycled ``id()``
        #: can therefore never alias a stale entry.
        self.proposal_memo: dict = {}
        self.base_solutions: dict[IdiomSpec, list[dict[str, Value]]] = {}
        self.prefix_trie: dict[
            tuple[IdiomSpec, int], list[dict[str, Value]]
        ] = {}
        self.intersection_memo: dict[tuple, list[Value]] = {}
        self.depth_memo: dict[tuple, tuple[list[Value], bool]] = {}

    def solutions_for(self, spec: IdiomSpec):
        """Cached full solution list for ``spec``, or None."""
        return self.base_solutions.get(spec)

    def store_solutions(self, spec: IdiomSpec, solutions) -> None:
        """Record the complete solution list of ``spec``."""
        self.base_solutions[spec] = solutions

    def clear(self) -> None:
        """Drop all shared search state (frees the pinned objects)."""
        self.proposal_memo.clear()
        self.base_solutions.clear()
        self.prefix_trie.clear()
        self.intersection_memo.clear()
        self.depth_memo.clear()


class CompiledSpec:
    """A spec pre-compiled for the incremental solver.

    * ``conjuncts`` — the root constraint flattened into top-level
      conjuncts (the root itself when it is not a conjunction);
    * ``schedule[k]`` — indices of the conjuncts that mention the label
      bound at depth ``k`` and therefore must be (re-)checked there;
    * ``proposers[label]`` — indices of the conjuncts that mention
      ``label`` and may propose candidates for it;
    * ``prefix_len`` / ``replay_indices`` — when the spec has a
      :attr:`~repro.constraints.core.IdiomSpec.base` whose conjunct
      objects it reuses verbatim, the base's label count and the
      indices of the *extension* conjuncts that touch base labels (the
      ones that must be re-validated when a solved base prefix is
      replayed).
    """

    def __init__(self, spec: IdiomSpec):
        self.spec = spec
        self.conjuncts: list[Constraint] = top_level_conjuncts(
            spec.constraint
        )
        self.labelsets: list[frozenset[str]] = [
            frozenset(constraint_labels(c)) for c in self.conjuncts
        ]
        order = spec.label_order
        self.schedule: list[tuple[int, ...]] = [
            tuple(
                i for i, labels in enumerate(self.labelsets)
                if order[k] in labels
            )
            for k in range(len(order))
        ]
        self.proposers: dict[str, tuple[int, ...]] = {
            label: tuple(
                i for i, labels in enumerate(self.labelsets)
                if label in labels
            )
            for label in order
        }
        #: True for conjuncts that override the base ``propose``.
        self.can_propose: list[bool] = [
            type(c).propose is not Constraint.propose for c in self.conjuncts
        ]
        self._compile_prefix()

    def _compile_prefix(self) -> None:
        """Validate and index the shared base prefix, if any.

        Prefix replay is only sound when the base's conjunct *objects*
        appear verbatim among this spec's conjuncts (ICSL ``extends``
        guarantees that: base conjuncts are prepended by reference), so
        a base solution is known to satisfy them exactly.
        """
        self.prefix_len = 0
        self.replay_indices: tuple[int, ...] = ()
        base = self.spec.base
        if base is None:
            return
        base_conjuncts = top_level_conjuncts(base.constraint)
        own_ids = {id(c) for c in self.conjuncts}
        if any(id(c) not in own_ids for c in base_conjuncts):
            return  # conjuncts were rebuilt, not shared: cannot replay
        base_ids = {id(c) for c in base_conjuncts}
        prefix_set = frozenset(base.label_order)
        self.prefix_len = len(base.label_order)
        self.replay_indices = tuple(
            i
            for i, c in enumerate(self.conjuncts)
            if id(c) not in base_ids and (self.labelsets[i] & prefix_set)
        )

    def propose(
        self,
        ctx: SolverContext,
        assignment: dict[str, Value],
        label: str,
        memo: dict,
        stats: SolverStats,
    ) -> list[Value] | None:
        """Candidates for ``label``; mirrors ``ConstraintAnd.propose``
        (intersection, ordered by the smallest proposal) with proposal
        lookups memoized in the shared cache.

        A conjunct's proposal only depends on the bindings of its own
        labels, so the memo key is the conjunct's identity plus that
        restriction — shared conjunct objects hit across specs.
        """
        proposals: list[list[Value]] = []
        for i in self.proposers.get(label, ()):
            conjunct = self.conjuncts[i]
            # The conjunct object itself is part of the key: identity
            # addressing that also pins it alive in the shared cache
            # (value ids are stable — the context keeps the function's
            # values alive for the cache's whole lifetime).
            key = (
                conjunct,
                label,
                tuple(
                    (l, id(assignment[l]))
                    for l in sorted(self.labelsets[i])
                    if l in assignment
                ),
            )
            try:
                candidates = memo[key]
                stats.proposal_cache_hits += 1
            except KeyError:
                candidates = conjunct.propose(ctx, assignment, label)
                if candidates is not None:
                    candidates = list(candidates)
                memo[key] = candidates
            if candidates is not None:
                proposals.append(candidates)
        if not proposals:
            return None
        return intersect_proposals(proposals)


def compile_spec(spec: IdiomSpec) -> CompiledSpec:
    """The compiled form of ``spec`` (cached on the spec object)."""
    compiled = getattr(spec, "_compiled", None)
    if compiled is None or compiled.spec is not spec:
        compiled = CompiledSpec(spec)
        spec._compiled = compiled
    return compiled


def detect(
    ctx: SolverContext,
    spec: IdiomSpec,
    stats: SolverStats | None = None,
    limit: int | None = None,
    incremental: bool = True,
    cache: SharedSolverCache | None = None,
    engine: str | None = None,
) -> list[dict[str, Value]]:
    """All assignments satisfying ``spec`` in ``ctx``'s function.

    ``engine`` picks the execution strategy:

    * ``"compiled"`` — the flat-evaluation-plan engine
      (:func:`~repro.constraints.plan.detect_plan`): slot-indexed atom
      closures, compile-time redundancy pruning (recorded in
      ``SolverStats.evals_pruned``), optional vectorized candidate
      filtering and partial-prefix trie replay.  Identical solutions
      and search counters; ``constraint_evals`` reflects only the
      evaluations actually performed;
    * ``"interpreted"`` — this module's constraint-object interpreter,
      the differential oracle.  ``incremental=False`` further selects
      the naive full-tree walk (the original Fig. 6 formulation)
      instead of the per-depth conjunct index;
    * None (default) — ``"compiled"`` when ``incremental`` is true,
      the interpreted tree walk otherwise, preserving the historical
      meaning of ``incremental=False``.

    Both engines accept/reject exactly the same partial assignments
    and return solutions in the same order.

    ``cache`` defaults to ``ctx.solver_cache`` — the per-context shared
    state (memoized proposals, solved base prefixes).  Pass a fresh
    :class:`SharedSolverCache` for fully per-call state (the PR-1
    engine; used by differential tests and the pipeline benchmark).
    """
    if engine is None:
        engine = "compiled" if incremental else "interpreted"
    if engine == "compiled":
        from .plan import detect_plan

        return detect_plan(ctx, spec, stats=stats, limit=limit, cache=cache)
    if engine != "interpreted":
        raise ValueError(
            f"unknown solver engine {engine!r} "
            "(expected 'compiled' or 'interpreted')"
        )
    compiled = compile_spec(spec)
    order = spec.label_order
    conjuncts = compiled.conjuncts
    results: list[dict[str, Value]] = []
    assignment: dict[str, Value] = {}
    stats = stats if stats is not None else SolverStats()
    cache = cache if cache is not None else ctx.solver_cache
    memo = cache.proposal_memo
    all_indices = tuple(range(len(conjuncts)))
    # The bound-label set at depth k is always exactly order[:k] (the
    # replayed prefix is an order prefix too) — precompute the
    # frozensets once instead of rebuilding one per search node.
    prefix_sets = [
        frozenset(order[:k]) for k in range(len(order) + 1)
    ]

    def partial_ok(k: int) -> bool:
        indices = compiled.schedule[k] if incremental else all_indices
        for i in indices:
            stats.constraint_evals += 1
            if not conjuncts[i].partial_check(ctx, assignment):
                return False
        return True

    def recurse(k: int) -> bool:
        if limit is not None and len(results) >= limit:
            return False
        if k == len(order):
            results.append(dict(assignment))
            stats.solutions += 1
            return True
        label = order[k]
        candidates = compiled.propose(ctx, assignment, label, memo, stats)
        if candidates is None:
            candidates = ctx.universe
            stats.fallbacks_to_universe += 1
        stats.record_candidates(label, prefix_sets[k], len(candidates))
        for value in candidates:
            assignment[label] = value
            stats.assignments_tried += 1
            if partial_ok(k):
                if not recurse(k + 1):
                    assignment.pop(label, None)
                    return False
            else:
                stats.partial_rejections += 1
        assignment.pop(label, None)
        return True

    prefix = _base_prefix_solutions(
        ctx, spec, compiled, stats, cache, incremental, limit
    )
    if prefix is None:
        recurse(0)
    else:
        stats.prefix_reuses += 1
        k = compiled.prefix_len
        for base_solution in prefix:
            if limit is not None and len(results) >= limit:
                break
            assignment.clear()
            assignment.update(base_solution)
            # Re-validate the extension conjuncts that touch base
            # labels — the base search never saw them.  (The base's own
            # conjuncts hold exactly: a base solution satisfies them by
            # construction, which is what makes the replay sound.)
            ok = True
            for i in compiled.replay_indices:
                stats.constraint_evals += 1
                if not conjuncts[i].partial_check(ctx, assignment):
                    stats.partial_rejections += 1
                    ok = False
                    break
            if ok:
                recurse(k)
        assignment.clear()
    return results


def _base_prefix_solutions(
    ctx: SolverContext,
    spec: IdiomSpec,
    compiled: CompiledSpec,
    stats: SolverStats,
    cache: SharedSolverCache,
    incremental: bool,
    limit: int | None,
):
    """Solved base-prefix tuples for an extending spec, or None.

    The base's solution list is computed at most once per cache (the
    first extending spec pays; later specs replay for free) by a nested
    :func:`detect` whose search effort is charged to the caller's
    ``stats``.  A ``limit``-bounded search never *computes* the base
    (full base enumeration could dwarf the bounded search it serves) —
    it only replays a list some unbounded search already paid for.
    """
    if not incremental or compiled.prefix_len == 0:
        return None
    base = spec.base
    solutions = cache.solutions_for(base)
    if solutions is None:
        if limit is not None:
            return None
        base_stats = SolverStats()
        # Stay on the interpreted engine: a caller that chose it (the
        # differential oracle) must not have its base search silently
        # routed through the compiled plan.
        solutions = detect(
            ctx, base, stats=base_stats, cache=cache, engine="interpreted"
        )
        cache.store_solutions(base, solutions)
        # Charge the base search's effort — but not its solution count
        # (or prefix-reuse tally) — to the caller: the prefix work
        # happened on this detect's dime.
        base_stats.solutions = 0
        base_stats.prefix_reuses = 0
        stats.merge(base_stats)
    return solutions


def detect_brute_force(
    ctx: SolverContext, spec: IdiomSpec, stats: SolverStats | None = None
) -> list[dict[str, Value]]:
    """Enumerate ``values(F)^I`` and filter — exponential, tests only."""
    order = spec.label_order
    root = spec.constraint
    results = []
    stats = stats if stats is not None else SolverStats()
    for combo in itertools.product(ctx.universe, repeat=len(order)):
        stats.assignments_tried += 1
        assignment = dict(zip(order, combo))
        if root.check(ctx, assignment):
            results.append(assignment)
            stats.solutions += 1
    return results


#: Memoized :func:`suggest_order` results, keyed by
#: ``(spec name, current order, seeded prefix, cache token)``.  The
#: token names the *feedback content* (the feedback store passes its
#: fingerprint), so persistent serving workers that re-derive orders
#: for every feedback refresh pay the greedy computation once per
#: (spec, store-state) pair instead of once per request.  Bounded: the
#: cache resets when it outgrows ``_ORDER_CACHE_LIMIT`` distinct keys.
_ORDER_CACHE: dict[tuple, tuple[str, ...]] = {}
_ORDER_CACHE_LIMIT = 512


def suggest_order(
    spec: IdiomSpec,
    feedback: SolverStats | None = None,
    prefix: tuple[str, ...] = (),
    cache_token: str | None = None,
) -> tuple[str, ...]:
    """An automatic enumeration order scored by proposability (§3.3).

    ``prefix`` seeds the greedy placement with labels already decided
    (they open the returned order verbatim).  A spec that ``extends``
    a base must keep the base's label order as its prefix for the
    solver's prefix replay to stay available, so the feedback store
    reorders such specs with ``prefix=spec.base.label_order`` — the
    measured statistics of a replayed search all start at the
    fully-bound base prefix, which is exactly where the seeded greedy
    placement resumes.

    ``cache_token`` memoizes the result (see :data:`_ORDER_CACHE`);
    pass a value that changes whenever ``feedback`` does.

    Greedy: repeatedly pick the label with the best chance of being
    *proposed* rather than enumerated from the universe — a label
    mentioned by a proposing conjunct whose other labels are already
    placed scores highest, single-label proposing atoms seed the order,
    and ties fall back to the curated order for determinism.  The
    result is a permutation of ``spec.label_order``, so solutions are
    unchanged by construction (and by test).

    ``feedback`` switches on **cost-aware** ordering: given the
    :class:`SolverStats` of previous runs of this spec (on a
    representative function — :meth:`SolverStats.merge` aggregates
    several runs), the order follows the cheapest *measured
    continuation* at every step.  The statistics are conditioned on the
    bound prefix — :attr:`SolverStats.candidates_per_prefix` keys
    ``(label, bound label set)`` — because a proposal's candidate list
    depends only on which labels are assigned, never on the order they
    were assigned in.  A flat per-label total would conflate a label's
    position in the observed order with its proposal quality (a label
    deep in the order sees few candidates merely because the search was
    already pruned); the conditioned signal does not.  At each step the
    label with the smallest mean observed candidate list *for exactly
    the current bound set* wins; labels never measured under that bound
    set are assumed expensive, so the heuristic never trades measured
    territory for unmeasured territory — feedback from a run of some
    order is therefore never worse than that order itself.  Where
    nothing was measured (or with ``feedback=None``) the static
    heuristic decides, unchanged.
    """
    prefix = tuple(prefix)
    if cache_token is not None:
        # The constraint object itself disambiguates same-named specs
        # (a user file replacing a built-in keeps the name but not the
        # constraint objects) — identity addressing that also pins the
        # object, so a recycled id() can never alias a stale entry.
        cache_key = (spec.name, spec.constraint, spec.label_order,
                     prefix, cache_token)
        cached = _ORDER_CACHE.get(cache_key)
        if cached is not None:
            return cached
    compiled = compile_spec(spec)
    original = spec.label_order
    position = {label: i for i, label in enumerate(original)}
    per_prefix = dict(feedback.candidates_per_prefix) if feedback else {}
    unknown = [label for label in prefix if label not in position]
    if unknown:
        raise ValueError(
            f"spec {spec.name!r}: prefix labels {unknown} are not in the "
            f"label order"
        )
    placed: list[str] = list(prefix)
    placed_set: set[str] = set(prefix)

    def score(label: str) -> float:
        best = 0.0
        for i, labels in enumerate(compiled.labelsets):
            if label not in labels:
                continue
            others = labels - {label}
            bound = (
                len(others & placed_set) / len(others) if others else 1.0
            )
            value = bound
            if compiled.can_propose[i]:
                value += 0.5 + bound
            best = max(best, value)
        return best

    def observed_cost(label: str) -> float | None:
        """Mean measured candidate-list size for binding ``label`` with
        exactly the current ``placed_set`` bound, or None if that
        continuation was never observed."""
        entry = per_prefix.get((label, frozenset(placed_set)))
        if entry is None:
            return None
        visits, total = entry
        return total / max(1, visits)

    while len(placed) < len(original):
        remaining = [label for label in original if label not in placed_set]
        costs = {label: observed_cost(label) for label in remaining}
        if any(cost is not None for cost in costs.values()):
            # Cost-aware step: cheapest measured continuation first;
            # unmeasured continuations are assumed expensive.
            best_label = min(
                remaining,
                key=lambda label: (
                    costs[label] is None,
                    costs[label] if costs[label] is not None else 0.0,
                    -score(label),
                    position[label],
                ),
            )
        else:
            best_label = min(
                remaining,
                key=lambda label: (-score(label), position[label]),
            )
        placed.append(best_label)
        placed_set.add(best_label)
    result = tuple(placed)
    if cache_token is not None:
        if len(_ORDER_CACHE) >= _ORDER_CACHE_LIMIT:
            _ORDER_CACHE.clear()
        _ORDER_CACHE[cache_key] = result
    return result
