"""The backtracking detection algorithm (Fig. 6 of the paper).

Given an :class:`~repro.constraints.core.IdiomSpec` — a label order
``i1..in`` and a root constraint ``c`` — :func:`detect` enumerates all
assignments ``x ∈ values(F)^I`` with ``c(x) = true`` by depth-first
search: bind the next label to each candidate, prune with the partial
predicate ``c_k`` (every atom with unbound labels replaced by true),
recurse.

Candidates for the next label come from constraint *proposals*
(successors of a bound block, operands of a bound instruction, ...);
only when nothing proposes does the solver fall back to the whole value
universe, which is what makes a well-chosen label order crucial (§3.3).

:func:`detect_brute_force` is the exponential §3.2 strawman, kept for
differential testing and for the ablation benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..ir.values import Value
from .core import IdiomSpec, SolverContext


@dataclass
class SolverStats:
    """Search effort counters, used by the enumeration-order ablation."""

    assignments_tried: int = 0
    partial_rejections: int = 0
    solutions: int = 0
    fallbacks_to_universe: int = 0
    candidates_per_label: dict[str, int] = field(default_factory=dict)


def detect(
    ctx: SolverContext,
    spec: IdiomSpec,
    stats: SolverStats | None = None,
    limit: int | None = None,
) -> list[dict[str, Value]]:
    """All assignments satisfying ``spec`` in ``ctx``'s function."""
    order = spec.label_order
    root = spec.constraint
    results: list[dict[str, Value]] = []
    assignment: dict[str, Value] = {}
    stats = stats if stats is not None else SolverStats()

    def recurse(k: int) -> bool:
        if limit is not None and len(results) >= limit:
            return False
        if k == len(order):
            results.append(dict(assignment))
            stats.solutions += 1
            return True
        label = order[k]
        candidates = root.propose(ctx, assignment, label)
        if candidates is None:
            candidates = ctx.universe
            stats.fallbacks_to_universe += 1
        candidates = list(candidates)
        stats.candidates_per_label[label] = (
            stats.candidates_per_label.get(label, 0) + len(candidates)
        )
        for value in candidates:
            assignment[label] = value
            stats.assignments_tried += 1
            if root.partial_check(ctx, assignment):
                if not recurse(k + 1):
                    assignment.pop(label, None)
                    return False
            else:
                stats.partial_rejections += 1
        assignment.pop(label, None)
        return True

    recurse(0)
    return results


def detect_brute_force(
    ctx: SolverContext, spec: IdiomSpec, stats: SolverStats | None = None
) -> list[dict[str, Value]]:
    """Enumerate ``values(F)^I`` and filter — exponential, tests only."""
    order = spec.label_order
    root = spec.constraint
    results = []
    stats = stats if stats is not None else SolverStats()
    for combo in itertools.product(ctx.universe, repeat=len(order)):
        stats.assignments_tried += 1
        assignment = dict(zip(order, combo))
        if root.check(ctx, assignment):
            results.append(assignment)
            stats.solutions += 1
    return results
