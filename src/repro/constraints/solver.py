"""The backtracking detection algorithm (Fig. 6 of the paper).

Given an :class:`~repro.constraints.core.IdiomSpec` — a label order
``i1..in`` and a root constraint ``c`` — :func:`detect` enumerates all
assignments ``x ∈ values(F)^I`` with ``c(x) = true`` by depth-first
search: bind the next label to each candidate, prune with the partial
predicate ``c_k`` (every atom with unbound labels replaced by true),
recurse.

Candidates for the next label come from constraint *proposals*
(successors of a bound block, operands of a bound instruction, ...);
only when nothing proposes does the solver fall back to the whole value
universe, which is what makes a well-chosen label order crucial (§3.3).

The solver hot path is **incremental**: each spec is pre-compiled
(:class:`CompiledSpec`) into a per-depth index of top-level conjuncts
that mention the label bound at that depth.  Binding label ``k`` then
re-checks only the newly-decidable/affected conjuncts instead of
re-walking the whole constraint tree — sound because a conjunct's
partial verdict only depends on the bindings of its own labels, so
unaffected conjuncts keep the verdict they produced at an earlier
depth.  The naive full-tree walk is kept behind ``incremental=False``
for differential testing, and both paths count conjunct evaluations in
:attr:`SolverStats.constraint_evals` (the CoreDiag-flavored metric: how
much redundant constraint evaluation was eliminated).

:func:`detect_brute_force` is the exponential §3.2 strawman, kept for
differential testing and for the ablation benchmark.
:func:`suggest_order` is an automatic label-order heuristic scored by
proposability, for specs whose author did not curate an order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..ir.values import Value
from .core import Constraint, IdiomSpec, SolverContext, constraint_labels
from .logical import ConstraintAnd, intersect_proposals


@dataclass
class SolverStats:
    """Search effort counters, used by the enumeration-order ablation."""

    assignments_tried: int = 0
    partial_rejections: int = 0
    solutions: int = 0
    fallbacks_to_universe: int = 0
    candidates_per_label: dict[str, int] = field(default_factory=dict)
    #: Top-level conjunct ``partial_check`` evaluations — the redundant
    #: work the incremental index eliminates.
    constraint_evals: int = 0
    #: Proposal lookups answered from the per-search memo table.
    proposal_cache_hits: int = 0


class CompiledSpec:
    """A spec pre-compiled for the incremental solver.

    * ``conjuncts`` — the root constraint flattened into top-level
      conjuncts (the root itself when it is not a conjunction);
    * ``schedule[k]`` — indices of the conjuncts that mention the label
      bound at depth ``k`` and therefore must be (re-)checked there;
    * ``proposers[label]`` — indices of the conjuncts that mention
      ``label`` and may propose candidates for it.
    """

    def __init__(self, spec: IdiomSpec):
        self.spec = spec
        root = spec.constraint
        if isinstance(root, ConstraintAnd):
            self.conjuncts: list[Constraint] = list(root.children)
        else:
            self.conjuncts = [root]
        self.labelsets: list[frozenset[str]] = [
            frozenset(constraint_labels(c)) for c in self.conjuncts
        ]
        order = spec.label_order
        self.schedule: list[tuple[int, ...]] = [
            tuple(
                i for i, labels in enumerate(self.labelsets)
                if order[k] in labels
            )
            for k in range(len(order))
        ]
        self.proposers: dict[str, tuple[int, ...]] = {
            label: tuple(
                i for i, labels in enumerate(self.labelsets)
                if label in labels
            )
            for label in order
        }
        #: True for conjuncts that override the base ``propose``.
        self.can_propose: list[bool] = [
            type(c).propose is not Constraint.propose for c in self.conjuncts
        ]

    def propose(
        self,
        ctx: SolverContext,
        assignment: dict[str, Value],
        label: str,
        memo: dict,
        stats: SolverStats,
    ) -> list[Value] | None:
        """Candidates for ``label``; mirrors ``ConstraintAnd.propose``
        (intersection, ordered by the smallest proposal) with proposal
        lookups memoized per search.

        A conjunct's proposal only depends on the bindings of its own
        labels, so the memo key is the conjunct plus that restriction.
        """
        proposals: list[list[Value]] = []
        for i in self.proposers.get(label, ()):
            key = (
                i,
                label,
                tuple(
                    (l, id(assignment[l]))
                    for l in sorted(self.labelsets[i])
                    if l in assignment
                ),
            )
            try:
                candidates = memo[key]
                stats.proposal_cache_hits += 1
            except KeyError:
                candidates = self.conjuncts[i].propose(ctx, assignment, label)
                if candidates is not None:
                    candidates = list(candidates)
                memo[key] = candidates
            if candidates is not None:
                proposals.append(candidates)
        if not proposals:
            return None
        return intersect_proposals(proposals)


def compile_spec(spec: IdiomSpec) -> CompiledSpec:
    """The compiled form of ``spec`` (cached on the spec object)."""
    compiled = getattr(spec, "_compiled", None)
    if compiled is None or compiled.spec is not spec:
        compiled = CompiledSpec(spec)
        spec._compiled = compiled
    return compiled


def detect(
    ctx: SolverContext,
    spec: IdiomSpec,
    stats: SolverStats | None = None,
    limit: int | None = None,
    incremental: bool = True,
) -> list[dict[str, Value]]:
    """All assignments satisfying ``spec`` in ``ctx``'s function.

    ``incremental=False`` re-checks the whole constraint tree after
    every binding (the original Fig. 6 formulation); the default
    indexed path checks only conjuncts affected by the newest binding.
    Both accept/reject exactly the same partial assignments and return
    solutions in the same order.
    """
    compiled = compile_spec(spec)
    order = spec.label_order
    conjuncts = compiled.conjuncts
    results: list[dict[str, Value]] = []
    assignment: dict[str, Value] = {}
    stats = stats if stats is not None else SolverStats()
    memo: dict = {}
    all_indices = tuple(range(len(conjuncts)))

    def partial_ok(k: int) -> bool:
        indices = compiled.schedule[k] if incremental else all_indices
        for i in indices:
            stats.constraint_evals += 1
            if not conjuncts[i].partial_check(ctx, assignment):
                return False
        return True

    def recurse(k: int) -> bool:
        if limit is not None and len(results) >= limit:
            return False
        if k == len(order):
            results.append(dict(assignment))
            stats.solutions += 1
            return True
        label = order[k]
        candidates = compiled.propose(ctx, assignment, label, memo, stats)
        if candidates is None:
            candidates = ctx.universe
            stats.fallbacks_to_universe += 1
        stats.candidates_per_label[label] = (
            stats.candidates_per_label.get(label, 0) + len(candidates)
        )
        for value in candidates:
            assignment[label] = value
            stats.assignments_tried += 1
            if partial_ok(k):
                if not recurse(k + 1):
                    assignment.pop(label, None)
                    return False
            else:
                stats.partial_rejections += 1
        assignment.pop(label, None)
        return True

    recurse(0)
    return results


def detect_brute_force(
    ctx: SolverContext, spec: IdiomSpec, stats: SolverStats | None = None
) -> list[dict[str, Value]]:
    """Enumerate ``values(F)^I`` and filter — exponential, tests only."""
    order = spec.label_order
    root = spec.constraint
    results = []
    stats = stats if stats is not None else SolverStats()
    for combo in itertools.product(ctx.universe, repeat=len(order)):
        stats.assignments_tried += 1
        assignment = dict(zip(order, combo))
        if root.check(ctx, assignment):
            results.append(assignment)
            stats.solutions += 1
    return results


def suggest_order(spec: IdiomSpec) -> tuple[str, ...]:
    """An automatic enumeration order scored by proposability (§3.3).

    Greedy: repeatedly pick the label with the best chance of being
    *proposed* rather than enumerated from the universe — a label
    mentioned by a proposing conjunct whose other labels are already
    placed scores highest, single-label proposing atoms seed the order,
    and ties fall back to the curated order for determinism.  The
    result is a permutation of ``spec.label_order``, so solutions are
    unchanged by construction (and by test).
    """
    compiled = compile_spec(spec)
    original = spec.label_order
    position = {label: i for i, label in enumerate(original)}
    placed: list[str] = []
    placed_set: set[str] = set()

    def score(label: str) -> float:
        best = 0.0
        for i, labels in enumerate(compiled.labelsets):
            if label not in labels:
                continue
            others = labels - {label}
            bound = (
                len(others & placed_set) / len(others) if others else 1.0
            )
            value = bound
            if compiled.can_propose[i]:
                value += 0.5 + bound
            best = max(best, value)
        return best

    while len(placed) < len(original):
        best_label = min(
            (label for label in original if label not in placed_set),
            key=lambda label: (-score(label), position[label]),
        )
        placed.append(best_label)
        placed_set.add(best_label)
    return tuple(placed)
