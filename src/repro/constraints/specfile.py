"""External constraint-specification files (§3.4 future work).

§3.4: *"In the future such specifications may be read from external
files at runtime, avoiding the need for recompilation to experiment
with analysis passes."*  This module implements that: a small textual
language — ICSL, the *idiom constraint specification language* — whose
statements map 1:1 onto the atomic constraints, loaded at runtime into
ordinary :class:`~repro.constraints.core.IdiomSpec` objects the
unmodified solver executes.  The shipped ``specs/*.icsl`` files are
complete ports of the three native idiom specifications; see
``docs/icsl.md`` for a tutorial.

Grammar (line oriented; ``#`` and ``;`` start comments)::

    idiom NAME [extends BASE] {
      order: label1 label2 ...
      ATOM(args) [commutative]
      ATOM(args) | ATOM(args)             # disjunction
      (ATOM(a) & ATOM(b)) | ATOM(c)       # nested conjunction group
    }

Each statement line is one conjunct of the idiom; within a line ``|``
and ``&`` combine atoms, with parentheses for grouping.  ``extends``
prepends every conjunct of a previously defined (or shipped built-in)
idiom; the extending idiom restates the full label order.

Structural atoms::

    edge(a, b)              CFG edge a -> b
    branch(block, target)   block ends in ``br target``
    condbranch(b, c, t, e)  block ends in ``br c, t, e``
    dominates(a, b)         postdominates / strictlydominates /
                            strictlypostdominates likewise
    blocked(a, via, c)      every path a->c passes via
    sese(begin, end)        single-entry single-exit region
    opcode(x, OP, ops...)   x is an OP instruction with those operands
                            (`_` skips a position)
    phi2(x, a, b)           x = Φ(a, b)
    phiedge(phi, v, block)  v flows into phi from block
    inblock(x, block)
    constant(x)             x ∈ constant (constants/arguments/globals)
    defdom(x, block)        x's definition dominates block
    invariant(x, block)     shorthand for constant(x) | defdom(x, block)
    distinct(a, b, ...)

Named predicate atoms (see :mod:`repro.constraints.predicates`)::

    natural_loop(header, body, latch, entry, exit)
    update_in_loop(header, update)
    store_directly_in_loop(header, store)
    load_before_store(load, store)

Generalized graph domination (§3.1.2)::

    flow(output, header, sources=a+b, rejected=i, forbidden=p,
         index=i, affine, noloads)

``output`` is the sliced value, ``header`` the loop header; ``sources``
are allowed origins, ``rejected`` forbidden values, ``forbidden`` base
pointers loads may not touch, ``index`` values additionally allowed in
address computations; ``affine`` requires affine load indices and
``noloads`` forbids in-loop reads.  The control slice automatically
rejects the sources (conditions may not observe partial results).
"""

from __future__ import annotations

import os
import re

from .atomic import (
    Blocked,
    CFGEdge,
    DefDominatesBlock,
    Distinct,
    Dominates,
    EndsInCondBranch,
    EndsInUncondBranch,
    InBlock,
    IsConstantLike,
    Opcode,
    PhiIncomingFromBlock,
    PhiOfTwo,
    PostDominates,
    Predicate,
    SESERegion,
    StrictlyDominates,
    StrictlyPostDominates,
)
from .core import Constraint, IdiomSpec, top_level_conjuncts
from .flow import ComputedOnlyFrom, declarative_flow
from .logical import ConstraintAnd, ConstraintOr
from .predicates import PREDICATE_ATOMS


class SpecFileError(Exception):
    """Raised on malformed specification files.

    ``line`` and ``column`` carry the 1-based source position the error
    was detected at (None when the error is not tied to one); ``path``
    names the file and ``source_line`` holds the offending source text,
    when known.  :meth:`render` formats the whole thing as a
    compiler-style diagnostic with a caret.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None, path: str | None = None,
                 source_line: str | None = None):
        super().__init__(message)
        self.line = line
        self.column = column
        self.path = path
        self.source_line = source_line

    def render(self) -> str:
        """``path:line:col: error: message`` plus a caret excerpt."""
        where = self.path if self.path else "<spec>"
        if self.line is not None:
            where += f":{self.line}"
            if self.column is not None:
                where += f":{self.column}"
        message = str(self)
        prefix = f"line {self.line}: "
        if self.line is not None and message.startswith(prefix):
            message = message[len(prefix):]
        out = [f"{where}: error: {message}"]
        if self.source_line is not None and self.source_line.strip():
            text = self.source_line.rstrip()
            out.append(f"  {text}")
            caret = min((self.column or 1) - 1, len(text))
            out.append("  " + " " * caret + "^")
        return "\n".join(out)


#: The spec files shipped inside the package, in dependency order:
#: the three Fig. 5/§3.1 core idioms first, then the §8 extension
#: idioms (all extend ``for-loop``, so it must load first).
BUILTIN_SPEC_FILES: dict[str, str] = {
    "for-loop": "forloop.icsl",
    "scalar-reduction": "scalar_reduction.icsl",
    "histogram": "histogram.icsl",
    "dot-product": "dot_product.icsl",
    "argminmax": "argminmax.icsl",
    "nested-array-reduction": "nested_reduction.icsl",
}


def builtin_spec_dir() -> str:
    """Directory holding the shipped ``.icsl`` files."""
    return os.path.join(os.path.dirname(__file__), "specs")


def builtin_spec_path(name: str) -> str:
    """Path of the shipped spec file defining built-in idiom ``name``."""
    try:
        return os.path.join(builtin_spec_dir(), BUILTIN_SPEC_FILES[name])
    except KeyError:
        raise SpecFileError(f"no built-in spec named {name!r}") from None


# -- statement tokenizer / parser ---------------------------------------------

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|[(),|&=+]")

#: Flags allowed after an atom's closing parenthesis.
_ATOM_FLAGS = frozenset({"commutative"})

#: Bare flags allowed inside a ``flow(...)`` argument list.
_FLOW_FLAGS = frozenset({"affine", "noloads"})

#: Keyword arguments of ``flow(...)`` (label lists joined with ``+``).
_FLOW_KEYWORDS = frozenset({"sources", "rejected", "forbidden", "index"})


def _tokenize(line: str) -> list[tuple[str, int]]:
    """``(token, 1-based column)`` pairs for one statement line."""
    tokens: list[tuple[str, int]] = []
    pos = 0
    while pos < len(line):
        if line[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(line, pos)
        if match is None:
            raise SpecFileError(
                f"bad character {line[pos]!r} in {line.strip()!r}",
                column=pos + 1,
            )
        tokens.append((match.group(0), pos + 1))
        pos = match.end()
    return tokens


class _StatementParser:
    """Recursive-descent parser for one constraint statement line.

    ``line`` is the raw (indentation-preserving) statement source, so
    token columns match the file; ``display`` is the stripped form used
    in error messages.
    """

    def __init__(self, line: str, display: str | None = None):
        self.line = display if display is not None else line.strip()
        self.tokens = _tokenize(line)
        self.pos = 0

    def _column(self) -> int:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos][1]
        if self.tokens:
            token, column = self.tokens[-1]
            return column + len(token)
        return 1

    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos][0]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SpecFileError(
                f"unexpected end of statement: {self.line!r}",
                column=self._column(),
            )
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        column = self._column()
        got = self.next()
        if got != token:
            raise SpecFileError(
                f"expected {token!r} but found {got!r} in {self.line!r}",
                column=column,
            )

    def expect_ident(self) -> str:
        column = self._column()
        token = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            raise SpecFileError(
                f"expected a name but found {token!r} in {self.line!r}",
                column=column,
            )
        return token

    # expression := and_expr ('|' and_expr)*
    def parse(self) -> Constraint:
        constraint = self._or_expr()
        if self.peek() is not None:
            raise SpecFileError(
                f"trailing {self.peek()!r} in statement {self.line!r}",
                column=self._column(),
            )
        return constraint

    def _or_expr(self) -> Constraint:
        disjuncts = [self._and_expr()]
        while self.peek() == "|":
            self.next()
            disjuncts.append(self._and_expr())
        if len(disjuncts) == 1:
            return disjuncts[0]
        return ConstraintOr(*disjuncts)

    def _and_expr(self) -> Constraint:
        conjuncts = [self._primary()]
        while self.peek() == "&":
            self.next()
            conjuncts.append(self._primary())
        if len(conjuncts) == 1:
            return conjuncts[0]
        return ConstraintAnd(*conjuncts)

    def _primary(self) -> Constraint:
        if self.peek() == "(":
            self.next()
            inner = self._or_expr()
            self.expect(")")
            return inner
        return self._atom()

    def _atom(self) -> Constraint:
        column = self._column()
        name = self.expect_ident()
        self.expect("(")
        positional: list[str] = []
        keywords: dict[str, list[str]] = {}
        if self.peek() != ")":
            while True:
                ident = self.expect_ident()
                if self.peek() == "=":
                    self.next()
                    values = [self.expect_ident()]
                    while self.peek() == "+":
                        self.next()
                        values.append(self.expect_ident())
                    keywords[ident] = values
                else:
                    positional.append(ident)
                if self.peek() == ",":
                    self.next()
                    continue
                break
        self.expect(")")
        flags: set[str] = set()
        while self.peek() in _ATOM_FLAGS:
            flags.add(self.next())
        try:
            return _build_atom(name, positional, keywords, flags)
        except SpecFileError as exc:
            if exc.column is None:
                exc.column = column
            raise


# -- atom construction --------------------------------------------------------

_SIMPLE_ATOMS = {
    "edge": CFGEdge,
    "branch": EndsInUncondBranch,
    "condbranch": EndsInCondBranch,
    "dominates": Dominates,
    "postdominates": PostDominates,
    "strictlydominates": StrictlyDominates,
    "strictlypostdominates": StrictlyPostDominates,
    "blocked": Blocked,
    "sese": SESERegion,
    "phi2": PhiOfTwo,
    "phiedge": PhiIncomingFromBlock,
    "inblock": InBlock,
    "constant": IsConstantLike,
    "defdom": DefDominatesBlock,
    "distinct": Distinct,
}


def _build_flow(args: list[str], keywords: dict[str, list[str]]) -> Constraint:
    labels = [a for a in args if a not in _FLOW_FLAGS]
    flags = {a for a in args if a in _FLOW_FLAGS}
    if len(labels) != 2:
        raise SpecFileError(
            "flow(output, header, ...) needs exactly two positional labels"
        )
    unknown = set(keywords) - _FLOW_KEYWORDS
    if unknown:
        raise SpecFileError(
            f"unknown flow keyword(s) {sorted(unknown)}; "
            f"expected one of {sorted(_FLOW_KEYWORDS)}"
        )
    return declarative_flow(
        labels[0],
        labels[1],
        sources=tuple(keywords.get("sources", ())),
        rejected=tuple(keywords.get("rejected", ())),
        forbidden=tuple(keywords.get("forbidden", ())),
        index=tuple(keywords.get("index", ())),
        affine="affine" in flags,
        loads="noloads" not in flags,
    )


def _build_atom(
    name: str,
    args: list[str],
    keywords: dict[str, list[str]],
    flags: set[str],
) -> Constraint:
    if name == "flow":
        return _build_flow(args, keywords)
    if keywords:
        raise SpecFileError(
            f"atom {name!r} takes no keyword arguments "
            f"(got {sorted(keywords)})"
        )
    commutative = "commutative" in flags
    if name == "opcode":
        if len(args) < 2:
            raise SpecFileError("opcode(x, OP, ...) needs two arguments")
        x, op, *operands = args
        labels = tuple(None if o == "_" else o for o in operands)
        return Opcode(x, op, labels, commutative=commutative)
    if "_" in args:
        raise SpecFileError(f"atom {name!r} does not accept '_' wildcards")
    if name == "invariant":
        if len(args) != 2:
            raise SpecFileError("invariant(x, block) needs two arguments")
        value, block = args
        return ConstraintOr(
            IsConstantLike(value), DefDominatesBlock(value, block)
        )
    if name == "naturalloop":  # legacy alias of natural_loop
        name = "natural_loop"
    factory = _SIMPLE_ATOMS.get(name) or PREDICATE_ATOMS.get(name)
    if factory is None:
        raise SpecFileError(f"unknown atom {name!r}")
    try:
        return factory(*args)
    except TypeError:
        raise SpecFileError(
            f"atom {name!r} got {len(args)} argument(s)"
        ) from None


def _parse_statement(line: str, display: str | None = None) -> Constraint:
    return _StatementParser(line, display=display).parse()


# -- file-level parser --------------------------------------------------------

_IDIOM_HEADER_RE = re.compile(
    r"^idiom\s+(?P<name>[\w\-]+)"
    r"(?:\s+extends\s+(?P<base>[\w\-]+))?\s*\{$"
)


def _resolve_base(
    base_name: str,
    specs: dict[str, IdiomSpec],
    known: dict[str, IdiomSpec],
    loading: frozenset[str],
) -> IdiomSpec:
    base = specs.get(base_name) or known.get(base_name)
    if base is None and base_name in BUILTIN_SPEC_FILES:
        if base_name in loading:
            raise SpecFileError(
                f"circular extends through built-in idiom {base_name!r}"
            )
        builtin = load_spec_file(
            builtin_spec_path(base_name), _loading=loading | {base_name}
        )
        base = builtin.get(base_name)
    if base is None:
        raise SpecFileError(
            f"extends references unknown idiom {base_name!r}"
        )
    return base


def _base_conjuncts(base: IdiomSpec) -> list[Constraint]:
    return top_level_conjuncts(base.constraint)


#: ``# lint: ignore[ICSL001, ICSL002]`` — a lint suppression inside the
#: comment part of a line.  On a statement line it suppresses the named
#: diagnostics for that conjunct; on the header, order, or a standalone
#: comment line inside a block it suppresses them for the whole spec.
_LINT_IGNORE_RE = re.compile(
    r"(?:#|;)\s*lint:\s*ignore\[(?P<codes>[A-Za-z0-9_\s,]*)\]"
)


def _line_ignores(comment: str) -> tuple[str, ...]:
    match = _LINT_IGNORE_RE.search(comment)
    if match is None:
        return ()
    return tuple(
        code.strip()
        for code in match.group("codes").split(",")
        if code.strip()
    )


def parse_spec_text(
    text: str,
    known: dict[str, IdiomSpec] | None = None,
    _loading: frozenset[str] = frozenset(),
    path: str | None = None,
) -> dict[str, IdiomSpec]:
    """Parse specification source into named idiom specs.

    ``known`` supplies previously loaded idioms that ``extends`` clauses
    may reference (built-in idioms resolve automatically).  Errors carry
    the offending 1-based source position in :attr:`SpecFileError.line`
    / :attr:`SpecFileError.column` (plus ``path`` and the source line
    when known, so :meth:`SpecFileError.render` can show a caret).

    Each parsed conjunct is stamped with ``spec_span`` — ``(path, line,
    column)`` of its statement — and any ``# lint: ignore[...]``
    suppressions, consumed by :mod:`repro.constraints.analysis`.
    """
    known = known or {}
    specs: dict[str, IdiomSpec] = {}
    current_name: str | None = None
    block_start = 0
    order: tuple[str, ...] | None = None
    constraints: list[Constraint] = []
    current_base: IdiomSpec | None = None
    block_ignores: dict[str, tuple] = {}
    order_span: tuple | None = None

    def error(lineno: int, message: str, column: int | None = None,
              source: str | None = None) -> None:
        raise SpecFileError(
            f"line {lineno}: {message}", line=lineno, column=column,
            path=path, source_line=source,
        )

    for lineno, raw in enumerate(text.splitlines(), start=1):
        code = raw.split("#")[0].split(";")[0]
        line = code.strip()
        ignores = _line_ignores(raw[len(code):])
        if not line:
            if ignores and current_name is not None:
                for ignore in ignores:
                    block_ignores.setdefault(ignore, (path, lineno))
            continue
        header = _IDIOM_HEADER_RE.match(line)
        if header:
            if current_name is not None:
                error(lineno, "nested idiom blocks are not allowed",
                      source=raw)
            current_name = header.group("name")
            block_start = lineno
            order = None
            order_span = None
            constraints = []
            current_base = None
            block_ignores = {
                ignore: (path, lineno) for ignore in ignores
            }
            base_name = header.group("base")
            if base_name is not None:
                try:
                    current_base = _resolve_base(
                        base_name, specs, known, _loading
                    )
                    constraints.extend(_base_conjuncts(current_base))
                except SpecFileError as exc:
                    if exc.line is None:
                        error(lineno, str(exc), source=raw)
                    raise
            continue
        if line == "}":
            if current_name is None:
                error(lineno, "unmatched '}'", source=raw)
            if order is None:
                error(lineno, f"idiom {current_name!r} has no order: line",
                      source=raw)
            if not constraints:
                error(lineno, f"idiom {current_name!r} has no constraints",
                      source=raw)
            try:
                specs[current_name] = IdiomSpec(
                    current_name, order, ConstraintAnd(*constraints),
                    base=current_base, origin=(path, block_start),
                    lint_ignores=block_ignores,
                )
                specs[current_name].order_span = order_span
            except ValueError as exc:
                error(lineno, str(exc), source=raw)
            current_name = None
            continue
        if current_name is None:
            error(lineno, f"statement outside idiom block: {line!r}",
                  source=raw)
        if line.startswith("order:"):
            order = tuple(line[len("order:"):].split())
            order_span = (path, lineno, len(code) - len(code.lstrip()) + 1)
            for ignore in ignores:
                block_ignores.setdefault(ignore, (path, lineno))
            continue
        try:
            conjunct = _parse_statement(code, display=line)
        except SpecFileError as exc:
            if exc.line is None:
                error(lineno, str(exc), column=exc.column, source=raw)
            raise
        conjunct.spec_span = (path, lineno, len(code) - len(code.lstrip()) + 1)
        if ignores:
            conjunct.lint_ignores = frozenset(ignores)
        constraints.append(conjunct)

    if current_name is not None:
        raise SpecFileError(
            f"line {block_start}: unterminated idiom {current_name!r}",
            line=block_start, path=path,
        )
    return specs


def load_spec_file(
    path: str,
    known: dict[str, IdiomSpec] | None = None,
    _loading: frozenset[str] = frozenset(),
) -> dict[str, IdiomSpec]:
    """Load idiom specifications from a file."""
    with open(path) as handle:
        return parse_spec_text(
            handle.read(), known=known, _loading=_loading, path=path
        )


# -- rendering (the parse inverse) --------------------------------------------

_RENDER_SIMPLE = {cls: name for name, cls in _SIMPLE_ATOMS.items()}


def _render_flow(params: dict) -> str:
    parts = [params["output"], params["header"]]
    for key in ("sources", "rejected", "forbidden", "index"):
        values = params.get(key, ())
        if values:
            parts.append(f"{key}={'+'.join(values)}")
    if params.get("affine"):
        parts.append("affine")
    if not params.get("loads", True):
        parts.append("noloads")
    return f"flow({', '.join(parts)})"


def _render_constraint(constraint: Constraint, nested: bool = False) -> str:
    if isinstance(constraint, ConstraintAnd):
        body = " & ".join(
            _render_constraint(c, nested=True) for c in constraint.children
        )
        return f"({body})" if nested else body
    if isinstance(constraint, ConstraintOr):
        body = " | ".join(
            _render_constraint(c, nested=True) for c in constraint.children
        )
        return f"({body})" if nested else body
    if isinstance(constraint, Opcode):
        atoms = []
        for opcode in constraint.opcodes:
            args = [constraint.x_label, opcode]
            args.extend(
                "_" if label is None else label
                for label in constraint.operand_labels
            )
            flag = " commutative" if constraint.commutative else ""
            atoms.append(f"opcode({', '.join(args)}){flag}")
        if len(atoms) == 1:
            return atoms[0]
        body = " | ".join(atoms)
        return f"({body})" if nested else body
    spec_atom = getattr(constraint, "spec_atom", None)
    if isinstance(constraint, (Predicate, ComputedOnlyFrom)):
        if spec_atom is None:
            raise SpecFileError(
                f"constraint {constraint!r} was not built from a named "
                f"atom and cannot be rendered"
            )
        name, args = spec_atom
        if name == "flow":
            return _render_flow(args)
        return f"{name}({', '.join(args)})"
    atom = _RENDER_SIMPLE.get(type(constraint))
    if atom is None:
        raise SpecFileError(
            f"no ICSL syntax for constraint type {type(constraint).__name__}"
        )
    return f"{atom}({', '.join(constraint.labels)})"


def render_spec_text(specs: dict[str, IdiomSpec]) -> str:
    """Render idiom specs back to ICSL source — the parse inverse.

    ``parse_spec_text(render_spec_text(specs))`` yields equivalent specs
    (``extends`` and the ``invariant``/``naturalloop`` shorthands render
    in their expanded forms, so the text is flattened but the constraint
    trees and solution sets are preserved).
    """
    blocks: list[str] = []
    for name, spec in specs.items():
        lines = [f"idiom {name} {{"]
        lines.append(f"  order: {' '.join(spec.label_order)}")
        spec_ignores = sorted(getattr(spec, "lint_ignores", ()))
        if spec_ignores:
            lines.append(f"  # lint: ignore[{', '.join(spec_ignores)}]")
        for conjunct in top_level_conjuncts(spec.constraint):
            rendered = _render_constraint(conjunct)
            ignores = sorted(getattr(conjunct, "lint_ignores", ()))
            if ignores:
                rendered += f"  # lint: ignore[{', '.join(ignores)}]"
            lines.append(f"  {rendered}")
        lines.append("}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"
