"""External constraint-specification files (§3.4 future work).

§3.4: *"In the future such specifications may be read from external
files at runtime, avoiding the need for recompilation to experiment
with analysis passes."*  This module implements that: a small textual
language whose statements map 1:1 onto the atomic constraints, loaded
at runtime into ordinary :class:`~repro.constraints.core.IdiomSpec`
objects the unmodified solver executes.

Grammar (line oriented; ``#`` and ``;`` start comments)::

    idiom NAME {
      order: label1 label2 ...
      ATOM(args) [commutative]
      ATOM(args) | ATOM(args)        # disjunction
    }

Atoms::

    edge(a, b)              CFG edge a -> b
    branch(block, target)   block ends in ``br target``
    condbranch(b, c, t, e)  block ends in ``br c, t, e``
    dominates(a, b)         postdominates / strictlydominates /
                            strictlypostdominates likewise
    blocked(a, via, c)      every path a->c passes via
    sese(begin, end)        single-entry single-exit region
    opcode(x, OP, ops...)   x is an OP instruction with those operands
                            (`_` skips a position)
    phi2(x, a, b)           x = Φ(a, b)
    phiedge(phi, v, block)  v flows into phi from block
    inblock(x, block)
    constant(x)             x ∈ constant (constants/arguments/globals)
    defdom(x, block)        x's definition dominates block
    invariant(x, block)     shorthand for constant(x) | defdom(x, block)
    distinct(a, b, ...)
    naturalloop(header, body, latch, entry, exit)
"""

from __future__ import annotations

import re

from .atomic import (
    Blocked,
    CFGEdge,
    DefDominatesBlock,
    Distinct,
    Dominates,
    EndsInCondBranch,
    EndsInUncondBranch,
    InBlock,
    IsConstantLike,
    Opcode,
    PhiIncomingFromBlock,
    PhiOfTwo,
    PostDominates,
    Predicate,
    SESERegion,
    StrictlyDominates,
    StrictlyPostDominates,
)
from .core import Constraint, IdiomSpec
from .logical import ConstraintAnd, ConstraintOr


class SpecFileError(Exception):
    """Raised on malformed specification files."""


_ATOM_RE = re.compile(
    r"^(?P<name>[a-z_][a-z0-9_]*)\((?P<args>[^()]*)\)(?P<flags>(?:\s+\w+)*)$"
)


def _natural_loop_predicate(ctx, assignment):
    from ..ir.block import BasicBlock

    header = assignment["header"]
    if not isinstance(header, BasicBlock):
        return False
    loop = ctx.loop_info.loop_with_header(header)
    if loop is None:
        return False
    return (
        assignment["body"] in loop.blocks
        and assignment["latch"] in loop.blocks
        and assignment["entry"] not in loop.blocks
        and assignment["exit"] not in loop.blocks
    )


def _build_atom(name: str, args: list[str], flags: set[str]) -> Constraint:
    commutative = "commutative" in flags
    if name == "edge":
        return CFGEdge(*args)
    if name == "branch":
        return EndsInUncondBranch(*args)
    if name == "condbranch":
        return EndsInCondBranch(*args)
    if name == "dominates":
        return Dominates(*args)
    if name == "postdominates":
        return PostDominates(*args)
    if name == "strictlydominates":
        return StrictlyDominates(*args)
    if name == "strictlypostdominates":
        return StrictlyPostDominates(*args)
    if name == "blocked":
        return Blocked(*args)
    if name == "sese":
        return SESERegion(*args)
    if name == "opcode":
        if len(args) < 2:
            raise SpecFileError("opcode(x, OP, ...) needs two arguments")
        x, op, *operands = args
        labels = tuple(None if o == "_" else o for o in operands)
        return Opcode(x, op, labels, commutative=commutative)
    if name == "phi2":
        return PhiOfTwo(*args)
    if name == "phiedge":
        return PhiIncomingFromBlock(*args)
    if name == "inblock":
        return InBlock(*args)
    if name == "constant":
        return IsConstantLike(*args)
    if name == "defdom":
        return DefDominatesBlock(*args)
    if name == "invariant":
        value, block = args
        return ConstraintOr(
            IsConstantLike(value), DefDominatesBlock(value, block)
        )
    if name == "distinct":
        return Distinct(*args)
    if name == "naturalloop":
        expected = ("header", "body", "latch", "entry", "exit")
        if tuple(args) != expected:
            raise SpecFileError(
                f"naturalloop expects labels {expected}, got {tuple(args)}"
            )
        return Predicate(expected, _natural_loop_predicate,
                         name="natural-loop")
    raise SpecFileError(f"unknown atom {name!r}")


def _parse_statement(line: str) -> Constraint:
    disjuncts = [part.strip() for part in line.split("|")]
    constraints = []
    for disjunct in disjuncts:
        match = _ATOM_RE.match(disjunct)
        if match is None:
            raise SpecFileError(f"cannot parse statement: {line!r}")
        args = [a.strip() for a in match.group("args").split(",")
                if a.strip()]
        flags = set(match.group("flags").split())
        constraints.append(_build_atom(match.group("name"), args, flags))
    if len(constraints) == 1:
        return constraints[0]
    return ConstraintOr(*constraints)


def parse_spec_text(text: str) -> dict[str, IdiomSpec]:
    """Parse specification source into named idiom specs."""
    specs: dict[str, IdiomSpec] = {}
    current_name: str | None = None
    order: tuple[str, ...] | None = None
    constraints: list[Constraint] = []

    for raw in text.splitlines():
        line = raw.split("#")[0].split(";")[0].strip()
        if not line:
            continue
        header = re.match(r"^idiom\s+(?P<name>[\w\-]+)\s*\{$", line)
        if header:
            if current_name is not None:
                raise SpecFileError("nested idiom blocks are not allowed")
            current_name = header.group("name")
            order = None
            constraints = []
            continue
        if line == "}":
            if current_name is None:
                raise SpecFileError("unmatched '}'")
            if order is None:
                raise SpecFileError(
                    f"idiom {current_name!r} has no order: line"
                )
            if not constraints:
                raise SpecFileError(
                    f"idiom {current_name!r} has no constraints"
                )
            specs[current_name] = IdiomSpec(
                current_name, order, ConstraintAnd(*constraints)
            )
            current_name = None
            continue
        if current_name is None:
            raise SpecFileError(f"statement outside idiom block: {line!r}")
        if line.startswith("order:"):
            order = tuple(line[len("order:"):].split())
            continue
        constraints.append(_parse_statement(line))

    if current_name is not None:
        raise SpecFileError(f"unterminated idiom {current_name!r}")
    return specs


def load_spec_file(path: str) -> dict[str, IdiomSpec]:
    """Load idiom specifications from a file."""
    with open(path) as handle:
        return parse_spec_text(handle.read())
