"""Named predicate atoms shared by native specs and ICSL spec files.

The Fig. 5-style structural atoms cover most of an idiom, but each of
the shipped idioms also needs a handful of conditions that are cheap to
state as Python predicates (e.g. "the bound blocks form a natural loop
headed by ``header``").  So that external ``.icsl`` files can express
the *same* specifications as the native Python modules, every such
predicate lives here as a **named factory**: given label names it
returns a :class:`~repro.constraints.atomic.Predicate` bound to those
labels, and the factory's name doubles as an ICSL atom —

    natural_loop(header, body, latch, entry, exit)
    update_in_loop(header, acc_update)

Use :func:`register_predicate_atom` to add new named predicates; both
the native specs (``repro.idioms.*``) and the spec-file parser resolve
through :data:`PREDICATE_ATOMS`, so the two paths cannot drift.
"""

from __future__ import annotations

from typing import Callable

from ..ir.block import BasicBlock
from ..ir.instructions import Instruction, LoadInst, StoreInst
from .atomic import Predicate

#: name -> factory(*label_names) -> Predicate
PREDICATE_ATOMS: dict[str, Callable[..., Predicate]] = {}


def register_predicate_atom(name: str):
    """Register ``factory`` as the named ICSL predicate atom ``name``."""

    def decorate(factory: Callable[..., Predicate]):
        PREDICATE_ATOMS[name] = factory
        factory.atom_name = name
        return factory

    return decorate


def _named(name: str, labels: tuple[str, ...], fn) -> Predicate:
    predicate = Predicate(labels, fn, name=name)
    predicate.spec_atom = (name, labels)
    return predicate


@register_predicate_atom("natural_loop")
def natural_loop(header: str, body: str, latch: str, entry: str,
                 exit: str) -> Predicate:
    """The bound blocks form a natural loop headed by ``header``, with
    ``body``/``latch`` inside it and ``entry``/``exit`` outside."""

    def fn(ctx, assignment):
        head = assignment[header]
        if not isinstance(head, BasicBlock):
            return False
        loop = ctx.loop_info.loop_with_header(head)
        if loop is None:
            return False
        return (
            assignment[body] in loop.blocks
            and assignment[latch] in loop.blocks
            and assignment[entry] not in loop.blocks
            and assignment[exit] not in loop.blocks
        )

    return _named("natural_loop", (header, body, latch, entry, exit), fn)


@register_predicate_atom("update_in_loop")
def update_in_loop(header: str, update: str) -> Predicate:
    """``update`` is an instruction computed inside the natural loop
    headed by ``header`` (it changes per iteration)."""

    def fn(ctx, assignment):
        head = assignment[header]
        upd = assignment[update]
        if not isinstance(head, BasicBlock) or not isinstance(upd, Instruction):
            return False
        loop = ctx.loop_info.loop_with_header(head)
        return loop is not None and upd.parent in loop.blocks

    return _named("update_in_loop", (header, update), fn)


@register_predicate_atom("store_directly_in_loop")
def store_directly_in_loop(header: str, store: str) -> Predicate:
    """``store``'s innermost enclosing loop is the loop headed by
    ``header`` (not a nested loop — §6.1's SP miss)."""

    def fn(ctx, assignment):
        head = assignment[header]
        st = assignment[store]
        if not isinstance(head, BasicBlock) or not isinstance(st, StoreInst):
            return False
        loop = ctx.loop_info.loop_with_header(head)
        if loop is None or st.parent not in loop.blocks:
            return False
        return ctx.loop_info.innermost_loop_of(st.parent) is loop

    return _named("store_directly_in_loop", (header, store), fn)


@register_predicate_atom("load_before_store")
def load_before_store(load: str, store: str) -> Predicate:
    """``load`` and ``store`` form one read-modify-write: both in the
    same block, the read before the write."""

    def fn(ctx, assignment):
        ld = assignment[load]
        st = assignment[store]
        if not isinstance(ld, LoadInst) or not isinstance(st, StoreInst):
            return False
        block = ld.parent
        if block is None or block is not st.parent:
            return False
        return block.instructions.index(ld) < block.instructions.index(st)

    return _named("load_before_store", (load, store), fn)
