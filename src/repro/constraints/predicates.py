"""Named predicate atoms shared by native specs and ICSL spec files.

The Fig. 5-style structural atoms cover most of an idiom, but each of
the shipped idioms also needs a handful of conditions that are cheap to
state as Python predicates (e.g. "the bound blocks form a natural loop
headed by ``header``").  So that external ``.icsl`` files can express
the *same* specifications as the native Python modules, every such
predicate lives here as a **named factory**: given label names it
returns a :class:`~repro.constraints.atomic.Predicate` bound to those
labels, and the factory's name doubles as an ICSL atom —

    natural_loop(header, body, latch, entry, exit)
    update_in_loop(header, acc_update)

Use :func:`register_predicate_atom` to add new named predicates; both
the native specs (``repro.idioms.*``) and the spec-file parser resolve
through :data:`PREDICATE_ATOMS`, so the two paths cannot drift.
"""

from __future__ import annotations

from typing import Callable

from ..ir.block import BasicBlock
from ..ir.instructions import (
    FCmpInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.values import Value
from .atomic import Predicate

#: name -> factory(*label_names) -> Predicate
PREDICATE_ATOMS: dict[str, Callable[..., Predicate]] = {}


def register_predicate_atom(name: str):
    """Register ``factory`` as the named ICSL predicate atom ``name``."""

    def decorate(factory: Callable[..., Predicate]):
        PREDICATE_ATOMS[name] = factory
        factory.atom_name = name
        return factory

    return decorate


#: Value-kind requirements each named predicate imposes on its label
#: positions (see :meth:`Constraint.label_kinds`); consumed by the lint
#: pass's domain analysis (ICSL003).
_PREDICATE_KINDS: dict[str, tuple[str, ...]] = {
    "natural_loop": ("block", "block", "block", "block", "block"),
    "update_in_loop": ("block", "instruction"),
    "store_directly_in_loop": ("block", "store"),
    "load_before_store": ("load", "store"),
    "ordering_cmp": ("cmp",),
    "same_join": ("phi", "phi"),
    "guard_matches_candidate": ("cmp", "value", "value"),
    "store_in_subloop": ("block", "store"),
}


def _named(name: str, labels: tuple[str, ...], fn) -> Predicate:
    predicate = Predicate(
        labels, fn, name=name, kinds=_PREDICATE_KINDS.get(name)
    )
    predicate.spec_atom = (name, labels)
    return predicate


@register_predicate_atom("natural_loop")
def natural_loop(header: str, body: str, latch: str, entry: str,
                 exit: str) -> Predicate:
    """The bound blocks form a natural loop headed by ``header``, with
    ``body``/``latch`` inside it and ``entry``/``exit`` outside."""

    def fn(ctx, assignment):
        head = assignment[header]
        if not isinstance(head, BasicBlock):
            return False
        loop = ctx.loop_info.loop_with_header(head)
        if loop is None:
            return False
        return (
            assignment[body] in loop.blocks
            and assignment[latch] in loop.blocks
            and assignment[entry] not in loop.blocks
            and assignment[exit] not in loop.blocks
        )

    return _named("natural_loop", (header, body, latch, entry, exit), fn)


@register_predicate_atom("update_in_loop")
def update_in_loop(header: str, update: str) -> Predicate:
    """``update`` is an instruction computed inside the natural loop
    headed by ``header`` (it changes per iteration)."""

    def fn(ctx, assignment):
        head = assignment[header]
        upd = assignment[update]
        if not isinstance(head, BasicBlock) or not isinstance(upd, Instruction):
            return False
        loop = ctx.loop_info.loop_with_header(head)
        return loop is not None and upd.parent in loop.blocks

    return _named("update_in_loop", (header, update), fn)


@register_predicate_atom("store_directly_in_loop")
def store_directly_in_loop(header: str, store: str) -> Predicate:
    """``store``'s innermost enclosing loop is the loop headed by
    ``header`` (not a nested loop — §6.1's SP miss)."""

    def fn(ctx, assignment):
        head = assignment[header]
        st = assignment[store]
        if not isinstance(head, BasicBlock) or not isinstance(st, StoreInst):
            return False
        loop = ctx.loop_info.loop_with_header(head)
        if loop is None or st.parent not in loop.blocks:
            return False
        return ctx.loop_info.innermost_loop_of(st.parent) is loop

    return _named("store_directly_in_loop", (header, store), fn)


@register_predicate_atom("load_before_store")
def load_before_store(load: str, store: str) -> Predicate:
    """``load`` and ``store`` form one read-modify-write: both in the
    same block, the read before the write."""

    def fn(ctx, assignment):
        ld = assignment[load]
        st = assignment[store]
        if not isinstance(ld, LoadInst) or not isinstance(st, StoreInst):
            return False
        block = ld.parent
        if block is None or block is not st.parent:
            return False
        return block.instructions.index(ld) < block.instructions.index(st)

    return _named("load_before_store", (load, store), fn)


# -- extension-idiom predicates (§8 future work) ------------------------------

#: Comparison predicates establishing an ordering (min/max tracking).
ORDERING_PREDICATES = frozenset(
    {"olt", "ogt", "slt", "sgt", "ole", "oge", "sle", "sge"}
)


@register_predicate_atom("ordering_cmp")
def ordering_cmp(cmp: str) -> Predicate:
    """``cmp`` is a comparison that establishes an ordering (one of the
    less/greater predicates — equality tests track no best value)."""

    def fn(ctx, assignment):
        value = assignment[cmp]
        if isinstance(value, (FCmpInst, ICmpInst)):
            return value.predicate in ORDERING_PREDICATES
        return False

    return _named("ordering_cmp", (cmp,), fn)


@register_predicate_atom("same_join")
def same_join(a: str, b: str) -> Predicate:
    """``a`` and ``b`` are PHIs in the same join block — the pair of
    selections one guard produces (argmin/argmax's value and index)."""

    def fn(ctx, assignment):
        first = assignment[a]
        second = assignment[b]
        return (
            isinstance(first, PhiInst)
            and isinstance(second, PhiInst)
            and first.parent is second.parent
        )

    return _named("same_join", (a, b), fn)


def structurally_equal(a: Value, b: Value, depth: int = 0) -> bool:
    """Value equivalence modulo cross-block redundancy.

    The frontend only CSEs within blocks, so a guard's ``a[i]`` load
    and the assigned ``a[i]`` load are distinct instructions; they are
    still the same value because the loads read the same address with
    no intervening store (the idiom's flow conditions guarantee the
    array is read-only in the loop).
    """
    if a is b:
        return True
    if depth > 6:
        return False
    from ..ir.instructions import BinaryInst, CastInst, GEPInst
    from ..ir.values import ConstantFloat, ConstantInt

    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return a.value == b.value
    if isinstance(a, ConstantFloat) and isinstance(b, ConstantFloat):
        return a.value == b.value
    if isinstance(a, LoadInst) and isinstance(b, LoadInst):
        return structurally_equal(a.pointer, b.pointer, depth + 1)
    if isinstance(a, GEPInst) and isinstance(b, GEPInst):
        return a.base is b.base and structurally_equal(
            a.index, b.index, depth + 1
        )
    if isinstance(a, BinaryInst) and isinstance(b, BinaryInst):
        return a.opcode == b.opcode and structurally_equal(
            a.lhs, b.lhs, depth + 1
        ) and structurally_equal(a.rhs, b.rhs, depth + 1)
    if isinstance(a, CastInst) and isinstance(b, CastInst):
        return a.opcode == b.opcode and structurally_equal(
            a.value, b.value, depth + 1
        )
    return False


@register_predicate_atom("guard_matches_candidate")
def guard_matches_candidate(cmp: str, best: str, candidate: str) -> Predicate:
    """The guard compares (a value structurally equal to) ``candidate``
    against the tracked ``best`` value."""

    def fn(ctx, assignment):
        guard = assignment[cmp]
        tracked = assignment[best]
        wanted = assignment[candidate]
        if not isinstance(guard, (FCmpInst, ICmpInst)):
            return False
        if guard.lhs is tracked:
            other = guard.rhs
        elif guard.rhs is tracked:
            other = guard.lhs
        else:
            return False
        return structurally_equal(other, wanted)

    return _named("guard_matches_candidate", (cmp, best, candidate), fn)


@register_predicate_atom("store_in_subloop")
def store_in_subloop(header: str, store: str) -> Predicate:
    """``store`` sits in a loop *strictly inside* the loop headed by
    ``header`` — the complement of :func:`store_directly_in_loop`, so
    the nested-array-reduction idiom never double-reports a regular
    histogram."""

    def fn(ctx, assignment):
        head = assignment[header]
        st = assignment[store]
        if not isinstance(head, BasicBlock) or not isinstance(st, StoreInst):
            return False
        loop = ctx.loop_info.loop_with_header(head)
        if loop is None or st.parent not in loop.blocks:
            return False
        return ctx.loop_info.innermost_loop_of(st.parent) is not loop

    return _named("store_in_subloop", (header, store), fn)
