"""Command line interface: ``python -m repro <command> ...``.

Commands
--------

``detect FILE.c``
    Compile a mini-C file and report every detected reduction (plus the
    icc/Polly baseline verdicts with ``--baselines`` and the §8
    extension idioms with ``--extended``).  ``--spec`` adds user
    ``.icsl`` idiom files (custom idioms are matched and counted; a
    file idiom named like a built-in replaces it), ``--list-idioms``
    prints the registry.  ``--save-feedback`` records the run's
    per-spec solver statistics as a feedback artifact;
    ``--feedback-from`` re-orders every measured spec from one.

``lint [FILE.icsl ...]``
    Statically analyze idiom spec files (default: the six shipped
    specs, plus the cross-spec registry sweep).  Reports unconstrained
    order labels, labels with no guaranteed proposer at their depth,
    value-kind conflicts, constant (always-true/false) conjuncts,
    broken ``extends`` prefixes, the plan compiler's redundancy
    pruning, unused ``# lint: ignore[...]`` suppressions and pairwise
    idiom subsumption measured on a synthesized micro-universe.  Every
    finding carries a stable ``ICSL0xx`` code, a source span and a fix
    hint.  ``--strict`` promotes warnings to a nonzero exit, ``--json``
    emits the machine-readable report, ``--notes`` shows the
    engine-pruning notes, ``--no-cross`` skips the subsumption sweep.
    Exit status: 2 when a file fails to parse, 1 on gating findings,
    0 when clean.

``emit FILE.c``
    Print the canonical SSA IR after the full pass pipeline.

``parallelize FILE.c``
    Detect, plan, outline and run the program sequentially and on the
    simulated multicore machine; reports the simulated speedup.

``corpus``
    Run detection over the built-in 40-program corpus through the
    batched pipeline and print the Figure 8 panels.  ``--jobs N``
    shards work across N worker processes (the merged report is
    identical to the serial one); ``--extended`` also runs the §8
    extension idioms; ``--granularity function`` ships
    ``(program, function)`` units so one giant module cannot serialize
    the run; ``--weights-from REPORT.json`` balances shards by a
    previous run's measured costs; ``--save-report`` records this
    run's digests (costs included) for later ``--weights-from`` use;
    ``--save-feedback``/``--feedback-from`` do the same for the
    corpus-wide **solver feedback store** (per-spec search statistics
    that re-order every spec's label enumeration).  A report carrying
    ``UnitFailure`` records exits with status 3 unless
    ``--allow-failures``.

``serve``
    Run the same corpus through the **persistent serving engine**:
    long-lived workers, async submission, per-program digests streamed
    as they complete.  ``--requests N`` submits the corpus N times
    (the warm-worker path); ``--priority interactive|batch`` picks the
    scheduling class (interactive units overtake queued batch units);
    ``--max-tasks-per-worker N`` recycles each worker after N units;
    ``--cancel-after N`` cancels the *first* request after N streamed
    digests (later requests must — and do — still complete, the
    cancellation smoke); ``--check`` verifies the served report is
    fingerprint-identical to a serial batch run and exits non-zero on
    mismatch.  ``--feedback-from`` warms every worker's spec orders
    from a recorded feedback artifact, ``--self-tune`` re-derives the
    orders from served units at every submit, and ``--save-feedback``
    persists the session's merged store on exit; failed units exit 3
    unless ``--allow-failures``.

``feedback``
    Operate on recorded solver-feedback artifacts (the lifecycle side
    of ``--save-feedback``/``--feedback-from``; see
    ``docs/feedback.md``).  ``inspect ART.json`` prints the artifact's
    version, fingerprint, per-spec statistics, measured per-order
    observations and the orders a consuming run would derive
    (``--json`` for the machine-readable form); ``diff A.json B.json``
    compares two artifacts (exit 1 when they differ, 0 when
    identical); ``decay ART.json --keep R`` scales every recorded
    counter to ``R`` of its value (``--out`` writes elsewhere,
    default in place) — the retention knob that lets a drifted
    workload re-learn.  All output is deterministic: same artifacts,
    same bytes.

``gateway``
    Put the **socket gateway** in front of the serving engine: a
    long-lived TCP server (length-prefixed JSON frames) that any
    number of ``repro submit`` clients stream digests from
    concurrently.  ``--port 0`` binds an ephemeral port;
    ``--port-file FILE`` writes the bound port for clients to
    discover; ``--unit-budget N`` sets the per-connection admission
    budget (submits past it are rejected with a structured retry-after
    frame); ``--serve-seconds N`` exits after N seconds (otherwise
    serve until SIGINT/SIGTERM).

``submit``
    Submit programs to a running gateway and stream the results.
    ``--port-file FILE`` polls the server's port file; ``--program
    SUITE/NAME`` (repeatable) picks a corpus slice (default: the whole
    corpus); ``--priority interactive|batch`` picks the scheduling
    class; ``--cancel-after N`` cancels mid-stream after N digests;
    ``--check`` verifies the served report is fingerprint-identical to
    a local ``jobs=1`` batch run.  An admission rejection prints the
    retry-after hint and exits 4.
"""

from __future__ import annotations

import argparse
import sys

from . import compile_source, find_reductions, outline_loop, plan_all
from .ir import print_module
from .runtime import MachineModel, ParallelExecutor
from .runtime.parallel import run_sequential


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _build_registry(spec_paths, lint: bool = False):
    from .idioms import IdiomRegistry

    registry = IdiomRegistry(lint=lint)
    for path in spec_paths or ():
        registry.load_file(path)
    return registry


def _failure_exit(failures, allow_failures: bool,
                  describe: bool = True) -> int:
    """Print ``UnitFailure`` records; the exit code they mandate.

    The ``CorpusReport.failures`` contract: a report listing failures
    covers only the programs that completed, so consumers must not
    treat it as a full-corpus result by accident — ``corpus`` and
    ``serve`` exit with status 3 unless ``--allow-failures`` says the
    partial report is acceptable.  ``describe=False`` skips the
    per-failure lines for callers that already streamed them.
    """
    if describe:
        for failure in failures:
            print(f"FAILED {failure.describe()}", file=sys.stderr)
    if failures and not allow_failures:
        print(
            f"error: {len(failures)} unit(s) failed; the report is "
            f"partial (pass --allow-failures to accept it)",
            file=sys.stderr,
        )
        return 3
    return 0


def _feedback_error(exc) -> int:
    """Print the shared artifact-load error; the exit code (2)."""
    print(f"error: cannot load feedback artifact: {exc}",
          file=sys.stderr)
    return 2


def _load_feedback_cli(path: str):
    """``(store, None)`` or ``(None, exit code)`` with the error printed."""
    from .pipeline import load_feedback

    try:
        return load_feedback(path), None
    except (OSError, ValueError) as exc:
        return None, _feedback_error(exc)


def _save_feedback_cli(store, path: str) -> None:
    from .pipeline import save_feedback

    save_feedback(store, path)
    print(f"feedback saved to {path} ({store.describe()})")


def _cmd_detect(args) -> int:
    from .constraints import (
        SolverContext,
        SolverStats,
        SpecFileError,
        detect as solve,
    )

    try:
        registry = _build_registry(args.spec, lint=args.lint)
    except (OSError, ValueError, SpecFileError) as exc:
        # ValueError covers UnicodeDecodeError from non-text files.
        print(f"error: cannot load spec file: {exc}", file=sys.stderr)
        if isinstance(exc, SpecFileError):
            rendered = exc.render()
            if rendered != str(exc):
                print(rendered, file=sys.stderr)
        return 2
    if args.feedback_from:
        store, code = _load_feedback_cli(args.feedback_from)
        if store is None:
            return code
        reordered = registry.apply_orders(store.spec_orders(registry))
        if reordered:
            names = ", ".join(entry.name for entry in reordered)
            print(f"feedback: reordered {names}")
    if args.list_idioms:
        print(registry.describe())
        if args.file is None:
            return 0
    if args.file is None:
        print("error: a FILE.c argument is required unless --list-idioms",
              file=sys.stderr)
        return 2
    module = compile_source(_read(args.file), args.file)
    report = find_reductions(module, registry=registry)
    print(report.summary())
    for scalar in report.scalars:
        arrays = ", ".join(b.short_name() for b in scalar.input_bases)
        print(f"  scalar    {scalar.name}  op={scalar.op.value}  "
              f"reads [{arrays}]")
    for histogram in report.histograms:
        kind = "affine" if histogram.idx_affine else "indirect"
        checks = "; ".join(c.describe() for c in histogram.runtime_checks)
        print(f"  histogram {histogram.name}  op={histogram.op.value}  "
              f"({kind} index)  checks [{checks}]")
    if args.extended:
        from .idioms import find_extended_in_function

        for function_reductions in report.functions:
            extensions = find_extended_in_function(
                function_reductions.function, module, registry=registry,
                ctx=function_reductions.solver_context,
                stats=function_reductions.stats,
                spec_stats=function_reductions.spec_stats,
            )
            for dot in extensions.dot_products:
                print(f"  extension dot-product {dot.name}")
            for match in extensions.argminmax:
                print(f"  extension argminmax {match.name}")
            for nested in extensions.nested_array:
                print(f"  extension nested-array-reduction {nested.name}"
                      f"  op={nested.op.value}")
    custom = registry.custom()
    if custom:
        # Reuse the analyses detection already computed per function.
        for fr in report.functions:
            if fr.solver_context is None:
                fr.solver_context = SolverContext(fr.function, module)
        for entry in custom:
            total = 0
            for fr in report.functions:
                stats = SolverStats()
                matches = solve(fr.solver_context, entry.spec, stats=stats)
                fr.spec_stats.setdefault(
                    entry.name, SolverStats()
                ).merge(stats)
                if fr.stats is not None:
                    # Keep the documented invariant: the function
                    # aggregate is always the merge of the breakdown.
                    fr.stats.merge(stats)
                if matches:
                    print(f"  custom    {entry.name}  {len(matches)} "
                          f"match(es) in {fr.function.name}")
                total += len(matches)
            if total == 0:
                print(f"  custom    {entry.name}  no matches")
    if args.baselines:
        from .baselines import icc, polly

        icc_report = icc.analyze_module(module)
        polly_report = polly.analyze_module(module)
        print(f"  icc model   : {icc_report.reduction_count()} reduction(s)")
        scops, reduction_scops = polly_report.counts()
        print(f"  Polly model : {scops} SCoP(s), "
              f"{reduction_scops} with reductions")
    if args.save_feedback:
        from .pipeline import feedback_from_detection

        _save_feedback_cli(feedback_from_detection(report),
                           args.save_feedback)
    return 0


def _cmd_lint(args) -> int:
    from .constraints import BUILTIN_SPEC_FILES, builtin_spec_path
    from .constraints.analysis import (
        exit_code,
        lint_spec_files,
        render_report,
        report_json,
    )

    paths = args.files or [
        builtin_spec_path(name) for name in BUILTIN_SPEC_FILES
    ]
    diags, parse_failed = lint_spec_files(paths, cross=not args.no_cross)
    if args.json:
        print(report_json(diags, strict=args.strict, files=paths), end="")
    else:
        print(render_report(diags, notes=args.notes))
    return exit_code(diags, strict=args.strict, parse_failed=parse_failed)


def _cmd_emit(args) -> int:
    module = compile_source(_read(args.file), args.file)
    print(print_module(module), end="")
    return 0


def _cmd_parallelize(args) -> int:
    module = compile_source(_read(args.file), args.file)
    report = find_reductions(module)
    tasks = []
    for function_reductions in report.functions:
        plans, failures = plan_all(module, function_reductions)
        for failure in failures:
            print(f"  refused: {failure}")
        for plan in plans:
            task = outline_loop(module, plan)
            print(f"  outlined: {task.task.name} "
                  f"({len(plan.scalars)} scalar(s), "
                  f"{len(plan.histograms)} histogram(s))")
            tasks.append(task)
    if not tasks:
        print("nothing to parallelize")
        return 1
    _, _, sequential = run_sequential(module, entry=args.entry)
    executor = ParallelExecutor(module, tasks, threads=args.threads)
    result = executor.run(entry=args.entry)
    if result.output != sequential.output:
        print("ERROR: parallel output diverged", file=sys.stderr)
        return 2
    machine = MachineModel(cores=args.threads)
    t_seq = sequential.instructions_executed
    t_par = result.simulated_time(machine)
    print(f"sequential: {t_seq} cycles; parallel: {t_par:.0f} cycles "
          f"({args.threads} cores)")
    print(f"speedup: {t_seq / t_par:.2f}x; outputs match")
    return 0


def _cmd_corpus(args) -> int:
    from .evaluation.discovery import run_discovery, summary_against_paper
    from .pipeline import detect_corpus, feedback_from_report, save_report

    # Resolve the feedback artifact up front through the one shared
    # parent-side implementation (read + fingerprint-verified exactly
    # once), so a bad file exits cleanly while genuine pipeline
    # errors stay loud.
    feedback_orders = None
    if args.feedback_from:
        from .pipeline import PipelineOptions, resolve_feedback_options

        try:
            resolved = resolve_feedback_options(
                PipelineOptions(feedback_from=args.feedback_from)
            )
        except (OSError, ValueError) as exc:
            return _feedback_error(exc)
        feedback_orders = resolved.spec_orders
    # One pipeline run feeds both the Figure 8 panels and the
    # extension listing.
    report = detect_corpus(jobs=args.jobs, baselines=True,
                           extended=args.extended,
                           granularity=args.granularity,
                           weights_from=args.weights_from,
                           spec_orders=feedback_orders,
                           engine=args.engine,
                           explore=args.explore,
                           explore_seed=args.explore_seed)
    results = {
        name: run_discovery(name, report=report)
        for name in ("NAS", "Parboil", "Rodinia")
    }
    for result in results.values():
        print(result.render())
        print()
    print(summary_against_paper(results))
    if args.extended:
        print()
        print(f"extension idioms: {report.summary()}")
        for program in report.programs:
            for match in program.extended:
                detail = f"  [{match.detail}]" if match.detail else ""
                print(f"  {program.suite}/{program.name}  "
                      f"{match.idiom}  {match.name}{detail}")
    if args.save_report:
        save_report(report, args.save_report)
        print(f"report saved to {args.save_report}")
    if args.save_feedback:
        _save_feedback_cli(feedback_from_report(report),
                           args.save_feedback)
    return _failure_exit(report.failures, args.allow_failures)


def _order_rows(store, name):
    """``{order: [(bucket, obs), ...]}`` for one spec, sorted."""
    rows: dict = {}
    for (spec, order, bucket), obs in sorted(store.orders.items()):
        if spec == name:
            rows.setdefault(order, []).append((bucket, obs))
    return rows


def _render_feedback(store, registry) -> list[str]:
    """The deterministic ``feedback inspect`` body lines."""
    from .pipeline import canonical_orders

    lines = [f"  {store.describe()}"]
    current = {entry.name: entry.spec.label_order for entry in registry}
    derived = store.spec_orders(registry)
    for name in sorted(set(store.specs) | {k[0] for k in store.orders}):
        stats = store.specs.get(name)
        lines.append(f"spec {name}")
        if stats is not None:
            lines.append(
                f"  stats: {stats.constraint_evals} constraint eval(s), "
                f"{stats.solutions} solution(s), "
                f"{len(stats.candidates_per_prefix)} measured prefix "
                f"continuation(s)"
            )
        for order, buckets in _order_rows(store, name).items():
            tag = ""
            if order == current.get(name):
                tag = "  [incumbent]"
            elif name in derived and order == derived[name]:
                tag = "  [winner]"
            functions = sum(obs.functions for _, obs in buckets)
            evals = sum(obs.constraint_evals for _, obs in buckets)
            saving = sum(obs.saving() for _, obs in buckets)
            detail = f"functions={functions} evals={evals}"
            if saving:
                detail += f" paired saving {saving:+d}"
            lines.append(f"  order {' '.join(order)}{tag}")
            lines.append(f"    {detail} over "
                         f"{' '.join(sorted(b for b, _ in buckets))}")
    changed = canonical_orders(derived)
    if changed is None:
        lines.append("derive: no order changes")
    else:
        lines.append("derive:")
        for name, order in changed:
            lines.append(f"  {name}: {' '.join(order)}")
    return lines


def _cmd_feedback(args) -> int:
    from .pipeline import save_feedback
    from .pipeline.feedback import FEEDBACK_VERSION

    store, code = _load_feedback_cli(args.artifact)
    if store is None:
        return code
    if args.action == "inspect":
        registry = _build_registry(getattr(args, "spec", None))
        if args.json:
            import json as json_module

            payload = store.to_jsonable()
            payload["derived_orders"] = {
                name: list(order)
                for name, order in sorted(
                    store.spec_orders(registry).items()
                )
            }
            print(json_module.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"feedback artifact {args.artifact}")
        print(f"  version {FEEDBACK_VERSION}; "
              f"fingerprint {store.fingerprint()}")
        for line in _render_feedback(store, registry):
            print(line)
        return 0
    if args.action == "diff":
        other, code = _load_feedback_cli(args.other)
        if other is None:
            return code
        if store.fingerprint() == other.fingerprint():
            print(f"identical: {store.describe()}")
            return 0
        print(f"A {args.artifact}: {store.describe()}")
        print(f"B {args.other}: {other.describe()}")
        for name in sorted(set(store.specs) | set(other.specs)):
            a, b = store.specs.get(name), other.specs.get(name)
            if a is None:
                print(f"  spec {name}: only in B")
            elif b is None:
                print(f"  spec {name}: only in A")
            elif a.canonical() != b.canonical():
                print(f"  spec {name}: evals "
                      f"{b.constraint_evals - a.constraint_evals:+d}, "
                      f"solutions {b.solutions - a.solutions:+d}")
        added = sorted(set(other.orders) - set(store.orders))
        removed = sorted(set(store.orders) - set(other.orders))
        changed = sorted(
            key for key in set(store.orders) & set(other.orders)
            if store.orders[key].canonical()
            != other.orders[key].canonical()
        )
        for key in removed:
            print(f"  order row only in A: {key[0]} {key[2]}")
        for key in added:
            print(f"  order row only in B: {key[0]} {key[2]}")
        for key in changed:
            delta = (other.orders[key].constraint_evals
                     - store.orders[key].constraint_evals)
            print(f"  order row {key[0]} {key[2]}: evals {delta:+d}")
        return 1
    # decay
    before = store.describe()
    try:
        store.decay(args.keep)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = args.out or args.artifact
    save_feedback(store, out)
    print(f"decayed {args.artifact} (keep={args.keep}) -> {out}")
    print(f"  before: {before}")
    print(f"  after:  {store.describe()}")
    return 0


def _cmd_serve(args) -> int:
    from .pipeline import (
        JobCancelled,
        PipelineOptions,
        ServingEngine,
        save_report,
    )

    if args.requests < 1:
        print("error: --requests must be >= 1", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.cancel_after is not None and args.cancel_after < 1:
        print("error: --cancel-after must be >= 1", file=sys.stderr)
        return 2
    if (args.max_tasks_per_worker is not None
            and args.max_tasks_per_worker < 1):
        print("error: --max-tasks-per-worker must be >= 1",
              file=sys.stderr)
        return 2
    options = PipelineOptions(
        jobs=args.jobs,
        extended=args.extended,
        baselines=args.baselines,
        granularity=args.granularity,
        weights_from=args.weights_from,
        max_tasks_per_worker=args.max_tasks_per_worker,
        feedback_from=args.feedback_from,
        feedback_refresh=args.self_tune,
        explore=args.explore,
        explore_seed=args.explore_seed,
    )
    report = None
    failures: list = []
    engine = ServingEngine(options)
    try:
        # Resolve (and fingerprint-verify) the artifact before any
        # worker is spawned — one read, and a spawn failure can never
        # masquerade as an artifact error.
        engine.resolve_feedback()
    except (OSError, ValueError) as exc:
        return _feedback_error(exc)
    with engine:
        for request in range(args.requests):
            job = engine.submit(priority=args.priority)
            print(f"request {request + 1}/{args.requests}: "
                  f"{len(job.keys)} program(s) submitted to "
                  f"{engine.workers} persistent worker(s) "
                  f"[{job.priority.value}]")
            cancel_this = args.cancel_after is not None and request == 0
            streamed = 0
            try:
                for digest in job.stream():
                    streamed += 1
                    scalars, histograms = digest.counts()
                    print(f"  {digest.suite}/{digest.name}: "
                          f"{scalars} scalar, "
                          f"{histograms} histogram, "
                          f"{digest.constraint_evals} evals")
                    if cancel_this and streamed >= args.cancel_after:
                        drained = job.cancel()
                        print(f"request {request + 1}: cancelled after "
                              f"{streamed} digest(s), {drained} queued "
                              f"unit(s) drained")
            except JobCancelled:
                continue  # later requests prove the pool is unpoisoned
            if job.cancelled:
                # cancel() landed exactly as the job completed: the
                # stream ended normally, but result() would raise.
                continue
            report = job.result()
            if report.failures:
                failures.extend(report.failures)
                for failure in report.failures:
                    print(f"  FAILED {failure.describe()}",
                          file=sys.stderr)
            print(f"request {request + 1}: {report.summary()}")
        if engine.worker_deaths or engine.recycled:
            print(f"workers: {engine.worker_deaths} death(s), "
                  f"{engine.resubmissions} resubmission(s), "
                  f"{engine.recycled} recycle(s)")
        if engine.feedback_refreshes:
            print(f"feedback: {engine.feedback_refreshes} refresh(es), "
                  f"{engine.feedback_snapshot().describe()}")
        if args.save_feedback:
            _save_feedback_cli(engine.feedback_snapshot(),
                               args.save_feedback)
    if report is None:
        print("error: every request was cancelled; nothing to report",
              file=sys.stderr)
        return 2
    if args.save_report:
        save_report(report, args.save_report)
        print(f"report saved to {args.save_report}")
    # Failures first: a partial report is guaranteed to differ from
    # the batch engine, so running --check on it would mask the real
    # problem behind a misleading "diverged" verdict.
    code = _failure_exit(failures, args.allow_failures, describe=False)
    if code:
        return code
    if args.check:
        # The check verifies the *last* request's report; earlier
        # requests' accepted failures do not make it uncheckable.
        if report.failures:
            print("check: skipped — the accepted report is partial "
                  "and cannot match the batch engine")
            return 0
        from .pipeline import detect_corpus

        batch = detect_corpus(jobs=1, extended=args.extended,
                              baselines=args.baselines,
                              feedback_from=args.feedback_from)
        # A self-tuning session may legitimately have refreshed its
        # spec orders mid-session, moving search *effort* the batch
        # run cannot reproduce; the detections must still agree.
        effort = not engine.feedback_refreshes
        note = (
            "" if effort
            else " (detections only: self-tuned orders moved effort)"
        )
        if (report.fingerprint(effort=effort)
                != batch.fingerprint(effort=effort)):
            print("ERROR: served report diverged from the batch engine",
                  file=sys.stderr)
            return 2
        print(f"check: served fingerprint identical to jobs=1 batch "
              f"run{note}")
    return 0


def _cmd_gateway(args) -> int:
    import signal
    import time

    from .pipeline import GatewayServer, PipelineOptions

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.unit_budget is not None and args.unit_budget < 1:
        print("error: --unit-budget must be >= 1", file=sys.stderr)
        return 2
    if args.serve_seconds is not None and args.serve_seconds <= 0:
        print("error: --serve-seconds must be > 0", file=sys.stderr)
        return 2
    options = PipelineOptions(
        jobs=args.jobs,
        extended=args.extended,
        baselines=args.baselines,
        granularity=args.granularity,
        module_cache_size=args.module_cache_size,
        **({} if args.unit_budget is None
           else {"gateway_unit_budget": args.unit_budget}),
    )
    # A plain `kill PID` should shut down exactly like Ctrl-C: reuse
    # the KeyboardInterrupt path so workers and the port file are
    # cleaned up either way.
    signal.signal(signal.SIGTERM, signal.default_int_handler)
    server = GatewayServer(options, host=args.host, port=args.port)
    try:
        server.start()
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(f"gateway listening on {args.host}:{server.port} "
          f"({args.jobs} worker(s), budget {server.budget} unit(s))",
          flush=True)
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(f"{server.port}\n")
    started = time.monotonic()
    try:
        while (args.serve_seconds is None
               or time.monotonic() - started < args.serve_seconds):
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if args.port_file:
            import os

            try:
                os.unlink(args.port_file)
            except OSError:
                pass
    stats = server.stats
    print(f"gateway stats: {stats['connections']} connection(s), "
          f"{stats['submits']} submit(s), "
          f"{stats['rejections']} rejection(s), "
          f"{stats['completed']} completed, "
          f"{stats['cancelled'] + stats['disconnect_cancelled']} "
          f"cancelled, {stats['digests']} digest(s) streamed")
    return 0


def _resolve_gateway_port(args) -> int | None:
    """The port to dial, from --port or by polling --port-file."""
    import time

    if not args.port_file:
        return args.port if args.port else None
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        try:
            with open(args.port_file) as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.1)
    return None


def _cmd_submit(args) -> int:
    from .pipeline import (
        GatewayClient,
        GatewayError,
        GatewayRejected,
        JobCancelled,
    )

    if args.cancel_after is not None and args.cancel_after < 1:
        print("error: --cancel-after must be >= 1", file=sys.stderr)
        return 2
    port = _resolve_gateway_port(args)
    if port is None:
        print("error: no gateway port (pass --port or --port-file of a "
              "running gateway)", file=sys.stderr)
        return 2
    keys = None
    if args.program:
        keys = []
        for spec in args.program:
            suite, _, name = spec.partition("/")
            if not name:
                print(f"error: --program wants SUITE/NAME, got {spec!r}",
                      file=sys.stderr)
                return 2
            keys.append((name, suite))
    if args.check and keys is not None:
        print("error: --check needs a whole-corpus submit "
              "(drop --program)", file=sys.stderr)
        return 2
    try:
        with GatewayClient(
            host=args.host, port=port, timeout=args.timeout,
            connect_retries=args.connect_retries,
        ) as client:
            try:
                request = client.submit(keys=keys, priority=args.priority)
            except GatewayRejected as exc:
                print(f"rejected: {exc.pending_units} pending + "
                      f"{exc.requested_units} requested unit(s) exceed "
                      f"the budget of {exc.budget}; retry after "
                      f"{exc.retry_after}s", file=sys.stderr)
                return 4
            print(f"accepted: {request.units} unit(s) "
                  f"[{args.priority}]")
            streamed = 0
            try:
                for digest in client.stream(request):
                    streamed += 1
                    scalars, histograms = digest.counts()
                    print(f"  {digest.suite}/{digest.name}: "
                          f"{scalars} scalar, {histograms} histogram, "
                          f"{digest.constraint_evals} evals")
                    if (args.cancel_after is not None
                            and streamed >= args.cancel_after):
                        drained = client.cancel(request)
                        print(f"cancelled after {streamed} digest(s), "
                              f"{drained} queued unit(s) drained")
                report = client.result(request)
            except JobCancelled:
                return 0
    except GatewayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    code = _failure_exit(report.failures, args.allow_failures,
                         describe=True)
    if code:
        return code
    if args.check:
        from .pipeline import detect_corpus

        batch = detect_corpus(jobs=1, extended=args.extended,
                              baselines=args.baselines)
        if report.fingerprint() != batch.fingerprint():
            print("ERROR: gateway report diverged from the batch "
                  "engine", file=sys.stderr)
            return 2
        print("check: gateway fingerprint identical to jobs=1 batch run")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Constraint-based reduction discovery (CGO 2017).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    detect_cmd = commands.add_parser("detect", help="detect reductions")
    detect_cmd.add_argument("file", nargs="?", default=None)
    detect_cmd.add_argument("--baselines", action="store_true",
                            help="also run the icc/Polly models")
    detect_cmd.add_argument("--extended", action="store_true",
                            help="also run the extension idioms")
    detect_cmd.add_argument("--spec", action="append", metavar="FILE.icsl",
                            help="load extra idiom spec file(s)")
    detect_cmd.add_argument("--list-idioms", action="store_true",
                            help="print the idiom registry")
    detect_cmd.add_argument("--feedback-from", metavar="FEEDBACK.json",
                            default=None,
                            help="re-order idiom specs from a recorded "
                                 "solver feedback artifact")
    detect_cmd.add_argument("--save-feedback", metavar="FEEDBACK.json",
                            default=None,
                            help="save this run's per-spec solver "
                                 "statistics for later --feedback-from use")
    detect_cmd.add_argument("--lint", action="store_true",
                            help="gate every loaded spec on the static "
                                 "analyzer (errors reject the spec)")
    detect_cmd.set_defaults(fn=_cmd_detect)

    lint_cmd = commands.add_parser(
        "lint", help="statically analyze idiom spec files")
    lint_cmd.add_argument("files", nargs="*", metavar="FILE.icsl",
                          help="spec files to analyze (default: the "
                               "shipped built-in specs)")
    lint_cmd.add_argument("--strict", action="store_true",
                          help="warnings also produce a nonzero exit")
    lint_cmd.add_argument("--json", action="store_true",
                          help="emit the machine-readable JSON report")
    lint_cmd.add_argument("--notes", action="store_true",
                          help="show engine-pruning notes in the text "
                               "report (JSON always carries them)")
    lint_cmd.add_argument("--no-cross", action="store_true",
                          help="skip the cross-spec subsumption sweep")
    lint_cmd.set_defaults(fn=_cmd_lint)

    emit_cmd = commands.add_parser("emit", help="print canonical SSA IR")
    emit_cmd.add_argument("file")
    emit_cmd.set_defaults(fn=_cmd_emit)

    par_cmd = commands.add_parser("parallelize",
                                  help="outline + simulate parallel run")
    par_cmd.add_argument("file")
    par_cmd.add_argument("--threads", type=int, default=64)
    par_cmd.add_argument("--entry", default="main")
    par_cmd.set_defaults(fn=_cmd_parallelize)

    corpus_cmd = commands.add_parser("corpus",
                                     help="Figure 8 over the corpus")
    corpus_cmd.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the pipeline")
    corpus_cmd.add_argument("--extended", action="store_true",
                            help="also run the extension idioms")
    corpus_cmd.add_argument("--granularity",
                            choices=("program", "function"),
                            default="program",
                            help="work-unit granularity for sharding")
    corpus_cmd.add_argument("--engine",
                            choices=("compiled", "interpreted"),
                            default=None,
                            help="solver execution engine (default: "
                                 "compiled flat-plan engine)")
    corpus_cmd.add_argument("--weights-from", metavar="REPORT.json",
                            default=None,
                            help="balance shards by a previous run's "
                                 "measured costs")
    corpus_cmd.add_argument("--save-report", metavar="REPORT.json",
                            default=None,
                            help="save this run's digests for later "
                                 "--weights-from use")
    corpus_cmd.add_argument("--feedback-from", metavar="FEEDBACK.json",
                            default=None,
                            help="re-order idiom specs from a recorded "
                                 "solver feedback artifact")
    corpus_cmd.add_argument("--save-feedback", metavar="FEEDBACK.json",
                            default=None,
                            help="save the merged corpus-wide solver "
                                 "feedback for later --feedback-from use")
    corpus_cmd.add_argument("--allow-failures", action="store_true",
                            help="exit 0 even when the report records "
                                 "failed units (default: exit 3)")
    corpus_cmd.add_argument("--explore", type=float, default=0.0,
                            metavar="EPS",
                            help="deterministically explore perturbed "
                                 "spec orders on this fraction of "
                                 "functions (recorded per-order "
                                 "observations feed --save-feedback)")
    corpus_cmd.add_argument("--explore-seed", type=int, default=0,
                            metavar="N",
                            help="seed of the exploration sample (same "
                                 "seed, same sample — byte-reproducible)")
    corpus_cmd.set_defaults(fn=_cmd_corpus)

    feedback_cmd = commands.add_parser(
        "feedback", help="inspect / diff / decay feedback artifacts")
    feedback_actions = feedback_cmd.add_subparsers(dest="action",
                                                   required=True)
    inspect_cmd = feedback_actions.add_parser(
        "inspect", help="print an artifact's content and derived orders")
    inspect_cmd.add_argument("artifact", metavar="FEEDBACK.json")
    inspect_cmd.add_argument("--spec", action="append",
                             metavar="FILE.icsl",
                             help="derive against extra idiom spec "
                                  "file(s) too")
    inspect_cmd.add_argument("--json", action="store_true",
                             help="emit the machine-readable JSON form")
    inspect_cmd.set_defaults(fn=_cmd_feedback)
    diff_cmd = feedback_actions.add_parser(
        "diff", help="compare two artifacts (exit 1 when they differ)")
    diff_cmd.add_argument("artifact", metavar="A.json")
    diff_cmd.add_argument("other", metavar="B.json")
    diff_cmd.set_defaults(fn=_cmd_feedback)
    decay_cmd = feedback_actions.add_parser(
        "decay", help="scale every recorded counter (retention)")
    decay_cmd.add_argument("artifact", metavar="FEEDBACK.json")
    decay_cmd.add_argument("--keep", type=float, required=True,
                           metavar="R",
                           help="fraction of every counter to keep, "
                                "in [0, 1]")
    decay_cmd.add_argument("--out", metavar="OUT.json", default=None,
                           help="write the decayed artifact here "
                                "(default: in place)")
    decay_cmd.set_defaults(fn=_cmd_feedback)

    serve_cmd = commands.add_parser(
        "serve", help="persistent serving engine over the corpus")
    serve_cmd.add_argument("--jobs", type=int, default=2,
                           help="persistent worker processes")
    serve_cmd.add_argument("--requests", type=int, default=1,
                           help="times to submit the corpus")
    serve_cmd.add_argument("--extended", action="store_true",
                           help="also run the extension idioms")
    serve_cmd.add_argument("--baselines", action="store_true",
                           help="also run the icc/Polly models")
    serve_cmd.add_argument("--granularity",
                           choices=("program", "function"),
                           default="function",
                           help="work-unit granularity (default: function)")
    serve_cmd.add_argument("--priority",
                           choices=("interactive", "batch"),
                           default="batch",
                           help="scheduling class for the submits "
                                "(interactive overtakes queued batch)")
    serve_cmd.add_argument("--max-tasks-per-worker", type=int,
                           default=None, metavar="N",
                           help="recycle each worker after N units")
    serve_cmd.add_argument("--cancel-after", type=int, default=None,
                           metavar="N",
                           help="cancel the first request after N "
                                "streamed digests (cancellation smoke)")
    serve_cmd.add_argument("--weights-from", metavar="REPORT.json",
                           default=None,
                           help="serve heaviest measured units first")
    serve_cmd.add_argument("--save-report", metavar="REPORT.json",
                           default=None,
                           help="save the last request's digests")
    serve_cmd.add_argument("--feedback-from", metavar="FEEDBACK.json",
                           default=None,
                           help="warm every worker's spec orders from a "
                                "recorded solver feedback artifact")
    serve_cmd.add_argument("--save-feedback", metavar="FEEDBACK.json",
                           default=None,
                           help="save the session's merged solver "
                                "feedback (initial artifact + served "
                                "units) on exit")
    serve_cmd.add_argument("--self-tune", action="store_true",
                           help="re-derive spec orders from served "
                                "units at every submit (long-lived "
                                "sessions tune themselves)")
    serve_cmd.add_argument("--explore", type=float, default=0.0,
                           metavar="EPS",
                           help="deterministically explore perturbed "
                                "spec orders on this fraction of served "
                                "functions (pairs with --self-tune: "
                                "measured winners are adopted live)")
    serve_cmd.add_argument("--explore-seed", type=int, default=0,
                           metavar="N",
                           help="seed of the exploration sample")
    serve_cmd.add_argument("--allow-failures", action="store_true",
                           help="exit 0 even when requests recorded "
                                "failed units (default: exit 3)")
    serve_cmd.add_argument("--check", action="store_true",
                           help="verify fingerprint identity with the "
                                "jobs=1 batch engine")
    serve_cmd.set_defaults(fn=_cmd_serve)

    gateway_cmd = commands.add_parser(
        "gateway", help="socket gateway over the serving engine")
    gateway_cmd.add_argument("--jobs", type=int, default=2,
                             help="persistent worker processes")
    gateway_cmd.add_argument("--host", default="127.0.0.1",
                             help="bind address (default: loopback)")
    gateway_cmd.add_argument("--port", type=int, default=0,
                             help="TCP port (0 = ephemeral)")
    gateway_cmd.add_argument("--port-file", metavar="FILE", default=None,
                             help="write the bound port here for "
                                  "clients to discover")
    gateway_cmd.add_argument("--extended", action="store_true",
                             help="also run the extension idioms")
    gateway_cmd.add_argument("--baselines", action="store_true",
                             help="also run the icc/Polly models")
    gateway_cmd.add_argument("--granularity",
                             choices=("program", "function"),
                             default="function",
                             help="work-unit granularity "
                                  "(default: function)")
    gateway_cmd.add_argument("--unit-budget", type=int, default=None,
                             metavar="N",
                             help="per-connection admission budget in "
                                  "pending work units")
    gateway_cmd.add_argument("--module-cache-size", type=int,
                             default=None, metavar="N",
                             help="bound each worker's compiled-module "
                                  "cache to N entries (LRU)")
    gateway_cmd.add_argument("--serve-seconds", type=float, default=None,
                             metavar="N",
                             help="exit after N seconds (default: "
                                  "serve until SIGINT/SIGTERM)")
    gateway_cmd.set_defaults(fn=_cmd_gateway)

    submit_cmd = commands.add_parser(
        "submit", help="submit programs to a running gateway")
    submit_cmd.add_argument("--host", default="127.0.0.1",
                            help="gateway address")
    submit_cmd.add_argument("--port", type=int, default=0,
                            help="gateway port")
    submit_cmd.add_argument("--port-file", metavar="FILE", default=None,
                            help="poll this file for the gateway port "
                                 "(written by `gateway --port-file`)")
    submit_cmd.add_argument("--program", action="append",
                            metavar="SUITE/NAME",
                            help="submit only these programs "
                                 "(default: whole corpus)")
    submit_cmd.add_argument("--priority",
                            choices=("interactive", "batch"),
                            default="batch",
                            help="scheduling class for the request")
    submit_cmd.add_argument("--cancel-after", type=int, default=None,
                            metavar="N",
                            help="cancel the request after N streamed "
                                 "digests")
    submit_cmd.add_argument("--timeout", type=float, default=120.0,
                            help="socket/port-file timeout in seconds")
    submit_cmd.add_argument("--connect-retries", type=int, default=20,
                            help="connection attempts before giving up")
    submit_cmd.add_argument("--extended", action="store_true",
                            help="--check comparison flag: the gateway "
                                 "runs the extension idioms")
    submit_cmd.add_argument("--baselines", action="store_true",
                            help="--check comparison flag: the gateway "
                                 "runs the baseline models")
    submit_cmd.add_argument("--allow-failures", action="store_true",
                            help="exit 0 even when the report records "
                                 "failed units (default: exit 3)")
    submit_cmd.add_argument("--check", action="store_true",
                            help="verify fingerprint identity with a "
                                 "local jobs=1 batch run "
                                 "(whole-corpus submits only)")
    submit_cmd.set_defaults(fn=_cmd_submit)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
