"""Corpus-scale detection pipeline.

The paper's detector runs once per compiled program; the north-star is
a system that detects reductions across heavy corpus traffic as fast as
the hardware allows.  This package is the seam between the two: a
staged, batched detection engine that

* **plans and shards** corpus work across worker processes — whole
  programs, or ``(program, function)`` units so one giant module
  cannot serialize a run; weighted by a static proxy or by a previous
  run's **measured costs** (:mod:`repro.pipeline.shard`),
* runs each unit through the **staged** worker — compile (cached per
  worker) → detect (shared solver caches) → extension idioms →
  baseline models (:mod:`repro.pipeline.worker`),
* reduces per-shard results with a **deterministic checked merge**
  back into canonical corpus order (:mod:`repro.pipeline.engine`),
* serves continuous traffic through a **persistent engine** —
  long-lived warm workers, async submission, streamed per-program
  digests, weighted-fair **priority scheduling** (interactive vs
  batch job classes), per-job **cancellation**, and **fault
  tolerance**: heartbeat liveness, worker recycling, and bounded
  resubmission of units lost to killed workers
  (:mod:`repro.pipeline.serving`), and
* exposes the persistent engine over the network through a **socket
  gateway** — length-prefixed JSON frames, streamed digests,
  mid-flight cancellation and per-connection admission control with
  structured retry-after backpressure (:mod:`repro.pipeline.gateway`),
  and
* reports everything as process-portable **digests** whose fingerprint
  is byte-identical between ``jobs=1``, ``jobs=N``, function-sharded,
  served and gateway-served runs (:mod:`repro.pipeline.digest`).

Quickstart::

    from repro.pipeline import PipelineOptions, ServingEngine, detect_corpus

    report = detect_corpus(jobs=4, extended=True, granularity="function")
    print(report.summary())
    assert report.fingerprint() == detect_corpus(jobs=1,
                                                 extended=True).fingerprint()

    with ServingEngine(PipelineOptions(jobs=4, extended=True,
                                       granularity="function")) as engine:
        for digest in engine.submit().stream():
            print(digest.name, digest.counts())
"""

from .digest import (
    CorpusReport,
    ExtensionDigest,
    FunctionDigest,
    HistogramDigest,
    ProgramDigest,
    ScalarDigest,
    UnitDigest,
    UnitFailure,
    assemble_program,
    digest_extensions,
    digest_function,
    digest_report,
    load_report,
    program_from_json,
    program_to_json,
    report_from_json,
    report_to_json,
    save_report,
)
from .engine import (
    DetectionPipeline,
    detect_corpus,
    merge_digests,
    merge_unit_digests,
    resolve_feedback_options,
)
from .feedback import (
    ExplorationPolicy,
    FeedbackStore,
    OrderObs,
    canonical_orders,
    feedback_from_detection,
    feedback_from_report,
    load_feedback,
    save_feedback,
    shape_bucket,
)
from .gateway import (
    GatewayClient,
    GatewayError,
    GatewayRejected,
    GatewayRequest,
    GatewayRequestFailed,
    GatewayServer,
)
from .options import PipelineOptions
from .serving import (
    JobCancelled,
    JobClass,
    PriorityScheduler,
    ServingEngine,
    ServingJob,
    serve_worker,
)
from .shard import (
    WorkUnit,
    lpt_order,
    make_shards,
    measured_weights,
    plan_units,
    unit_weight,
)
from .worker import detect_program, detect_unit, run_shard, run_unit_shard

__all__ = [
    "PipelineOptions",
    "DetectionPipeline",
    "ServingEngine",
    "ServingJob",
    "JobClass",
    "JobCancelled",
    "PriorityScheduler",
    "serve_worker",
    "GatewayServer",
    "GatewayClient",
    "GatewayRequest",
    "GatewayError",
    "GatewayRejected",
    "GatewayRequestFailed",
    "detect_corpus",
    "merge_digests",
    "merge_unit_digests",
    "lpt_order",
    "make_shards",
    "plan_units",
    "measured_weights",
    "unit_weight",
    "WorkUnit",
    "run_shard",
    "run_unit_shard",
    "detect_program",
    "detect_unit",
    "CorpusReport",
    "ProgramDigest",
    "UnitDigest",
    "UnitFailure",
    "FunctionDigest",
    "ScalarDigest",
    "HistogramDigest",
    "ExtensionDigest",
    "assemble_program",
    "digest_report",
    "digest_function",
    "digest_extensions",
    "report_to_json",
    "report_from_json",
    "program_to_json",
    "program_from_json",
    "load_report",
    "save_report",
    "ExplorationPolicy",
    "FeedbackStore",
    "OrderObs",
    "shape_bucket",
    "canonical_orders",
    "feedback_from_detection",
    "feedback_from_report",
    "load_feedback",
    "save_feedback",
    "resolve_feedback_options",
]
