"""Corpus-scale detection pipeline.

The paper's detector runs once per compiled program; the north-star is
a system that detects reductions across heavy corpus traffic as fast as
the hardware allows.  This package is the seam between the two: a
staged, batched detection engine that

* **shards** corpus programs across worker processes
  (:mod:`repro.pipeline.shard`),
* runs each program through the **staged** worker — compile → detect
  (shared solver caches) → extension idioms → baseline models
  (:mod:`repro.pipeline.worker`),
* reduces per-shard results with a **deterministic merge** back into
  canonical corpus order (:mod:`repro.pipeline.engine`), and
* reports everything as process-portable **digests** whose fingerprint
  is byte-identical between ``jobs=1`` and ``jobs=N`` runs
  (:mod:`repro.pipeline.digest`).

Quickstart::

    from repro.pipeline import detect_corpus

    report = detect_corpus(jobs=4, extended=True)
    print(report.summary())
    assert report.fingerprint() == detect_corpus(jobs=1,
                                                 extended=True).fingerprint()
"""

from .digest import (
    CorpusReport,
    ExtensionDigest,
    FunctionDigest,
    HistogramDigest,
    ProgramDigest,
    ScalarDigest,
    digest_extensions,
    digest_report,
)
from .engine import DetectionPipeline, detect_corpus, merge_digests
from .options import PipelineOptions
from .shard import make_shards
from .worker import detect_program, run_shard

__all__ = [
    "PipelineOptions",
    "DetectionPipeline",
    "detect_corpus",
    "merge_digests",
    "make_shards",
    "run_shard",
    "detect_program",
    "CorpusReport",
    "ProgramDigest",
    "FunctionDigest",
    "ScalarDigest",
    "HistogramDigest",
    "ExtensionDigest",
    "digest_report",
    "digest_extensions",
]
