"""Socket gateway: the network front door of the serving engine.

The :class:`~repro.pipeline.serving.ServingEngine` has priority
scheduling, cancellation, fault tolerance and streaming — but only
in-process callers can reach it.  :class:`GatewayServer` puts a
long-lived asyncio TCP server in front (stdlib only), following the
shape of a long-lived application loop fed by a thin connectivity
layer: the asyncio side does nothing but frame I/O, and one dedicated
**driver thread** owns every engine interaction, so the engine's
single-threaded supervisor loop never races the event loop.

Wire protocol
-------------

Length-prefixed JSON frames: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Requests carry an ``op``;
responses carry a ``type`` plus the client-chosen request ``id`` they
answer.  One connection multiplexes any number of in-flight requests;
the server streams each program's digest the moment it completes
(``digest`` frames, completion order) and closes every request with
exactly one terminal frame — ``result`` (the canonical
fingerprint-stable report), ``failed``, or ``cancelled``.

Admission control and backpressure
----------------------------------

Every connection has a bounded budget of *pending work units*
(:attr:`~repro.pipeline.options.PipelineOptions.gateway_unit_budget`).
A ``submit`` whose planned units would push the connection past its
budget is answered with a structured ``rejected`` frame carrying
``retry_after`` seconds (estimated from the measured per-unit service
time) instead of being queued — so a greedy batch client saturates its
own budget and backs off, while interactive clients on their own
connections keep their admission headroom and the engine's
weighted-fair scheduler keeps their latency bounded.  An *idle*
connection is always admitted, even past the budget, so one request
bigger than the whole budget cannot be starved; the budget bounds
accumulation, not request size.  A client that
disconnects mid-stream has all its jobs cancelled engine-side: queued
units leave the scheduler, in-flight results are dropped on arrival,
nothing leaks.

Determinism is untouched: the gateway transports digests, it never
reorders or merges them — a served report rebuilt from a ``result``
frame is fingerprint-identical to ``detect_corpus(jobs=1)`` with the
same options (the frame embeds the fingerprint, and
:func:`~repro.pipeline.digest.report_from_json` verifies it on
rebuild).

Quickstart::

    from repro.pipeline import GatewayClient, GatewayServer, PipelineOptions

    with GatewayServer(PipelineOptions(jobs=4, granularity="function"),
                       port=0) as server:
        with GatewayClient(port=server.port) as client:
            request = client.submit(keys=[("EP", "NAS")],
                                    priority="interactive")
            report = client.result(request)   # streams, then verifies
"""

from __future__ import annotations

import itertools
import json
import queue
import socket
import struct
import threading
import time
from typing import Iterator, Sequence

from .digest import (
    CorpusReport,
    ProgramDigest,
    program_from_json,
    program_to_json,
    report_from_json,
    report_to_json,
)
from .options import PipelineOptions
from .serving import JobCancelled, JobClass, ServingEngine
from .shard import plan_units

Key = tuple[str, str]

#: Frame header: one big-endian u32 payload length.
FRAME_HEADER = struct.Struct(">I")
#: Upper bound on a single frame body — a full-corpus ``result`` frame
#: is ~1 MiB; anything near this limit is a protocol error, not data.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class GatewayError(Exception):
    """Protocol- or connection-level gateway failure."""


class GatewayRejected(GatewayError):
    """A submit was refused by admission control.

    Carries the structured reject frame's backpressure contract:
    ``retry_after`` (seconds the client should wait before retrying),
    ``pending_units`` (the connection's in-flight units at rejection),
    ``requested_units`` and ``budget``.
    """

    def __init__(self, retry_after: float, pending_units: int,
                 requested_units: int, budget: int):
        self.retry_after = retry_after
        self.pending_units = pending_units
        self.requested_units = requested_units
        self.budget = budget
        super().__init__(
            f"rejected: {pending_units} pending + {requested_units} "
            f"requested units exceed the budget of {budget} "
            f"(retry after {retry_after}s)"
        )


class GatewayRequestFailed(GatewayError):
    """The server answered a request with a ``failed`` frame."""


def encode_frame(payload: dict) -> bytes:
    """One wire frame: length header + canonical-form JSON body."""
    body = json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(body)} bytes exceeds the limit")
    return FRAME_HEADER.pack(len(body)) + body


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 16))
        if not chunk:
            raise GatewayError("connection closed by the gateway")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict:
    """Blocking read of one frame from a plain socket (client side)."""
    (length,) = FRAME_HEADER.unpack(_recv_exactly(sock, FRAME_HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise GatewayError(f"oversized frame of {length} bytes")
    try:
        payload = json.loads(_recv_exactly(sock, length).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GatewayError(f"malformed frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise GatewayError("frame payload is not an object")
    return payload


async def _read_frame_async(reader) -> dict:
    """One frame from an asyncio stream (server side); raises on EOF,
    oversize and malformed JSON alike — any of them ends the
    connection."""
    header = await reader.readexactly(FRAME_HEADER.size)
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"oversized frame of {length} bytes")
    body = await reader.readexactly(length)
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("frame payload is not an object")
    return payload


class _Conn:
    """One client connection, as the server sees it.

    ``outbox`` belongs to the event loop (the writer task drains it);
    ``requests`` belongs to the driver thread.  ``closed`` is flipped
    by the driver on disconnect so late sends are dropped instead of
    queued for a writer that is shutting down.
    """

    __slots__ = ("id", "writer", "outbox", "requests", "closed")

    def __init__(self, conn_id: int, writer, outbox):
        self.id = conn_id
        self.writer = writer
        self.outbox = outbox
        self.requests: dict = {}
        self.closed = False


class _ServerRequest:
    """Driver-side state of one accepted submit."""

    __slots__ = ("client_id", "job", "units", "started")

    def __init__(self, client_id: int, job, units: int):
        self.client_id = client_id
        self.job = job
        self.units = units
        self.started = time.monotonic()


class GatewayServer:
    """A long-lived TCP front door over one :class:`ServingEngine`.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  The server is a context manager; :meth:`close`
    drains the driver, shuts the engine down and stops the event loop.
    Admission budget defaults to the options'
    ``gateway_unit_budget``.
    """

    def __init__(self, options: PipelineOptions | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 budget: int | None = None, **kwargs):
        self.options = (
            options if options is not None else PipelineOptions(**kwargs)
        )
        self.host = host
        self.port: int | None = None
        self._requested_port = port
        self.budget = (
            budget if budget is not None
            else self.options.gateway_unit_budget
        )
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        self.engine = ServingEngine(self.options)
        self._commands: "queue.Queue[tuple]" = queue.Queue()
        self._conns: dict[int, _Conn] = {}
        self._conn_ids = itertools.count()
        self._loop = None
        self._stopped = None
        self._loop_thread: threading.Thread | None = None
        self._driver: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        #: EWMA of observed wall seconds per work unit — the basis of
        #: the ``retry_after`` hint in reject frames.
        self._unit_seconds = 0.1
        self._stats = {
            "connections": 0,
            "disconnects": 0,
            "submits": 0,
            "rejections": 0,
            "digests": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "disconnect_cancelled": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "GatewayServer":
        """Bind the socket, spawn workers and the driver (idempotent)."""
        if self._loop_thread is not None:
            return self
        # Workers come up before the first byte is accepted, and on
        # the caller's thread — spawn and feedback-artifact errors
        # surface here, not inside a background loop.  From here on
        # the driver thread is the engine's only caller.
        self.engine.start()
        import asyncio

        ready = threading.Event()

        def run_loop() -> None:
            try:
                asyncio.run(self._main(ready))
            except BaseException as exc:  # pragma: no cover - defensive
                self._startup_error = self._startup_error or exc
            finally:
                ready.set()

        self._loop_thread = threading.Thread(
            target=run_loop, daemon=True, name="gateway-loop"
        )
        self._loop_thread.start()
        ready.wait(timeout=30)
        if self._startup_error is not None or self.port is None:
            error = self._startup_error or GatewayError(
                "gateway event loop failed to start"
            )
            self.engine.shutdown()
            self._loop_thread.join(timeout=5)
            self._loop_thread = None
            raise error
        self._driver = threading.Thread(
            target=self._drive, daemon=True, name="gateway-driver"
        )
        self._driver.start()
        return self

    def close(self) -> None:
        """Stop serving: drain the driver, shut the engine down
        (idempotent)."""
        if self._loop_thread is None:
            return
        if self._driver is not None:
            self._commands.put(("stop",))
            self._driver.join(timeout=60)
            self._driver = None
        self._signal_loop_stop()
        self._loop_thread.join(timeout=10)
        self._loop_thread = None
        if self.engine.running:  # pragma: no cover - driver crash path
            self.engine.shutdown()

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability -------------------------------------------------------

    @property
    def stats(self) -> dict:
        """A copy of the lifetime counters (driver-maintained)."""
        return dict(self._stats)

    def active_requests(self) -> int:
        """Accepted submits not yet answered with a terminal frame."""
        return sum(len(conn.requests) for conn in self._conns.values())

    def queued_units(self) -> int:
        """Units currently queued in the engine's scheduler — 0 once
        every job finished or was cancelled (the no-leak invariant the
        disconnect tests pin)."""
        return len(self.engine._scheduler)

    # -- the event loop ------------------------------------------------------

    async def _main(self, ready: threading.Event) -> None:
        import asyncio

        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_client, self.host, self._requested_port
            )
        except OSError as exc:
            self._startup_error = exc
            ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        ready.set()
        async with server:
            await self._stopped.wait()

    async def _handle_client(self, reader, writer) -> None:
        import asyncio

        conn = _Conn(next(self._conn_ids), writer, asyncio.Queue())
        self._commands.put(("connect", conn))
        writer_task = asyncio.get_running_loop().create_task(
            self._write_frames(conn)
        )
        try:
            while True:
                frame = await _read_frame_async(reader)
                self._commands.put(("frame", conn, frame))
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                ValueError):
            # EOF, reset, oversize or malformed frame: the connection
            # is over either way; the driver cancels its jobs.
            pass
        finally:
            self._commands.put(("disconnect", conn))
            # The driver answers the disconnect by posting the outbox
            # sentinel, which ends the writer task and closes the
            # transport.  During server teardown the loop shutdown
            # cancels the writer instead — that cancellation is the
            # expected end of this handler, not an error to log.
            try:
                await writer_task
            except asyncio.CancelledError:
                pass

    async def _write_frames(self, conn: _Conn) -> None:
        try:
            while True:
                frame = await conn.outbox.get()
                if frame is None:
                    break
                conn.writer.write(encode_frame(frame))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                conn.writer.close()
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _send(self, conn: _Conn, frame: dict) -> None:
        """Queue a frame for a connection, from the driver thread."""
        if conn.closed or self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(conn.outbox.put_nowait, frame)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _close_outbox(self, conn: _Conn) -> None:
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(conn.outbox.put_nowait, None)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _signal_loop_stop(self) -> None:
        if self._loop is None or self._stopped is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stopped.set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    # -- the driver thread ---------------------------------------------------

    def _drive(self) -> None:
        """The engine's single caller: commands in, frames out.

        Alternates between draining the command queue (submits,
        cancels, disconnects from the event loop) and pumping the
        engine with a small timeout so completions stream out while
        new commands still land within tens of milliseconds — the
        latency floor interactive admission rides on.
        """
        try:
            while True:
                active = any(
                    conn.requests for conn in self._conns.values()
                )
                try:
                    command = self._commands.get(
                        timeout=0.02 if active else 0.2
                    )
                except queue.Empty:
                    command = None
                while command is not None:
                    if command[0] == "stop":
                        return
                    self._handle_command(command)
                    try:
                        command = self._commands.get_nowait()
                    except queue.Empty:
                        command = None
                if any(conn.requests for conn in self._conns.values()):
                    self.engine.pump(timeout=0.02)
                    self._advance()
        finally:
            try:
                self.engine.shutdown()
            finally:
                self._signal_loop_stop()

    def _handle_command(self, command: tuple) -> None:
        kind = command[0]
        if kind == "connect":
            conn = command[1]
            self._conns[conn.id] = conn
            self._stats["connections"] += 1
        elif kind == "frame":
            _, conn, payload = command
            if conn.id in self._conns:
                self._handle_frame(conn, payload)
        elif kind == "disconnect":
            conn = command[1]
            if conn.id in self._conns:
                self._handle_disconnect(conn)

    def _handle_frame(self, conn: _Conn, payload: dict) -> None:
        op = payload.get("op")
        if op == "submit":
            self._handle_submit(conn, payload)
        elif op == "cancel":
            self._handle_cancel(conn, payload)
        elif op == "ping":
            self._send(conn, {"type": "pong"})
        elif op == "keys":
            self._send(conn, {
                "type": "keys",
                "keys": [list(key) for key in self.engine.keys()],
            })
        else:
            self._send(conn, {
                "type": "error",
                "id": payload.get("id"),
                "error": f"unknown op {op!r}",
            })

    def _fail_request(self, conn: _Conn, client_id, message: str) -> None:
        self._stats["failed"] += 1
        self._send(conn, {
            "type": "failed", "id": client_id, "error": message,
        })

    def _handle_submit(self, conn: _Conn, payload: dict) -> None:
        client_id = payload.get("id")
        if not isinstance(client_id, int):
            self._send(conn, {
                "type": "error", "id": client_id,
                "error": "submit requires an integer id",
            })
            return
        if client_id in conn.requests:
            self._fail_request(
                conn, client_id,
                f"request id {client_id} is already in flight",
            )
            return
        try:
            priority = JobClass(payload.get("priority", "batch"))
        except ValueError:
            self._fail_request(
                conn, client_id,
                f"unknown priority {payload.get('priority')!r}",
            )
            return
        corpus = self.engine.keys()
        raw = payload.get("keys")
        if raw is None:
            keys = list(corpus)
        else:
            try:
                keys = [(str(name), str(suite)) for name, suite in raw]
            except (TypeError, ValueError):
                self._fail_request(
                    conn, client_id,
                    "keys must be [name, suite] pairs or null",
                )
                return
            known = set(corpus)
            unknown = [key for key in keys if key not in known]
            if unknown:
                self._fail_request(
                    conn, client_id,
                    f"unknown program(s): {sorted(set(unknown))}",
                )
                return
        keys = list(dict.fromkeys(keys))
        units = len(plan_units(keys, self.options.granularity,
                               self.options.split_threshold))
        pending = self._conn_pending(conn)
        # An idle connection is always admitted, even past the budget
        # — otherwise a request bigger than the whole budget could
        # never run at all.  The budget bounds *accumulation*: any
        # further submit past it is rejected until the backlog drains.
        if pending > 0 and pending + units > self.budget:
            self._stats["rejections"] += 1
            self._send(conn, {
                "type": "rejected",
                "id": client_id,
                "reason": "admission budget exhausted",
                "retry_after": self._retry_after(pending),
                "pending_units": pending,
                "requested_units": units,
                "budget": self.budget,
            })
            return
        try:
            job = self.engine.submit(keys, priority=priority)
        except Exception as exc:
            self._fail_request(
                conn, client_id, f"{type(exc).__name__}: {exc}"
            )
            return
        conn.requests[client_id] = _ServerRequest(client_id, job, units)
        self._stats["submits"] += 1
        self._send(conn, {
            "type": "accepted",
            "id": client_id,
            "units": units,
            "job": job.job_id,
        })

    def _handle_cancel(self, conn: _Conn, payload: dict) -> None:
        client_id = payload.get("id")
        request = conn.requests.pop(client_id, None)
        if request is None:
            # Unknown or already terminal: cancellation is idempotent,
            # exactly like ServingJob.cancel().
            self._send(conn, {
                "type": "cancelled", "id": client_id, "drained": 0,
            })
            return
        drained = request.job.cancel()
        self._stats["cancelled"] += 1
        self._send(conn, {
            "type": "cancelled", "id": client_id, "drained": drained,
        })

    def _handle_disconnect(self, conn: _Conn) -> None:
        conn.closed = True
        self._stats["disconnects"] += 1
        for request in conn.requests.values():
            # The consumer is gone: cancel engine-side so queued units
            # leave the scheduler and in-flight results are dropped —
            # no orphaned work, no leaked units.
            request.job.cancel()
            self._stats["disconnect_cancelled"] += 1
        conn.requests.clear()
        self._conns.pop(conn.id, None)
        self._close_outbox(conn)

    def _conn_pending(self, conn: _Conn) -> int:
        return sum(
            request.job.pending_units
            for request in conn.requests.values()
        )

    def _retry_after(self, pending_units: int) -> float:
        """Seconds until the connection's backlog plausibly drained.

        The measured per-unit EWMA times the connection's pending
        units, clamped to a sane band — an honest hint, not a
        guarantee; clients treat it as a backoff floor.
        """
        return round(
            min(10.0, max(0.05, pending_units * self._unit_seconds)), 3
        )

    def _advance(self) -> None:
        """Stream fresh completions and close finished requests."""
        for conn in list(self._conns.values()):
            for client_id, request in list(conn.requests.items()):
                job = request.job
                try:
                    fresh = job.take_completed()
                except JobCancelled:
                    conn.requests.pop(client_id, None)
                    self._stats["cancelled"] += 1
                    self._send(conn, {
                        "type": "cancelled", "id": client_id,
                        "drained": 0,
                    })
                    continue
                except RuntimeError as exc:
                    conn.requests.pop(client_id, None)
                    self._fail_request(conn, client_id, str(exc))
                    continue
                for digest in fresh:
                    self._stats["digests"] += 1
                    self._send(conn, {
                        "type": "digest",
                        "id": client_id,
                        "program": program_to_json(digest),
                    })
                if not job.done:
                    continue
                try:
                    report = job.result()
                except (RuntimeError, ValueError) as exc:
                    conn.requests.pop(client_id, None)
                    self._fail_request(conn, client_id, str(exc))
                    continue
                elapsed = time.monotonic() - request.started
                per_unit = elapsed / max(1, request.units)
                self._unit_seconds = (
                    0.7 * self._unit_seconds + 0.3 * per_unit
                )
                conn.requests.pop(client_id, None)
                self._stats["completed"] += 1
                self._send(conn, {
                    "type": "result",
                    "id": client_id,
                    "report": report_to_json(report),
                })


class GatewayRequest:
    """Client-side view of one submitted request."""

    def __init__(self, request_id: int, keys, priority: str):
        self.id = request_id
        self.keys = keys
        self.priority = priority
        #: Planned unit count, from the ``accepted`` frame.
        self.units: int | None = None
        self.digests: list[ProgramDigest] = []
        self._cursor = 0
        self._admission: dict | None = None
        self._outcome: dict | None = None

    @property
    def done(self) -> bool:
        return self._outcome is not None


class GatewayClient:
    """Blocking client for one gateway connection (stdlib sockets).

    One connection multiplexes many requests: :meth:`submit` returns a
    :class:`GatewayRequest` immediately after admission, and any
    number may be in flight; frames are routed to their request by id
    as they arrive.  Not thread-safe — one client per thread, which is
    also one *budget* per thread (admission is per connection).

    ``connect_retries`` makes construction poll for a server that is
    still binding — the CI/docs pattern of starting
    ``python -m repro gateway`` in the background and connecting from
    a second process.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 120.0, connect_retries: int = 0,
                 retry_delay: float = 0.25):
        last: Exception | None = None
        self._sock = None
        for _ in range(max(1, connect_retries + 1)):
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError as exc:
                last = exc
                time.sleep(retry_delay)
        if self._sock is None:
            raise GatewayError(
                f"cannot connect to {host}:{port}: {last}"
            )
        self._sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )
        self._sock.settimeout(timeout)
        self._ids = itertools.count()
        self._requests: dict[int, GatewayRequest] = {}
        self._replies: list[dict] = []

    # -- plumbing ------------------------------------------------------------

    def _post(self, payload: dict) -> None:
        self._sock.sendall(encode_frame(payload))

    def _route_one(self) -> None:
        frame = read_frame(self._sock)
        kind = frame.get("type")
        if kind == "error":
            raise GatewayError(frame.get("error", "protocol error"))
        if kind in ("pong", "keys"):
            self._replies.append(frame)
            return
        request = self._requests.get(frame.get("id"))
        if request is None:
            return  # late frame for a discarded request
        if kind == "digest":
            request.digests.append(
                program_from_json(frame["program"])
            )
        elif kind in ("accepted", "rejected"):
            request._admission = frame
        elif kind in ("result", "failed", "cancelled"):
            if request._outcome is None:
                request._outcome = frame
            # else: a trailing cancel acknowledgement after the result
            # landed first — the terminal frame already won.

    def _await_reply(self, kind: str) -> dict:
        while True:
            for index, frame in enumerate(self._replies):
                if frame["type"] == kind:
                    return self._replies.pop(index)
            self._route_one()

    # -- API -----------------------------------------------------------------

    def ping(self) -> None:
        self._post({"op": "ping"})
        self._await_reply("pong")

    def corpus_keys(self) -> list[Key]:
        """The corpus the server plans requests against."""
        self._post({"op": "keys"})
        frame = self._await_reply("keys")
        return [tuple(key) for key in frame["keys"]]

    def submit(self, keys: Sequence[Key] | None = None,
               priority: str = "batch") -> GatewayRequest:
        """Submit programs; returns once admission answered.

        ``keys=None`` submits the server's whole corpus.  Raises
        :class:`GatewayRejected` (with ``retry_after``) when admission
        control refuses the request — nothing was queued; back off and
        retry.
        """
        request = GatewayRequest(next(self._ids), keys, priority)
        self._requests[request.id] = request
        self._post({
            "op": "submit",
            "id": request.id,
            "keys": (
                None if keys is None else [list(key) for key in keys]
            ),
            "priority": priority,
        })
        while request._admission is None and request._outcome is None:
            self._route_one()
        if request._outcome is not None:  # failed before admission
            return request
        admission = request._admission
        if admission["type"] == "rejected":
            del self._requests[request.id]
            raise GatewayRejected(
                retry_after=admission["retry_after"],
                pending_units=admission["pending_units"],
                requested_units=admission["requested_units"],
                budget=admission["budget"],
            )
        request.units = admission["units"]
        return request

    def stream(self, request: GatewayRequest) -> Iterator[ProgramDigest]:
        """Yield the request's digests as frames arrive (completion
        order), ending when its terminal frame lands."""
        while True:
            while request._cursor < len(request.digests):
                digest = request.digests[request._cursor]
                request._cursor += 1
                yield digest
            if request._outcome is not None:
                return
            self._route_one()

    def result(self, request: GatewayRequest) -> CorpusReport:
        """Drain the request and rebuild its canonical report.

        The rebuild runs through
        :func:`~repro.pipeline.digest.report_from_json`, which
        verifies the embedded fingerprint — a report that survived the
        wire is bit-trustworthy.  Raises
        :class:`~repro.pipeline.serving.JobCancelled` for a cancelled
        request and :class:`GatewayRequestFailed` for a failed one.
        """
        for _ in self.stream(request):
            pass
        outcome = request._outcome
        self._requests.pop(request.id, None)
        if outcome["type"] == "result":
            return report_from_json(outcome["report"])
        if outcome["type"] == "cancelled":
            raise JobCancelled(
                f"gateway request {request.id} was cancelled"
            )
        raise GatewayRequestFailed(outcome.get("error", "request failed"))

    def cancel(self, request: GatewayRequest) -> int:
        """Cancel a request; returns the queued units drained.

        Idempotent, and a request that completed before the cancel
        landed stays completed (0 is returned).
        """
        if request._outcome is not None:
            return 0  # already terminal: nothing left to drain
        self._post({"op": "cancel", "id": request.id})
        while request._outcome is None:
            self._route_one()
        if request._outcome["type"] == "cancelled":
            return request._outcome.get("drained", 0)
        return 0

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._sock = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
