"""The batch pipeline driver: plan units → shard → map → merge.

:func:`detect_corpus` is the batch entry point the evaluation drivers,
the CLI (``python -m repro corpus --jobs N``) and the benchmarks use.
``jobs=1`` runs the worker in-process; ``jobs>1`` spreads shards over a
``multiprocessing`` pool.  Work is planned as
:class:`~repro.pipeline.shard.WorkUnit`\\ s — whole programs by
default, ``(program, function)`` pairs at function granularity — and
every path executes the *same* worker code on the *same* deterministic
shards before :func:`merge_unit_digests` reassembles canonical corpus
order, so a parallel (or function-sharded) run's
:class:`~repro.pipeline.digest.CorpusReport` is identical (same
fingerprint) to the serial program-granularity one, only faster.

For serving-style traffic — long-lived workers, async submission,
streaming digests — see :mod:`repro.pipeline.serving`, which reuses
the planning, worker and merge layers of this module.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Sequence

from .digest import (
    CorpusReport,
    ProgramDigest,
    UnitDigest,
    assemble_program,
    load_report,
)
from .options import PipelineOptions
from .shard import make_shards, measured_weights, plan_units
from .worker import run_unit_shard

Key = tuple[str, str]


def merge_digests(
    shard_results: Sequence[Sequence[ProgramDigest]],
    keys: Sequence[Key],
) -> tuple[ProgramDigest, ...]:
    """Reduce per-shard program digests back into canonical order.

    The merge is *checked*: every requested key must arrive exactly
    once, so a lost or duplicated shard fails loudly instead of
    producing a silently-different report.
    """
    by_key: dict[Key, ProgramDigest] = {}
    for digests in shard_results:
        for digest in digests:
            if digest.key in by_key:
                raise ValueError(
                    f"program {digest.key} produced by two shards"
                )
            by_key[digest.key] = digest
    missing = [key for key in keys if key not in by_key]
    if missing:
        raise ValueError(f"shards returned no result for {missing}")
    unexpected = set(by_key) - set(keys)
    if unexpected:
        raise ValueError(f"shards returned unrequested {sorted(unexpected)}")
    return tuple(by_key[key] for key in keys)


def merge_unit_digests(
    shard_results: Sequence[Sequence[UnitDigest]],
    keys: Sequence[Key],
) -> tuple[ProgramDigest, ...]:
    """Reassemble unit digests into canonical-order program digests.

    Checked like :func:`merge_digests`, one level deeper: no unit may
    arrive twice, every requested program must arrive, and each
    program's units must cover its functions exactly
    (:func:`~repro.pipeline.digest.assemble_program` verifies the
    index range) — a shard lost mid-program fails loudly.
    """
    by_key: dict[Key, list[UnitDigest]] = {}
    seen: set[tuple[Key, str | None]] = set()
    for digests in shard_results:
        for digest in digests:
            marker = (digest.key, digest.function)
            if marker in seen:
                raise ValueError(f"unit {marker} produced by two shards")
            seen.add(marker)
            by_key.setdefault(digest.key, []).append(digest)
    missing = [key for key in keys if key not in by_key]
    if missing:
        raise ValueError(f"shards returned no result for {missing}")
    unexpected = set(by_key) - set(keys)
    if unexpected:
        raise ValueError(f"shards returned unrequested {sorted(unexpected)}")
    return tuple(assemble_program(by_key[key]) for key in keys)


def planned_keys(options: PipelineOptions) -> list[Key]:
    """The corpus keys a run with ``options`` covers, canonical order.

    Shared by the batch pipeline and the serving engine so the two can
    never disagree on the key set (the fingerprint-identity contract).
    """
    from ..workloads import corpus_keys

    keys = corpus_keys()
    if options.suites is not None:
        keys = [key for key in keys if key[1] in options.suites]
    return keys


def resolve_feedback_with_store(
    options: PipelineOptions, registry=None
) -> tuple:
    """``(resolved options, loaded FeedbackStore | None)``.

    The single implementation of the feedback-resolution invariant:
    the artifact is read (and fingerprint-verified) **once, in the
    parent** — a bad artifact fails before any worker is spawned, and
    what ships to workers is the derived plain-data order mapping,
    never a path every process would re-read.  Options with explicit
    ``spec_orders`` — or no feedback at all — pass through unchanged
    with no store.  ``registry`` supplies the pristine registry orders
    are derived against (built from the options when omitted); the
    serving engine passes its own so it can keep the loaded store as
    the seed of its live, self-tuning feedback.
    """
    if not options.feedback_from or options.spec_orders is not None:
        return options, None
    import dataclasses

    from .feedback import canonical_orders, load_feedback
    from .worker import _build_registry

    store = load_feedback(options.feedback_from)
    if registry is None:
        registry = _build_registry(
            dataclasses.replace(options, feedback_from=None)
        )
    orders = canonical_orders(store.spec_orders(registry))
    if orders is None:
        # The store suggests no change (it usually reproduces the
        # recorded orders exactly); drop the path so workers skip the
        # standalone-fallback reload too.
        return dataclasses.replace(options, feedback_from=None), store
    return dataclasses.replace(options, spec_orders=orders), store


def resolve_feedback_options(options: PipelineOptions) -> PipelineOptions:
    """Options with ``feedback_from`` resolved into ``spec_orders``
    (see :func:`resolve_feedback_with_store`)."""
    return resolve_feedback_with_store(options)[0]


def resolve_weight_source(
    options: PipelineOptions,
    weights: "CorpusReport | Callable | None" = None,
) -> Callable | None:
    """The shard-weight callable for a run, or None for the static proxy.

    ``weights`` may be a previous run's :class:`CorpusReport` (its
    measured costs are used directly) or an arbitrary callable;
    otherwise ``options.weights_from`` names a report JSON on disk.
    """
    if weights is not None:
        if isinstance(weights, CorpusReport):
            return measured_weights(weights)
        return weights
    if options.weights_from:
        return measured_weights(load_report(options.weights_from))
    return None


class DetectionPipeline:
    """A configured corpus-detection run."""

    def __init__(self, options: PipelineOptions | None = None, **kwargs):
        self.options = (
            options if options is not None else PipelineOptions(**kwargs)
        )

    def keys(self) -> list[Key]:
        """The corpus keys this run covers, in canonical order."""
        return planned_keys(self.options)

    def run(
        self,
        keys: Sequence[Key] | None = None,
        weights: "CorpusReport | Callable | None" = None,
    ) -> CorpusReport:
        """Execute the pipeline; ``keys`` restricts the program set.

        ``weights`` overrides the shard-cost source (see
        :func:`resolve_weight_source`); sharding happens in the parent
        process, so the source never crosses a process boundary.
        """
        options = resolve_feedback_options(self.options)
        keys = list(keys) if keys is not None else self.keys()
        started = time.perf_counter()
        units = plan_units(keys, options.granularity,
                           options.split_threshold)
        weight = resolve_weight_source(options, weights)
        shards = make_shards(units, options.jobs, weight=weight)
        if len(shards) <= 1 or options.jobs == 1:
            shard_results = [
                run_unit_shard(shard, options) for shard in shards
            ]
        else:
            shard_results = self._run_pool(shards, options)
        programs = merge_unit_digests(shard_results, keys)
        return CorpusReport(
            programs=programs,
            jobs=options.jobs,
            wall_seconds=time.perf_counter() - started,
        )

    def _run_pool(self, shards, options: PipelineOptions | None = None):
        options = options if options is not None else self.options
        method = options.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        mp = multiprocessing.get_context(method)
        with mp.Pool(processes=len(shards)) as pool:
            return pool.starmap(
                run_unit_shard, [(shard, options) for shard in shards]
            )


def detect_corpus(
    jobs: int = 1,
    extended: bool = False,
    baselines: bool = False,
    suites: Sequence[str] | None = None,
    spec_files: Sequence[str] = (),
    shared_cache: bool = True,
    engine: str | None = None,
    start_method: str | None = None,
    keys: Sequence[Key] | None = None,
    granularity: str = "program",
    split_threshold: int = 1,
    weights_from: str | None = None,
    weights: "CorpusReport | Callable | None" = None,
    feedback_from: str | None = None,
    spec_orders=None,
    explore: float = 0.0,
    explore_seed: int = 0,
) -> CorpusReport:
    """Detect reductions across the corpus, optionally in parallel.

    ``feedback_from`` re-orders every measured idiom spec from a
    recorded solver feedback artifact
    (:func:`~repro.pipeline.feedback.save_feedback`); ``spec_orders``
    pins explicit label orders instead (idiom name → label tuple) and
    **takes precedence** — when both are given the artifact is
    ignored, since explicit orders are exactly the resolved form a
    feedback artifact produces.  Either way the detections are
    unchanged — only the search order, and therefore the
    constraint-eval cost, moves.

    ``explore`` turns on deterministic order exploration (see
    :class:`~repro.pipeline.feedback.ExplorationPolicy`): that
    fraction of functions runs under a one-transposition perturbed
    order, and the report's digests carry per-order observations the
    feedback store uses to adopt strictly-better measured orders.
    """
    options = PipelineOptions(
        jobs=jobs,
        extended=extended,
        baselines=baselines,
        suites=tuple(suites) if suites is not None else None,
        spec_files=tuple(spec_files),
        shared_cache=shared_cache,
        engine=engine,
        start_method=start_method,
        granularity=granularity,
        split_threshold=split_threshold,
        weights_from=weights_from,
        feedback_from=feedback_from,
        spec_orders=spec_orders,
        explore=explore,
        explore_seed=explore_seed,
    )
    return DetectionPipeline(options).run(keys=keys, weights=weights)
