"""The pipeline driver: shard → map → deterministic merge.

:func:`detect_corpus` is the batch entry point the evaluation drivers,
the CLI (``python -m repro corpus --jobs N``) and the benchmarks use.
``jobs=1`` runs the worker in-process; ``jobs>1`` spreads shards over a
``multiprocessing`` pool.  Both paths execute the *same* worker code on
the *same* deterministic shards and feed :func:`merge_digests`, which
reassembles results in canonical corpus order — so a parallel run's
:class:`~repro.pipeline.digest.CorpusReport` is identical (same
fingerprint) to the serial one, only faster.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Sequence

from .digest import CorpusReport, ProgramDigest
from .options import PipelineOptions
from .shard import make_shards
from .worker import run_shard

Key = tuple[str, str]


def merge_digests(
    shard_results: Sequence[Sequence[ProgramDigest]],
    keys: Sequence[Key],
) -> tuple[ProgramDigest, ...]:
    """Reduce per-shard digests back into canonical corpus order.

    The merge is *checked*: every requested key must arrive exactly
    once, so a lost or duplicated shard fails loudly instead of
    producing a silently-different report.
    """
    by_key: dict[Key, ProgramDigest] = {}
    for digests in shard_results:
        for digest in digests:
            if digest.key in by_key:
                raise ValueError(
                    f"program {digest.key} produced by two shards"
                )
            by_key[digest.key] = digest
    missing = [key for key in keys if key not in by_key]
    if missing:
        raise ValueError(f"shards returned no result for {missing}")
    unexpected = set(by_key) - set(keys)
    if unexpected:
        raise ValueError(f"shards returned unrequested {sorted(unexpected)}")
    return tuple(by_key[key] for key in keys)


class DetectionPipeline:
    """A configured corpus-detection run."""

    def __init__(self, options: PipelineOptions | None = None, **kwargs):
        self.options = (
            options if options is not None else PipelineOptions(**kwargs)
        )

    def keys(self) -> list[Key]:
        """The corpus keys this run covers, in canonical order."""
        from ..workloads import corpus_keys

        keys = corpus_keys()
        suites = self.options.suites
        if suites is not None:
            keys = [key for key in keys if key[1] in suites]
        return keys

    def run(self, keys: Sequence[Key] | None = None) -> CorpusReport:
        """Execute the pipeline; ``keys`` restricts the program set."""
        options = self.options
        keys = list(keys) if keys is not None else self.keys()
        started = time.perf_counter()
        shards = make_shards(keys, options.jobs)
        if len(shards) <= 1 or options.jobs == 1:
            shard_results = [run_shard(shard, options) for shard in shards]
        else:
            shard_results = self._run_pool(shards)
        programs = merge_digests(shard_results, keys)
        return CorpusReport(
            programs=programs,
            jobs=options.jobs,
            wall_seconds=time.perf_counter() - started,
        )

    def _run_pool(self, shards: list[list[Key]]):
        options = self.options
        method = options.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        mp = multiprocessing.get_context(method)
        with mp.Pool(processes=len(shards)) as pool:
            return pool.starmap(
                run_shard, [(shard, options) for shard in shards]
            )


def detect_corpus(
    jobs: int = 1,
    extended: bool = False,
    baselines: bool = False,
    suites: Sequence[str] | None = None,
    spec_files: Sequence[str] = (),
    shared_cache: bool = True,
    start_method: str | None = None,
    keys: Sequence[Key] | None = None,
) -> CorpusReport:
    """Detect reductions across the corpus, optionally in parallel."""
    options = PipelineOptions(
        jobs=jobs,
        extended=extended,
        baselines=baselines,
        suites=tuple(suites) if suites is not None else None,
        spec_files=tuple(spec_files),
        shared_cache=shared_cache,
        start_method=start_method,
    )
    return DetectionPipeline(options).run(keys=keys)
