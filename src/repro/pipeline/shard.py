"""Deterministic corpus sharding, at program or function granularity.

Work is split into :class:`WorkUnit`\\ s — a whole program, or one
``(program, function)`` pair for function-granularity runs where a
single giant program must not serialize the whole run — balanced by a
cost weight and assigned with longest-processing-time-first.  The
result is a pure function of ``(items, jobs, weights)``, so every run
with the same inputs produces the same shards regardless of
scheduling.

Weights come from one of two sources:

* the **static proxy** — source length for a program, instruction
  count for a function: cheap, available cold, correlates with
  detection effort well enough to balance a first run;
* **measured costs** (:func:`measured_weights`) — the recorded
  ``stage_seconds`` / ``constraint_evals`` of a previous run's digests,
  mirroring the cost-aware ``suggest_order``: feed observed effort
  back in and the shards balance on what detection actually cost, with
  the static proxy as the cold-start fallback for unseen work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .digest import CorpusReport

Key = tuple[str, str]

#: Default granularity threshold: programs with at least this many
#: defined functions are split into per-function units.  1 splits
#: everything, which maximizes schedulability; the engine exposes it so
#: callers can keep small programs whole.
SPLIT_THRESHOLD = 1


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of corpus work.

    ``function=None`` is a whole program.  Otherwise the unit is one
    defined function of the program; ``lead`` marks exactly one unit
    per program as the carrier of the program-level stages (the
    baseline models run once per program, not once per function).
    """

    name: str
    suite: str
    function: str | None = None
    lead: bool = True

    @property
    def key(self) -> Key:
        return (self.name, self.suite)


def default_weight(key: Key) -> int:
    """Static cost proxy: the program's source length.

    Detection effort grows with function count and size; source length
    tracks both well enough to balance shards without running anything.
    """
    from ..workloads import program

    return len(program(key[0], key[1]).source)


def unit_weight(unit: WorkUnit) -> float:
    """Static cost proxy for one work unit.

    Whole programs weigh their source length; function units weigh the
    function's instruction count (from the cached compile — the unit
    planner already compiled the program to enumerate its functions).
    """
    if unit.function is None:
        return float(default_weight(unit.key))
    from ..workloads import program

    module = program(unit.name, unit.suite).compile()
    function = module.get_function(unit.function)
    return float(1 + sum(1 for _ in function.instructions()))


def plan_units(
    keys: Sequence[Key],
    granularity: str = "program",
    split_threshold: int = SPLIT_THRESHOLD,
) -> list[WorkUnit]:
    """Expand corpus keys into schedulable work units.

    ``granularity="program"`` maps each key to one whole-program unit.
    ``granularity="function"`` splits every program with at least
    ``split_threshold`` defined functions into per-function units (in
    the module's function order, so merged results are reproducible);
    the first unit of each program is the ``lead`` that also runs the
    program-level stages.  Programs below the threshold (or with no
    defined functions) stay whole.
    """
    if granularity not in ("program", "function"):
        raise ValueError(
            f"granularity must be 'program' or 'function', "
            f"got {granularity!r}"
        )
    if granularity == "program":
        return [WorkUnit(name, suite) for name, suite in keys]
    from ..workloads import program

    units: list[WorkUnit] = []
    for name, suite in keys:
        module = program(name, suite).compile()
        functions = [f.name for f in module.defined_functions()]
        if len(functions) < max(1, split_threshold):
            units.append(WorkUnit(name, suite))
            continue
        for i, function in enumerate(functions):
            units.append(
                WorkUnit(name, suite, function=function, lead=(i == 0))
            )
    return units


def measured_weights(
    report: "CorpusReport",
) -> Callable[[WorkUnit | Key], float]:
    """A weight source backed by a previous run's measured costs.

    Program-level weights prefer the recorded per-stage wall clock
    (``ProgramDigest.stage_seconds``, summed); function-level weights
    are the function's ``constraint_evals`` — the solver effort that
    dominates the detect stage.  Both are expressed on the *seconds*
    scale (eval counts are rescaled by the report-wide seconds/eval
    ratio), so program and function units stay commensurable when a
    ``split_threshold`` mixes the two in one schedule.

    **Cold-start blending**: work absent from the report (new
    programs, renamed functions) is scheduled at its *static proxy
    scaled into the measured distribution* — the proxy (source length
    for a program, instruction count for a function) divided by the
    mean proxy of the report's own entries, times the measured mean.
    Big unseen programs land heavier than small ones, yet stay on the
    measured scale, so one cold key cannot unbalance a warm schedule.
    Two graceful degradations bound the blend: an item whose proxy is
    unavailable (not in the corpus) falls back to the measured mean,
    and a report with *zero* resolvable entries of a kind — pure cold
    start — degrades to weights proportional to the static proxy,
    which shard identically to the proxy itself (LPT is invariant
    under positive scaling).
    """
    program_cost: dict[Key, float] = {}
    function_cost: dict[tuple[Key, str], float] = {}
    # Eval counts (thousands) and stage seconds (~0.01) are not
    # commensurable; everything below is rescaled onto the seconds
    # scale by the report-wide seconds/eval ratio, so untimed programs
    # and function units cannot grab a whole shard for themselves
    # among second-scale peers.
    timed = [
        (sum(d.stage_seconds.values()), 1 + d.constraint_evals)
        for d in report.programs
        if sum(d.stage_seconds.values()) > 0.0
    ]
    timed_seconds = sum(seconds for seconds, _ in timed)
    timed_evals = sum(evals for _, evals in timed)
    seconds_per_eval = (
        timed_seconds / timed_evals if timed_evals and timed_seconds else 1.0
    )
    for digest in report.programs:
        seconds = sum(digest.stage_seconds.values())
        program_cost[digest.key] = (
            seconds
            if seconds > 0.0
            else (1 + digest.constraint_evals) * seconds_per_eval
        )
        for function in digest.functions:
            function_cost[(digest.key, function.function)] = (
                (1 + function.constraint_evals) * seconds_per_eval
            )

    def mean(values) -> float:
        values = list(values)
        return sum(values) / len(values) if values else 1.0

    program_mean = mean(program_cost.values())
    function_mean = mean(function_cost.values())

    # Mean static proxy of the report's own entries, one baseline per
    # unit kind — the denominator that scales an unseen item's proxy
    # into the measured distribution.  Computed lazily (the function
    # baseline compiles the report's programs) and cached; entries the
    # current corpus cannot resolve are skipped, and a baseline with
    # no resolvable entries stays None (→ measured-mean fallback).
    proxy_baseline: dict[str, float | None] = {}

    def _proxy_of(unit: WorkUnit) -> float | None:
        # KeyError is the expected resolution failure — a program not
        # in the current corpus, or a function the program no longer
        # defines (both lookups raise it).  Anything else (a compile
        # crash, a corrupted module) is a genuine bug and must
        # propagate instead of silently degrading to the measured
        # mean.
        try:
            return unit_weight(unit)
        except KeyError:
            return None

    def _baseline(kind: str) -> float | None:
        if kind in proxy_baseline:
            return proxy_baseline[kind]
        if kind == "program":
            proxies = [
                p for p in (
                    _proxy_of(WorkUnit(*key)) for key in program_cost
                ) if p is not None
            ]
        else:
            proxies = [
                p for p in (
                    _proxy_of(WorkUnit(key[0], key[1], function=name))
                    for (key, name) in function_cost
                ) if p is not None
            ]
        proxy_baseline[kind] = (
            sum(proxies) / len(proxies) if proxies else None
        )
        return proxy_baseline[kind]

    def weight(item: WorkUnit | Key) -> float:
        unit = (
            item
            if isinstance(item, WorkUnit)
            else WorkUnit(item[0], item[1])
        )
        if unit.function is not None:
            measured = function_cost.get((unit.key, unit.function))
            measured_mean, kind = function_mean, "function"
        else:
            measured = program_cost.get(unit.key)
            measured_mean, kind = program_mean, "program"
        if measured is not None:
            return measured
        if not report.programs:
            # Empty report: nothing measured at all, so the blend *is*
            # the static proxy (modulo the unresolvable fallback).
            proxy = _proxy_of(unit)
            return proxy if proxy is not None else measured_mean
        # Cold start for unseen work: the static proxy scaled into the
        # measured distribution.  Raw proxies (characters,
        # instructions) are not commensurable with seconds, so the
        # proxy is normalized by the report's own mean proxy and
        # re-expressed at the measured mean — differentiated like the
        # proxy, scaled like the measurements.
        proxy = _proxy_of(unit)
        baseline = _baseline(kind) if proxy is not None else None
        if proxy is None or baseline is None or baseline <= 0.0:
            return measured_mean
        return measured_mean * proxy / baseline

    return weight


def _lpt(
    items: list, weight: Callable | None
) -> tuple[list, dict]:
    """(items heaviest-first, memoized weights) — ties broken by input
    position, the weight source evaluated exactly once per item."""
    if weight is None:
        weight = (
            unit_weight
            if items and isinstance(items[0], WorkUnit)
            else default_weight
        )
    weights = {item: weight(item) for item in items}
    position = {item: i for i, item in enumerate(items)}
    ordered = sorted(items, key=lambda k: (-weights[k], position[k]))
    return ordered, weights


def lpt_order(
    items: Sequence[Hashable], weight: Callable | None = None
) -> list:
    """``items`` heaviest-first, ties broken by input position.

    The longest-processing-time service order shared by
    :func:`make_shards` (which deals the result onto shards) and the
    serving engine (whose workers pull from one queue in this order).
    The weight source is evaluated exactly once per item.
    """
    ordered, _ = _lpt(list(items), weight)
    return ordered


def make_shards(
    items: Sequence[Hashable],
    jobs: int,
    weight: Callable | None = None,
) -> list[list]:
    """Split ``items`` into at most ``jobs`` balanced, deterministic shards.

    ``items`` are corpus keys or :class:`WorkUnit`\\ s (any hashable
    unique items work).  Greedy LPT: heaviest item first, onto the
    lightest shard; ties broken by shard index and by the item's
    position in ``items`` — no dependence on dict/set iteration or
    timing.  Within a shard, items keep their canonical (input) order.

    ``weight`` is evaluated **once per item** per invocation — cost
    sources may load programs or walk digests, so the memo matters.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    items = list(items)
    if not items:
        return []
    jobs = min(jobs, len(items))
    if jobs == 1:
        return [items]
    ordered, weights = _lpt(items, weight)
    position = {item: i for i, item in enumerate(items)}
    loads = [0.0] * jobs
    assigned: list[list] = [[] for _ in range(jobs)]
    for item in ordered:
        target = min(range(jobs), key=lambda i: (loads[i], i))
        loads[target] += weights[item]
        assigned[target].append(item)
    for shard in assigned:
        shard.sort(key=lambda k: position[k])
    return [shard for shard in assigned if shard]
