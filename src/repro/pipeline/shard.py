"""Deterministic corpus sharding.

Work is split *by program* (a program's functions share compiled IR
and solver caches, so a program is the natural unit), balanced by a
static cost proxy, and assigned with longest-processing-time-first —
a pure function of ``(keys, jobs, weights)``, so every run with the
same inputs produces the same shards regardless of scheduling.
"""

from __future__ import annotations

from typing import Callable, Sequence

Key = tuple[str, str]


def default_weight(key: Key) -> int:
    """Static cost proxy: the program's source length.

    Detection effort grows with function count and size; source length
    tracks both well enough to balance shards without running anything.
    """
    from ..workloads import program

    return len(program(key[0], key[1]).source)


def make_shards(
    keys: Sequence[Key],
    jobs: int,
    weight: Callable[[Key], int] | None = None,
) -> list[list[Key]]:
    """Split ``keys`` into at most ``jobs`` balanced, deterministic shards.

    Greedy LPT: heaviest program first, onto the lightest shard; ties
    broken by shard index and by the key's position in ``keys`` — no
    dependence on dict/set iteration or timing.  Within a shard, keys
    keep their canonical (corpus) order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    keys = list(keys)
    if not keys:
        return []
    jobs = min(jobs, len(keys))
    if jobs == 1:
        return [keys]
    weight = weight if weight is not None else default_weight
    position = {key: i for i, key in enumerate(keys)}
    loads = [0] * jobs
    assigned: list[list[Key]] = [[] for _ in range(jobs)]
    for key in sorted(keys, key=lambda k: (-weight(k), position[k])):
        target = min(range(jobs), key=lambda i: (loads[i], i))
        loads[target] += weight(key)
        assigned[target].append(key)
    for shard in assigned:
        shard.sort(key=lambda k: position[k])
    return [shard for shard in assigned if shard]
