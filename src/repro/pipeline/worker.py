"""The per-shard detection worker — the pipeline's map stage.

Each worker processes its shard of corpus programs through the staged
engine:

1. **compile** — mini-C source to canonical SSA (fresh per worker;
   nothing is inherited from the parent, so spawn and fork agree);
2. **detect**  — the core scalar/histogram idioms via
   :func:`~repro.idioms.detect.find_reductions_in_function`, all specs
   of one function sharing that function's
   :class:`~repro.constraints.SharedSolverCache` (one solved for-loop
   prefix instead of one per spec);
3. **extend**  — optionally the §8 extension idioms, *reusing the
   stage-2 solver contexts* so they also replay the solved prefix;
4. **baselines** — optionally the icc and Polly models;
5. **digest** — reduce everything to process-portable digests.

``run_shard`` is a module-level function so ``multiprocessing`` can
pickle it under any start method.
"""

from __future__ import annotations

import time
from typing import Sequence

from .digest import ProgramDigest, digest_extensions, digest_report
from .options import PipelineOptions


def _build_registry(options: PipelineOptions):
    from ..idioms.registry import IdiomRegistry

    registry = IdiomRegistry()
    for path in options.spec_files:
        registry.load_file(path)
    return registry


def detect_program(
    key: tuple[str, str],
    options: PipelineOptions,
    registry=None,
) -> ProgramDigest:
    """Run one corpus program through every pipeline stage."""
    from ..idioms.detect import find_reductions_in_function
    from ..idioms.extensions import ExtendedReport, find_extended_in_function
    from ..idioms.reports import DetectionReport
    from ..workloads import program

    registry = registry if registry is not None else _build_registry(options)
    name, suite_name = key
    bench = program(name, suite_name)
    stage_seconds: dict[str, float] = {}

    started = time.perf_counter()
    module = bench.fresh_module()
    stage_seconds["compile"] = time.perf_counter() - started

    started = time.perf_counter()
    report = DetectionReport(module.name)
    for function in module.defined_functions():
        report.functions.append(
            find_reductions_in_function(
                function, module, registry=registry,
                shared_cache=options.shared_cache,
            )
        )
    stage_seconds["detect"] = time.perf_counter() - started

    extended = ()
    if options.extended:
        started = time.perf_counter()
        matches = ExtendedReport(module.name)
        for fr in report.functions:
            # Reuse the detect stage's context (analyses + solver
            # cache + solved for-loop prefix) and charge the search to
            # the same per-function stats.
            matches.extend(
                find_extended_in_function(
                    fr.function, module, registry=registry,
                    ctx=fr.solver_context if options.shared_cache else None,
                    stats=fr.stats,
                    shared_cache=options.shared_cache,
                )
            )
        extended = digest_extensions(matches)
        stage_seconds["extend"] = time.perf_counter() - started

    icc_count = polly_scops = polly_reductions = None
    if options.baselines:
        from ..baselines import icc, polly

        started = time.perf_counter()
        icc_count = icc.detected_reduction_count(module)
        polly_report = polly.analyze_module(module)
        polly_scops, _ = polly_report.counts()
        polly_reductions = len(polly_report.reductions)
        stage_seconds["baselines"] = time.perf_counter() - started

    return ProgramDigest(
        name=name,
        suite=suite_name,
        functions=digest_report(report),
        extended=extended,
        icc=icc_count,
        polly_scops=polly_scops,
        polly_reductions=polly_reductions,
        stage_seconds=stage_seconds,
    )


def run_shard(
    shard: Sequence[tuple[str, str]], options: PipelineOptions
) -> list[ProgramDigest]:
    """Process one shard of corpus keys; the registry is built once."""
    registry = _build_registry(options)
    return [detect_program(key, options, registry) for key in shard]
