"""The per-unit detection worker — the pipeline's map stage.

Work arrives as :class:`~repro.pipeline.shard.WorkUnit`\\ s — a whole
program, or one ``(program, function)`` pair when a large module is
sharded at function granularity.  Each unit runs through the staged
engine:

1. **compile** — mini-C source to canonical SSA.  Compiled modules are
   cached *per worker* (a program split into function units compiles
   once per worker that touches it, not once per function); nothing is
   inherited from the parent, so spawn and fork agree;
2. **detect**  — the core scalar/histogram idioms via
   :func:`~repro.idioms.detect.find_reductions_in_function`, all specs
   of one function sharing that function's
   :class:`~repro.constraints.SharedSolverCache` (one solved for-loop
   prefix instead of one per spec);
3. **extend**  — optionally the §8 extension idioms, *reusing the
   stage-2 solver contexts* so they also replay the solved prefix;
4. **baselines** — optionally the icc and Polly models, on the one
   ``lead`` unit of each program (they analyse whole modules);
5. **digest** — reduce everything to process-portable
   :class:`~repro.pipeline.digest.UnitDigest`\\ s.

Solver state is per-function (each function gets a fresh
:class:`~repro.constraints.SolverContext`), so a function's digest —
search-effort counters included — is identical whether its program ran
whole in one worker or split across ten.

``run_shard`` / ``run_unit_shard`` are module-level functions so
``multiprocessing`` can pickle them under any start method.
"""

from __future__ import annotations

import threading
import time
from typing import Sequence

from .digest import (
    ProgramDigest,
    UnitDigest,
    assemble_program,
    digest_extensions,
    digest_function,
)
from .options import PipelineOptions
from .shard import WorkUnit


def _build_registry(options: PipelineOptions, orders=None):
    """One worker's idiom registry, feedback orders applied.

    ``orders`` overrides the options-level spec orders (the serving
    engine ships refreshed orders per task); otherwise
    ``options.spec_orders`` applies — and, for standalone
    :func:`detect_unit` callers whose options were never resolved by a
    pipeline driver, ``options.feedback_from`` is loaded here as the
    fallback.
    """
    from ..idioms.registry import IdiomRegistry

    registry = IdiomRegistry()
    for path in options.spec_files:
        registry.load_file(path)
    if orders is None:
        orders = options.spec_orders
        if orders is None and options.feedback_from:
            from .feedback import load_feedback

            orders = load_feedback(options.feedback_from).spec_orders(
                registry
            )
    if orders:
        registry.apply_orders(dict(orders))
    return registry


#: Worker-local cache of perturbed-order registries, keyed by spec
#: files and the canonical orders mapping.  Exploration re-draws the
#: same (spec, position) transpositions across many functions, and a
#: fresh registry pays plan re-compilation for every spec — caching
#: turns that into a one-time cost per distinct perturbation.  Pure
#: cache: a registry is a deterministic function of its key, so reuse
#: can never change a digest.
_EXPLORE_REGISTRY_CACHE: dict = {}
_EXPLORE_REGISTRY_CACHE_LIMIT = 64


def _perturbed_registry(options: PipelineOptions, orders: dict):
    """The (cached) registry for one explored function's orders."""
    from .feedback import canonical_orders

    key = (options.spec_files, canonical_orders(orders))
    cached = _EXPLORE_REGISTRY_CACHE.get(key)
    if cached is None:
        if len(_EXPLORE_REGISTRY_CACHE) >= _EXPLORE_REGISTRY_CACHE_LIMIT:
            _EXPLORE_REGISTRY_CACHE.clear()
        cached = _build_registry(options, orders=orders)
        _EXPLORE_REGISTRY_CACHE[key] = cached
    return cached


class ChannelSender:
    """Thread-safe sender over a worker's private result pipe.

    The worker's main loop and its :class:`Heartbeat` thread share one
    :class:`multiprocessing.connection.Connection`; sends are
    serialized by a lock so the two can never interleave a message.
    Each worker writes only to its *own* pipe — worker death can
    corrupt at most its own channel, never a lock another worker
    needs (the failure mode a shared result queue would have).
    """

    def __init__(self, conn):
        self._conn = conn
        self._lock = threading.Lock()

    def put(self, message) -> None:
        with self._lock:
            self._conn.send(message)


class Heartbeat:
    """Background liveness beacon for a persistent worker process.

    A daemon thread that sends ``("beat", worker_id)`` into ``sink``
    (any object with a ``put`` method — the worker's
    :class:`ChannelSender`) every ``interval`` seconds, independent of
    the worker's main loop.  The beat carries no timestamp: staleness
    is judged entirely from the engine's own clock at receipt, so
    clock skew between processes cannot skew liveness — a worker grinding through one heavy unit
    still proves it is alive, so the engine's liveness detector can
    distinguish *slow* from *dead or hung* without guessing from
    result gaps.
    """

    def __init__(self, worker_id: int, sink, interval: float):
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run,
            args=(worker_id, sink, interval),
            daemon=True,
        )

    def _run(self, worker_id, sink, interval) -> None:
        while not self._stop.wait(interval):
            try:
                sink.put(("beat", worker_id))
            except Exception:
                return  # channel closed: the worker is exiting

    def start(self) -> "Heartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()


class ModuleCache:
    """Per-worker compiled-IR cache, optionally LRU-bounded.

    Function units of one program share the worker-local module (and
    its compile cost); the first use pays, later units of the same
    program are free.  Each worker compiles independently — modules
    hold live IR objects that cannot cross process boundaries.

    ``max_entries`` caps the cache at that many modules, evicting the
    least recently used (None = unbounded, the historical behaviour).
    Long-lived serving/gateway workers see unbounded distinct programs
    over their lifetime; the cap turns the cache from a leak into a
    working set.  Eviction is a pure recompute cost — an evicted
    module is rebuilt from source on the next touch, so digests (and
    fingerprints) never depend on the cap.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        from collections import OrderedDict

        self._max = max_entries
        self._modules: "OrderedDict[tuple[str, str], object]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._modules)

    def keys(self) -> list[tuple[str, str]]:
        """Cached program keys, least recently used first."""
        return list(self._modules)

    def module(self, key: tuple[str, str]) -> tuple[object, float]:
        """(compiled module, seconds this call spent compiling it).

        The seconds are 0.0 on a cache hit — the compile cost is
        charged to the one unit that triggered it.
        """
        from ..workloads import program

        cached = self._modules.get(key)
        if cached is not None:
            self._modules.move_to_end(key)
            return cached, 0.0
        started = time.perf_counter()
        compiled = program(key[0], key[1]).fresh_module()
        seconds = time.perf_counter() - started
        self._modules[key] = compiled
        if self._max is not None:
            while len(self._modules) > self._max:
                self._modules.popitem(last=False)
        return compiled, seconds


def _run_baselines(module):
    from ..baselines import icc, polly

    icc_count = icc.detected_reduction_count(module)
    polly_report = polly.analyze_module(module)
    polly_scops, _ = polly_report.counts()
    return icc_count, polly_scops, len(polly_report.reductions)


def detect_unit(
    unit: WorkUnit,
    options: PipelineOptions,
    registry=None,
    modules: ModuleCache | None = None,
) -> UnitDigest:
    """Run one work unit through every pipeline stage."""
    registry = registry if registry is not None else _build_registry(options)
    modules = modules if modules is not None else ModuleCache()
    stage_seconds: dict[str, float] = {}

    module, compile_seconds = modules.module(unit.key)
    if compile_seconds:
        stage_seconds["compile"] = compile_seconds
    defined = list(module.defined_functions())

    if unit.function is None:
        targets = defined
        index, total = 0, len(defined)
    else:
        names = [f.name for f in defined]
        try:
            index = names.index(unit.function)
        except ValueError:
            raise KeyError(
                f"program {unit.key} has no function {unit.function!r}"
            ) from None
        targets = [defined[index]]
        total = len(defined)

    from ..constraints import SolverStats
    from ..idioms.detect import find_reductions_in_function

    explore_policy = None
    if options.explore:
        from .feedback import ExplorationPolicy, OrderObs, shape_bucket

        explore_policy = ExplorationPolicy(
            epsilon=options.explore, seed=options.explore_seed
        )

    functions = []
    extended: tuple = ()
    spec_stats: dict[str, SolverStats] = {}
    order_obs: dict = {}
    detect_seconds = extend_seconds = explore_seconds = 0.0
    for function in targets:
        started = time.perf_counter()
        fr = find_reductions_in_function(
            function, module, registry=registry,
            shared_cache=options.shared_cache,
            engine=options.engine,
        )
        detect_seconds += time.perf_counter() - started
        if options.extended:
            from ..idioms.extensions import find_extended_in_function

            # Reuse the detect stage's context (analyses + solver
            # cache + solved for-loop prefix) and charge the search to
            # the same per-function stats.
            started = time.perf_counter()
            matches = find_extended_in_function(
                fr.function, module, registry=registry,
                ctx=fr.solver_context if options.shared_cache else None,
                stats=fr.stats,
                shared_cache=options.shared_cache,
                spec_stats=fr.spec_stats,
                engine=options.engine,
            )
            extended = extended + digest_extensions(matches)
            extend_seconds += time.perf_counter() - started
        for name, stats in fr.spec_stats.items():
            spec_stats.setdefault(name, SolverStats()).merge(stats)
        if explore_policy is not None:
            # Exploration decides per *function* (not per unit), so
            # program and function granularity — and any jobs count —
            # sample identically.  Every function's incumbent run is
            # recorded as a self-paired observation; an explored
            # function *additionally* runs under a one-transposition
            # perturbed registry, and the perturbed spec's outcome is
            # recorded paired against the incumbent's cost on this
            # very function.  Digests, detections and the replay
            # supply all come from the incumbent run, so exploration
            # only ever adds observations (and search cost), never
            # changes a report.
            bucket = shape_bucket(function)
            incumbent_orders = registry.current_orders()
            for name, stats in fr.spec_stats.items():
                key = (name, incumbent_orders[name], bucket)
                order_obs.setdefault(key, OrderObs()).merge(
                    OrderObs.from_stats(stats)
                )
            perturbed = explore_policy.perturbed_orders(
                registry, unit.suite, unit.name, function.name
            )
            if perturbed is not None:
                run_registry = _perturbed_registry(options, perturbed)
                started = time.perf_counter()
                cr = find_reductions_in_function(
                    function, module, registry=run_registry,
                    shared_cache=options.shared_cache,
                    engine=options.engine,
                )
                if options.extended:
                    find_extended_in_function(
                        cr.function, module, registry=run_registry,
                        ctx=(cr.solver_context
                             if options.shared_cache else None),
                        stats=cr.stats,
                        shared_cache=options.shared_cache,
                        spec_stats=cr.spec_stats,
                        engine=options.engine,
                    )
                explore_seconds += time.perf_counter() - started
                for name, stats in cr.spec_stats.items():
                    candidate = perturbed[name]
                    if candidate == incumbent_orders[name]:
                        continue  # only the transposed spec is a candidate
                    key = (name, candidate, bucket)
                    order_obs.setdefault(key, OrderObs()).merge(
                        OrderObs.from_stats(
                            stats,
                            baseline=fr.spec_stats.get(name, SolverStats()),
                        )
                    )
        functions.append(digest_function(fr))
    stage_seconds["detect"] = detect_seconds
    if options.extended:
        stage_seconds["extend"] = extend_seconds
    if explore_seconds:
        stage_seconds["explore"] = explore_seconds

    icc_count = polly_scops = polly_reductions = None
    if options.baselines and unit.lead:
        started = time.perf_counter()
        icc_count, polly_scops, polly_reductions = _run_baselines(module)
        stage_seconds["baselines"] = time.perf_counter() - started

    return UnitDigest(
        name=unit.name,
        suite=unit.suite,
        function=unit.function,
        index=index,
        total=total,
        functions=tuple(functions),
        extended=extended,
        icc=icc_count,
        polly_scops=polly_scops,
        polly_reductions=polly_reductions,
        stage_seconds=stage_seconds,
        spec_stats=spec_stats,
        order_obs=order_obs,
    )


def detect_program(
    key: tuple[str, str],
    options: PipelineOptions,
    registry=None,
) -> ProgramDigest:
    """Run one corpus program through every pipeline stage."""
    unit = WorkUnit(key[0], key[1])
    return assemble_program([detect_unit(unit, options, registry)])


def run_unit_shard(
    shard: Sequence[WorkUnit], options: PipelineOptions
) -> list[UnitDigest]:
    """Process one shard of work units; registry and compiled modules
    are built once per shard."""
    registry = _build_registry(options)
    modules = ModuleCache(options.module_cache_size)
    return [
        detect_unit(unit, options, registry, modules) for unit in shard
    ]


def run_shard(
    shard: Sequence[tuple[str, str]], options: PipelineOptions
) -> list[ProgramDigest]:
    """Process one shard of corpus keys (program granularity)."""
    units = [WorkUnit(name, suite) for name, suite in shard]
    return [
        assemble_program([unit_digest])
        for unit_digest in run_unit_shard(units, options)
    ]
