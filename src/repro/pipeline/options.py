"""Pipeline configuration.

:class:`PipelineOptions` crosses process boundaries (it is sent to
every worker), so it holds only plain picklable data — notably user
spec *paths*, not loaded registries; each worker builds its own
:class:`~repro.idioms.registry.IdiomRegistry` from them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineOptions:
    """What to run and how to split it."""

    #: Worker process count; 1 runs everything in-process.
    jobs: int = 1
    #: Also run the §8 extension idioms (sharing each function's
    #: solver context — and solved for-loop prefix — with the base
    #: detection).
    extended: bool = False
    #: Also run the icc and Polly baseline models per program.
    baselines: bool = False
    #: Restrict to these suites (None = whole corpus).
    suites: tuple[str, ...] | None = None
    #: Extra ``.icsl`` files loaded into every worker's registry.
    spec_files: tuple[str, ...] = ()
    #: Share solver caches across the specs run on one function
    #: (False restores the per-``detect``-call PR-1 engine — the
    #: benchmark baseline).
    shared_cache: bool = True
    #: multiprocessing start method (None = fork when available).
    start_method: str | None = None
    #: Work-unit granularity: ``"program"`` ships whole programs,
    #: ``"function"`` ships ``(program, function)`` units so one giant
    #: module cannot serialize a run.  Reports are fingerprint-identical
    #: either way.
    granularity: str = "program"
    #: Function granularity only: programs with fewer defined functions
    #: than this stay whole.
    split_threshold: int = 1
    #: Path to a previous run's report JSON
    #: (:func:`~repro.pipeline.digest.save_report`); its recorded
    #: ``stage_seconds``/``constraint_evals`` weight the shards
    #: (measured-cost balancing) instead of the static source-length
    #: proxy.
    weights_from: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.granularity not in ("program", "function"):
            raise ValueError(
                f"granularity must be 'program' or 'function', "
                f"got {self.granularity!r}"
            )
        # Normalize list arguments so options compare/pickle cleanly.
        object.__setattr__(self, "spec_files", tuple(self.spec_files))
        if self.suites is not None:
            object.__setattr__(self, "suites", tuple(self.suites))
