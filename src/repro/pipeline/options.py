"""Pipeline configuration.

:class:`PipelineOptions` crosses process boundaries (it is sent to
every worker), so it holds only plain picklable data — notably user
spec *paths*, not loaded registries; each worker builds its own
:class:`~repro.idioms.registry.IdiomRegistry` from them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineOptions:
    """What to run and how to split it."""

    #: Worker process count; 1 runs everything in-process.
    jobs: int = 1
    #: Also run the §8 extension idioms (sharing each function's
    #: solver context — and solved for-loop prefix — with the base
    #: detection).
    extended: bool = False
    #: Also run the icc and Polly baseline models per program.
    baselines: bool = False
    #: Restrict to these suites (None = whole corpus).
    suites: tuple[str, ...] | None = None
    #: Extra ``.icsl`` files loaded into every worker's registry.
    spec_files: tuple[str, ...] = ()
    #: Share solver caches across the specs run on one function
    #: (False restores the per-``detect``-call PR-1 engine — the
    #: benchmark baseline).
    shared_cache: bool = True
    #: Solver execution engine: ``"compiled"`` (flat evaluation plans),
    #: ``"interpreted"`` (the naive tree-walking oracle), or None for
    #: the :func:`~repro.constraints.detect` default.  Detections,
    #: digests and fingerprints are engine-independent; only wall-clock
    #: and the pruning counters move.
    engine: str | None = None
    #: multiprocessing start method (None = fork when available).
    start_method: str | None = None
    #: Work-unit granularity: ``"program"`` ships whole programs,
    #: ``"function"`` ships ``(program, function)`` units so one giant
    #: module cannot serialize a run.  Reports are fingerprint-identical
    #: either way.
    granularity: str = "program"
    #: Function granularity only: programs with fewer defined functions
    #: than this stay whole.
    split_threshold: int = 1
    #: Path to a previous run's report JSON
    #: (:func:`~repro.pipeline.digest.save_report`); its recorded
    #: ``stage_seconds``/``constraint_evals`` weight the shards
    #: (measured-cost balancing) instead of the static source-length
    #: proxy.
    weights_from: str | None = None
    #: Path to a solver feedback artifact
    #: (:func:`~repro.pipeline.feedback.save_feedback`); the recorded
    #: per-spec statistics re-order every measured idiom spec via
    #: ``suggest_order(feedback=...)`` before detection.  Resolved once
    #: in the parent (into :attr:`spec_orders`) so workers never
    #: re-read or re-verify the file.
    feedback_from: str | None = None
    #: Explicit label enumeration orders (idiom name → label tuple),
    #: applied to every worker registry via
    #: :meth:`~repro.idioms.registry.IdiomRegistry.apply_orders`.
    #: Accepts a mapping or canonical pair-tuples; normalized to the
    #: sorted tuple form so options stay hashable and picklable.
    #: Usually derived from :attr:`feedback_from`; set directly to pin
    #: orders by hand (the benchmark's static-order baseline).
    spec_orders: "tuple | dict | None" = None
    #: Fraction of functions run under a deterministically *perturbed*
    #: enumeration order (one adjacent suffix transposition of one
    #: spec), with the measured outcome recorded as per-order feedback
    #: — see :class:`~repro.pipeline.feedback.ExplorationPolicy`.  The
    #: decision is a pure hash of ``(explore_seed, suite, program,
    #: function)``, so ``jobs=1`` and ``jobs=N`` (fork or spawn,
    #: either granularity) explore the same sample and the recorded
    #: artifact stays byte-reproducible.  0.0 (the default) records no
    #: per-order observations and behaves exactly as before.
    #: Detections are never affected — a perturbed order is still a
    #: checked permutation.
    explore: float = 0.0
    #: Seed of the exploration hash; change it to explore a fresh
    #: deterministic sample of functions and perturbations.
    explore_seed: int = 0
    #: Serving engine only: re-derive the spec orders from feedback
    #: accumulated off completed units at every ``submit`` — long-lived
    #: serving sessions self-tune.  Off by default so a default serve
    #: run stays bit-comparable to the batch engine (`--check`).
    feedback_refresh: bool = False
    #: Serving engine only: recycle a worker process after it has
    #: completed this many units (None = never).  Recycling bounds the
    #: memory a long-lived worker's caches can accumulate and proves
    #: the pool survives worker turnover.
    max_tasks_per_worker: int | None = None
    #: Serving engine only: how many times a unit lost to a dead
    #: worker is resubmitted before the job records a structured
    #: :class:`~repro.pipeline.digest.UnitFailure` for its program.
    max_unit_retries: int = 2
    #: Serving engine only: units queued on each worker *beyond* the
    #: one it is running (its dispatch window is ``1 +
    #: prefetch_units``).  Prefetching hides the parent's dispatch
    #: latency — a worker finishing a unit starts the next one from its
    #: own queue instead of idling a round-trip through the supervisor
    #: (measured in ``results/BENCH_gateway.json``).  A dead worker's
    #: whole window is recovered: every queued unit is resubmitted,
    #: exactly like the in-flight one.  0 restores depth-one dispatch,
    #: where a later interactive submit overtakes at every unit
    #: boundary instead of every window boundary.  Reports are
    #: identical either way; only latency moves.
    prefetch_units: int = 1
    #: Per-worker compiled-module cache bound: a worker keeps at most
    #: this many compiled programs, evicting least-recently-used
    #: (None = unbounded, compatible with the historical behaviour).
    #: Long-lived gateway/serving workers should set this so memory is
    #: a working set, not a leak; eviction is recompute cost only and
    #: can never change a digest.
    module_cache_size: int | None = None
    #: Gateway only: the per-connection admission budget, in pending
    #: work units.  A submit that would push one connection's
    #: in-flight units past this is rejected with a structured
    #: retry-after frame instead of being queued — a greedy batch
    #: client saturates its own budget, not the scheduler.
    gateway_unit_budget: int = 256
    #: Serving engine only: seconds between worker heartbeat messages.
    heartbeat_interval: float = 1.0
    #: Serving engine only: a worker whose process is alive but whose
    #: last heartbeat is older than this is declared hung and replaced
    #: (its in-flight unit is resubmitted like any lost unit).
    heartbeat_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.granularity not in ("program", "function"):
            raise ValueError(
                f"granularity must be 'program' or 'function', "
                f"got {self.granularity!r}"
            )
        if (self.max_tasks_per_worker is not None
                and self.max_tasks_per_worker < 1):
            raise ValueError(
                f"max_tasks_per_worker must be >= 1 or None, "
                f"got {self.max_tasks_per_worker}"
            )
        if self.prefetch_units < 0:
            raise ValueError(
                f"prefetch_units must be >= 0, got {self.prefetch_units}"
            )
        if self.max_unit_retries < 0:
            raise ValueError(
                f"max_unit_retries must be >= 0, "
                f"got {self.max_unit_retries}"
            )
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval/timeout must be > 0")
        if (self.module_cache_size is not None
                and self.module_cache_size < 1):
            raise ValueError(
                f"module_cache_size must be >= 1 or None, "
                f"got {self.module_cache_size}"
            )
        if self.gateway_unit_budget < 1:
            raise ValueError(
                f"gateway_unit_budget must be >= 1, "
                f"got {self.gateway_unit_budget}"
            )
        if not 0.0 <= self.explore <= 1.0:
            raise ValueError(
                f"explore must be within [0, 1], got {self.explore}"
            )
        if self.engine not in (None, "compiled", "interpreted"):
            raise ValueError(
                f"engine must be 'compiled', 'interpreted' or None, "
                f"got {self.engine!r}"
            )
        # Normalize list arguments so options compare/pickle cleanly.
        object.__setattr__(self, "spec_files", tuple(self.spec_files))
        if self.suites is not None:
            object.__setattr__(self, "suites", tuple(self.suites))
        if self.spec_orders is not None:
            from .feedback import canonical_orders

            object.__setattr__(
                self, "spec_orders", canonical_orders(self.spec_orders)
            )
