"""Persistent serving engine: long-lived workers, streamed digests,
priority scheduling and fault tolerance.

The batch pipeline (:mod:`repro.pipeline.engine`) spins up a process
pool per run — the right shape for one corpus sweep, the wrong one for
serving-style traffic where requests arrive continuously and a pool's
start-up cost (process spawn, registry build, module compiles) would be
paid per request.  :class:`ServingEngine` keeps a fixed set of worker
processes alive across requests:

* **submission is asynchronous** — :meth:`ServingEngine.submit` plans
  the request into :class:`~repro.pipeline.shard.WorkUnit`\\ s, enqueues
  them and returns a :class:`ServingJob` immediately; several jobs may
  be in flight at once, their results routed by job id;
* **scheduling is class-aware** — every job carries a
  :class:`JobClass` (``INTERACTIVE`` or ``BATCH``); pending units are
  dequeued weighted-fair (stride scheduling), so an interactive submit
  overtakes a deep backlog of queued batch units instead of waiting
  behind it, while a lone batch job still gets the whole pool;
* **dispatch is windowed** — each worker runs one unit and holds up
  to ``prefetch_units`` more on its private queue, so finishing a
  unit starts the next without idling a supervisor round-trip; the
  worker-side gap is measured per unit and reported through
  :meth:`ServingEngine.mean_dispatch_gap`;
* **jobs are cancellable** — :meth:`ServingJob.cancel` drains the
  job's queued units from the scheduler, flags its in-flight units
  (their results are dropped on arrival) and makes
  :meth:`ServingJob.stream`/:meth:`ServingJob.result` raise
  :class:`JobCancelled`; later submits are unaffected;
* **workers are supervised** — each worker sends heartbeats from a
  background thread; a worker whose process died (or whose heartbeat
  went stale) is replaced, its in-flight unit resubmitted with a
  bounded retry budget, after which the job records a structured
  :class:`~repro.pipeline.digest.UnitFailure` instead of hanging.
  ``max_tasks_per_worker`` recycles workers after a task quota, so a
  long-lived pool survives worker turnover by construction;
* **workers are warm** — each worker keeps its
  :class:`~repro.idioms.registry.IdiomRegistry` and a compiled-module
  cache for the life of the process, so repeated traffic over the same
  corpus pays compiles once per worker, not once per request.

Determinism is preserved exactly as in batch mode:
:meth:`ServingJob.result` reassembles units through the same checked
merge, so a serving run's :class:`~repro.pipeline.digest.CorpusReport`
is fingerprint-identical to ``detect_corpus(jobs=1)`` with the same
options — including runs where a worker was killed mid-job and its
units were resubmitted (property- and chaos-tested in
``tests/pipeline/test_serving.py`` and
``tests/pipeline/test_reliability.py``).

Quickstart::

    from repro.pipeline import JobClass, PipelineOptions, ServingEngine

    with ServingEngine(PipelineOptions(jobs=4, extended=True,
                                       granularity="function")) as engine:
        batch = engine.submit(priority=JobClass.BATCH)
        urgent = engine.submit(keys[:2], priority=JobClass.INTERACTIVE)
        report = urgent.result()              # overtakes the batch queue
        for digest in batch.stream():         # completion order
            print(digest.name, digest.counts())
"""

from __future__ import annotations

import enum
import itertools
import math
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_channels
from typing import Callable, Iterator, Sequence

from .digest import (
    CorpusReport,
    ProgramDigest,
    UnitDigest,
    UnitFailure,
    assemble_program,
)
from .engine import (
    planned_keys,
    resolve_feedback_with_store,
    resolve_weight_source,
)
from .feedback import FeedbackStore, canonical_orders
from .options import PipelineOptions
from .shard import WorkUnit, lpt_order, plan_units
from .worker import (
    ChannelSender,
    Heartbeat,
    ModuleCache,
    _build_registry,
    detect_unit,
)

Key = tuple[str, str]


class JobCancelled(Exception):
    """Raised by ``stream()``/``result()`` of a cancelled job."""


class JobClass(enum.Enum):
    """Scheduling class of a submitted job.

    ``INTERACTIVE`` units are dequeued four times as often as
    ``BATCH`` units when both classes have work queued (stride
    scheduling); with only one class active it receives the whole
    pool.  The weights are scheduling policy only — they can never
    change a report, just its latency.
    """

    INTERACTIVE = "interactive"
    BATCH = "batch"

    @property
    def weight(self) -> int:
        return _CLASS_WEIGHTS[self]


_CLASS_WEIGHTS = {JobClass.INTERACTIVE: 4, JobClass.BATCH: 1}
_CLASS_ORDER = (JobClass.INTERACTIVE, JobClass.BATCH)
#: Stride numerator: lcm of the class weights, so strides stay integral
#: for any weight table.
_STRIDE_SCALE = math.lcm(*_CLASS_WEIGHTS.values())


class PriorityScheduler:
    """Weighted-fair dequeue over per-class FIFO queues.

    Textbook stride scheduling: each class advances a virtual ``pass``
    by ``_STRIDE_SCALE / weight`` per dispatched unit, and ``pop``
    serves the active class with the lowest pass — interactive work
    (weight 4) gets four units per batch unit under contention, batch
    work keeps the pool saturated otherwise.  A class activating after
    idling resumes at the scheduler's clock, not its stale pass, so it
    cannot burst on accumulated credit.  Entirely deterministic: state
    is integers, ties break by class order.
    """

    def __init__(self) -> None:
        self._queues: dict[JobClass, deque] = {
            cls: deque() for cls in _CLASS_ORDER
        }
        self._pass: dict[JobClass, int] = {cls: 0 for cls in _CLASS_ORDER}
        self._clock = 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _activate(self, cls: JobClass) -> None:
        if not self._queues[cls]:
            self._pass[cls] = max(self._pass[cls], self._clock)

    def push(self, job_id: int, unit: WorkUnit, attempt: int,
             cls: JobClass) -> None:
        self._activate(cls)
        self._queues[cls].append((job_id, unit, attempt))

    def push_front(self, job_id: int, unit: WorkUnit, attempt: int,
                   cls: JobClass) -> None:
        """Requeue a resubmitted unit at the head of its class — a
        recovered unit must not wait behind the whole backlog again."""
        self._activate(cls)
        self._queues[cls].appendleft((job_id, unit, attempt))

    def pop(self) -> tuple | None:
        """``(job_id, unit, attempt, cls)`` of the next unit, or None."""
        active = [cls for cls in _CLASS_ORDER if self._queues[cls]]
        if not active:
            return None
        cls = min(
            active,
            key=lambda c: (self._pass[c], _CLASS_ORDER.index(c)),
        )
        self._clock = self._pass[cls]
        self._pass[cls] += _STRIDE_SCALE // cls.weight
        job_id, unit, attempt = self._queues[cls].popleft()
        return (job_id, unit, attempt, cls)

    def purge(self, job_id: int) -> int:
        """Drop every queued unit of ``job_id``; returns the count."""
        drained = 0
        for cls in _CLASS_ORDER:
            kept = deque(
                entry for entry in self._queues[cls] if entry[0] != job_id
            )
            drained += len(self._queues[cls]) - len(kept)
            self._queues[cls] = kept
        return drained

    def pending_for(self, job_id: int) -> int:
        return sum(
            1
            for q in self._queues.values()
            for entry in q
            if entry[0] == job_id
        )


#: How many feedback-reordered registries one worker keeps warm.  Each
#: distinct orders mapping (one per feedback refresh that changed
#: something) gets its own registry; tasks carry their orders, so an
#: evicted registry is simply rebuilt — correctness never depends on
#: the cache.
_WORKER_REGISTRY_CACHE = 8


def serve_worker(worker_id: int, task_queue, result_conn,
                 options: PipelineOptions, stop=None) -> None:
    """One persistent worker process.

    Pulls ``(job_id, unit, spec_orders)`` tasks from its **own** queue
    until the ``None`` sentinel (or the ``stop`` event is set —
    draining a queue from the parent races the queue's feeder thread,
    so shutdown needs a signal workers check themselves), keeping the
    idiom registry and compiled modules warm across tasks — and across
    jobs.  ``spec_orders`` is the job's feedback-derived label-order
    mapping (None = the options-level orders the worker booted with):
    self-contained per task, so a job submitted before a feedback
    refresh keeps its orders even while newer jobs run reordered — the
    per-job determinism the fingerprint contract needs.  Results
    and heartbeats go out on the worker's **private result pipe**
    (``result_conn``): one writer per channel, so a worker killed
    mid-send can corrupt at most its own pipe — never a lock the
    surviving workers share (the parent reads the pipes multiplexed
    via ``multiprocessing.connection.wait``, and a broken pipe *is*
    the death notice).  A :class:`~repro.pipeline.worker.Heartbeat`
    thread proves liveness the whole time, so the engine can tell a
    worker grinding through a heavy unit from a dead or hung one; a
    failed unit never kills the worker, so one bad program cannot
    take down the engine.
    """
    sender = ChannelSender(result_conn)
    beacon = Heartbeat(
        worker_id, sender, options.heartbeat_interval
    ).start()
    try:
        registries: dict = {None: _build_registry(options)}
        modules = ModuleCache(options.module_cache_size)
        # Dispatch-gap instrumentation: how long this worker sat in
        # ``get()`` between finishing one unit and starting the next —
        # the latency prefetching exists to hide.  The first task's
        # wait (process boot, not a dispatch gap) reports as zero.
        last_done: float | None = None
        while True:
            task = task_queue.get()
            idle = (
                0.0 if last_done is None
                else time.monotonic() - last_done
            )
            if task is None or (stop is not None and stop.is_set()):
                break
            job_id, unit, orders = task
            registry = registries.get(orders)
            if registry is None:
                registry = _build_registry(options, orders=dict(orders))
                while len(registries) > _WORKER_REGISTRY_CACHE:
                    stale = next(
                        key for key in registries if key is not None
                    )
                    del registries[stale]
                registries[orders] = registry
            try:
                digest = detect_unit(unit, options, registry, modules)
                sender.put(
                    ("done", worker_id, job_id, unit, digest, None, idle)
                )
            except Exception as exc:  # propagate, don't die
                sender.put(
                    ("done", worker_id, job_id, unit, None,
                     f"{type(exc).__name__}: {exc}", idle)
                )
            last_done = time.monotonic()
    finally:
        beacon.stop()


@dataclass
class _WorkerHandle:
    """Parent-side view of one worker process.

    ``assignments`` is the worker's dispatch window, oldest first: the
    unit it is running plus up to ``prefetch_units`` queued behind it
    on its private task queue.  The worker drains its queue FIFO, so
    each ``done`` message answers the window's head — and a killed
    worker's loss stays *exact*: the engine knows precisely which
    units died with it (the whole window) and resubmits those units,
    nothing else.
    """

    worker_id: int
    process: object
    queue: object
    #: Parent-side read end of the worker's private result pipe.
    conn: object = None
    #: ``(job_id, unit, attempt, job_class)`` dispatches, oldest first.
    assignments: deque = field(default_factory=deque)
    tasks_done: int = 0
    last_beat: float = field(default_factory=time.monotonic)

    @property
    def assignment(self) -> tuple | None:
        """The window's head — the unit the worker is running now."""
        return self.assignments[0] if self.assignments else None


class ServingJob:
    """One submitted request: a set of corpus keys being served."""

    def __init__(self, engine: "ServingEngine", job_id: int,
                 keys: list[Key], unit_count: int,
                 priority: JobClass = JobClass.BATCH):
        self._engine = engine
        self.job_id = job_id
        self.keys = keys
        self.priority = priority
        self._pending_units = unit_count
        self._by_key: dict[Key, list[UnitDigest]] = {}
        self._remaining: dict[Key, int] = {}
        self._failed_keys: set[Key] = set()
        self._completed: list[ProgramDigest] = []
        self._streamed = 0
        self._errors: list[str] = []
        self._failures: list[UnitFailure] = []
        #: Units already accounted for, by ``(key, function)`` — the
        #: duplicate guard: a unit resubmitted after a false death
        #: verdict may eventually produce two results; only the first
        #: counts.
        self._delivered: set[tuple[Key, str | None]] = set()
        self._cancelled = False
        self._started = time.perf_counter()
        self._wall: float | None = None
        #: Feedback-derived label orders pinned at submit time (None =
        #: the orders the workers booted with); shipped with every one
        #: of the job's tasks.
        self._spec_orders = None

    @property
    def done(self) -> bool:
        return self._pending_units == 0

    @property
    def pending_units(self) -> int:
        """Units not yet accounted (completed, failed or abandoned).

        The admission-control currency: the gateway bounds the sum of
        this over a connection's in-flight jobs.
        """
        return self._pending_units

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> int:
        """Cancel the job (idempotent); returns queued units drained.

        Queued units leave the scheduler immediately; in-flight units
        are flagged — their results are dropped on arrival, never
        delivered.  ``stream()``/``result()`` raise
        :class:`JobCancelled` from now on.  The engine and its workers
        stay fully usable for other (and later) jobs.
        """
        if self._cancelled:
            return 0
        self._cancelled = True
        return self._engine._cancel(self)

    # -- engine-side plumbing ------------------------------------------------

    def _expect(self, unit: WorkUnit) -> None:
        self._remaining[unit.key] = self._remaining.get(unit.key, 0) + 1

    def _account(self, key: Key, function: str | None) -> bool:
        """Duplicate-guarded bookkeeping; False when already counted."""
        marker = (key, function)
        if marker in self._delivered:
            return False
        self._delivered.add(marker)
        self._pending_units -= 1
        self._remaining[key] -= 1
        if self._pending_units == 0:
            self._wall = time.perf_counter() - self._started
        return True

    def _deliver(self, digest: UnitDigest) -> bool:
        """Account one unit result; False when it was a duplicate."""
        if not self._account(digest.key, digest.function):
            return False
        self._by_key.setdefault(digest.key, []).append(digest)
        if (self._remaining[digest.key] == 0
                and digest.key not in self._failed_keys):
            self._completed.append(assemble_program(self._by_key[digest.key]))
        return True

    def _fail(self, unit: WorkUnit, message: str) -> None:
        if not self._account(unit.key, unit.function):
            return
        self._failed_keys.add(unit.key)
        self._errors.append(f"{unit.key}/{unit.function or '*'}: {message}")

    def _lost(self, unit: WorkUnit, failure: UnitFailure) -> None:
        """A unit abandoned after bounded retries: structured failure,
        not a hung job and not an exception — the rest of the report
        still completes and carries the :class:`UnitFailure`."""
        if not self._account(unit.key, unit.function):
            return
        self._failed_keys.add(unit.key)
        self._failures.append(failure)

    # -- consumer API --------------------------------------------------------

    def _raise_if_cancelled(self) -> None:
        if self._cancelled:
            raise JobCancelled(
                f"serving job {self.job_id} was cancelled"
            )

    def _raise_pending_errors(self) -> None:
        if not self._errors:
            return
        # Unregister: the consumer is done with this job, so its
        # queued units are drained and late results for it are
        # dropped by the router instead of accumulating in a job
        # nobody will drain.
        self._engine._abandon(self)
        raise RuntimeError(
            f"serving job {self.job_id} failed: "
            + "; ".join(self._errors)
        )

    def take_completed(self) -> list[ProgramDigest]:
        """Program digests completed since the last take, no blocking.

        The non-blocking sibling of :meth:`stream` for external
        drivers (the socket gateway) that pump the engine themselves:
        returns whatever completed since the previous call — possibly
        nothing — instead of waiting.  Raises exactly like
        :meth:`stream`: :class:`JobCancelled` once cancelled,
        ``RuntimeError`` on a failed unit or an engine shutdown.
        Shares the stream cursor, so mixing the two never yields a
        program twice.
        """
        self._raise_if_cancelled()
        self._raise_pending_errors()
        fresh = self._completed[self._streamed:]
        self._streamed = len(self._completed)
        return list(fresh)

    def stream(self) -> Iterator[ProgramDigest]:
        """Yield program digests as programs complete.

        Completion order — *not* canonical corpus order; use
        :meth:`result` for the canonical, fingerprint-stable report.
        Raises :class:`JobCancelled` once the job is cancelled and
        ``RuntimeError`` on the first unit that failed *in* a worker
        (a deterministic program error).  Units lost to dead workers
        do not raise: their programs are skipped here and recorded as
        :class:`UnitFailure`\\ s on the :meth:`result` report.
        """
        while True:
            self._raise_if_cancelled()
            self._raise_pending_errors()
            while self._streamed < len(self._completed):
                # Re-checked per yield: cancelling from inside the
                # consumer loop must stop the stream at the very next
                # iteration, even when several programs completed in
                # one pump and are already buffered.
                self._raise_if_cancelled()
                digest = self._completed[self._streamed]
                self._streamed += 1
                yield digest
            if self.done:
                # Shutdown marks a pending job done *and* failed (the
                # wakeup path for consumers blocked here in another
                # thread) — that wakeup must raise, not end the
                # stream as if the job had completed.
                self._raise_pending_errors()
                return
            self._engine._pump()

    def result(self) -> CorpusReport:
        """Drain the job and return the canonical-order report.

        Identical (same fingerprint) to a batch ``jobs=1`` run with the
        same options — the serving engine's determinism contract, which
        worker deaths and resubmissions must not (and, tested, do not)
        weaken.  Programs whose units were abandoned after bounded
        retries are omitted from ``programs`` and recorded on
        ``failures``.
        """
        for _ in self.stream():
            pass
        by_key = {digest.key: digest for digest in self._completed}
        missing = [
            key for key in self.keys
            if key not in by_key and key not in self._failed_keys
        ]
        if missing:
            raise ValueError(f"serving returned no result for {missing}")
        return CorpusReport(
            programs=tuple(
                by_key[key] for key in self.keys if key in by_key
            ),
            jobs=self._engine.workers,
            wall_seconds=self._wall or 0.0,
            failures=tuple(self._failures),
        )


class ServingEngine:
    """A persistent, fault-tolerant detection service.

    Architecturally a supervisor: pending units live in the parent's
    :class:`PriorityScheduler` (not a shared queue), each worker holds
    a small known dispatch window (the running unit plus
    ``prefetch_units`` queued on its private task queue), and every
    completion triggers the next weighted-fair dispatch.  That design
    buys the whole reliability story — priorities apply at every
    window boundary, cancellation can drain the scheduler
    synchronously, and a dead worker loses exactly its window, whose
    units are resubmitted (bounded by ``max_unit_retries``) while a
    replacement process keeps the pool at full strength.  Prefetching
    only hides the supervisor round-trip between units; with
    ``prefetch_units=0`` the engine degenerates to strict depth-one
    dispatch.
    """

    def __init__(self, options: PipelineOptions | None = None, **kwargs):
        self.options = (
            options if options is not None else PipelineOptions(**kwargs)
        )
        #: Worker-process count (the options' ``jobs``) — the pool is
        #: kept at this strength across deaths and recycles.
        self.workers = self.options.jobs
        self._context = None
        self._workers: dict[int, _WorkerHandle] = {}
        self._retired: list = []
        self._stop = None
        #: True while :meth:`shutdown` tears the pool down.  Consumer
        #: threads blocked in ``stream()`` keep pumping during the
        #: teardown; the flag makes their pumps no-ops so they cannot
        #: misread an exiting worker's closed pipe as a death and
        #: respawn workers into a pool being dismantled.
        self._draining = False
        self._scheduler = PriorityScheduler()
        self._jobs: dict[int, ServingJob] = {}
        self._job_ids = itertools.count()
        self._worker_ids = itertools.count()
        #: Lifetime counters, for observability and tests.
        self.worker_deaths = 0
        self.resubmissions = 0
        self.recycled = 0
        #: Dispatch-gap telemetry: summed worker-side idle between
        #: consecutive units (reported by each ``done`` message) and
        #: the sample count — ``mean_dispatch_gap`` is what the
        #: prefetch window exists to shrink.
        self.idle_seconds = 0.0
        self.idle_samples = 0
        #: The options' weight source, resolved once for the engine's
        #: lifetime — ``weights_from`` names an immutable report file,
        #: and a persistent engine must not re-read and re-verify it
        #: per request.
        self._weight_source = None
        self._weight_source_resolved = False
        #: Solver feedback state.  ``_feedback`` is the live store
        #: (seeded from ``feedback_from``, grown from completed units);
        #: ``_feedback_accum`` holds statistics accumulated since the
        #: last refresh; ``_current_orders`` is the canonical orders
        #: mapping jobs are currently submitted under (None = the
        #: orders the workers booted with).  Feedback state survives
        #: ``shutdown`` — a restarted engine keeps what it learned.
        self._feedback: FeedbackStore | None = None
        self._feedback_accum = FeedbackStore()
        self._current_orders = None
        self._worker_options: PipelineOptions | None = None
        self._pristine_registry = None
        self.feedback_refreshes = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._workers)

    def start(self) -> "ServingEngine":
        """Spawn the worker processes (idempotent)."""
        if self.running:
            return self
        import multiprocessing

        method = self.options.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._context = multiprocessing.get_context(method)
        self._stop = self._context.Event()
        self._scheduler = PriorityScheduler()
        self.resolve_feedback()
        for _ in range(self.workers):
            self._spawn_worker()
        return self

    def _registry(self):
        """The parent-side pristine registry (order derivation only).

        Orders are always derived against the *authored* spec
        definitions, never against already-reordered ones, so a
        self-tuning session cannot chase its own tail.
        """
        if self._pristine_registry is None:
            import dataclasses

            self._pristine_registry = _build_registry(
                dataclasses.replace(self.options, feedback_from=None,
                                    spec_orders=None)
            )
        return self._pristine_registry

    def resolve_feedback(self) -> None:
        """Derive the boot options via the shared parent-side
        resolution (:func:`~repro.pipeline.engine.
        resolve_feedback_with_store`); the loaded store seeds the live
        feedback the engine keeps refreshing when ``feedback_refresh``
        is on.

        Idempotent, spawns nothing, and runs automatically at
        :meth:`start`; callers that want artifact errors separated
        from worker-spawn errors (the CLI) may invoke it first.
        """
        if self._worker_options is not None:
            return
        self._worker_options, store = resolve_feedback_with_store(
            self.options, registry=self._registry()
        )
        if store is not None:
            self._feedback = store

    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = next(self._worker_ids)
        task_queue = self._context.Queue()
        reader, writer = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=serve_worker,
            args=(worker_id, task_queue, writer,
                  self._worker_options or self.options, self._stop),
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the write end: the worker now
        # holds the only writer, so its death makes the pipe EOF —
        # the read side doubles as a death notice.
        writer.close()
        handle = _WorkerHandle(worker_id, process, task_queue,
                               conn=reader)
        self._workers[worker_id] = handle
        return handle

    def shutdown(self) -> None:
        """Stop the workers (idempotent).

        In-flight jobs are abandoned: the stop event makes each worker
        exit at its next task (draining a queue from the parent would
        race the feeder thread, so workers check the event themselves),
        and any job still pending is marked failed — a later
        ``stream()``/``result()`` on it raises instead of waiting on
        queues that no longer exist.

        Pending jobs are failed (and the drain flag raised) *before*
        the worker joins below: a consumer blocked in
        ``stream()``/``result()`` on another thread wakes and raises
        within one poll timeout, instead of waiting out the joins —
        or worse, condemning the deliberately-exiting workers as dead
        and respawning them mid-teardown.
        """
        if not self.running:
            return
        self._draining = True
        self._stop.set()
        for job in list(self._jobs.values()):
            if not job.done and not job.cancelled:
                job._errors.append("engine shut down with the job pending")
                job._pending_units = 0
        self._jobs.clear()
        self._scheduler = PriorityScheduler()
        for handle in self._workers.values():
            handle.queue.put(None)
        for handle in self._workers.values():
            handle.process.join(timeout=30)
            if handle.process.is_alive():  # pragma: no cover - defensive
                handle.process.terminate()
                handle.process.join()
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for process in self._retired:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join()
        self._workers = {}
        self._retired = []
        self._stop = self._context = None
        self._draining = False

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------------

    def keys(self) -> list[Key]:
        """The full corpus (restricted by the options' suites)."""
        return planned_keys(self.options)

    def submit(
        self,
        keys: Sequence[Key] | None = None,
        weights: "CorpusReport | Callable | None" = None,
        priority: "JobClass | str" = JobClass.BATCH,
    ) -> ServingJob:
        """Enqueue a request; returns immediately.

        Units are planned and cost-ordered exactly as in batch mode
        (granularity, measured weights) and enter the priority
        scheduler heaviest-first within the job, so the pool drains
        each job LPT-style; across jobs the scheduler interleaves by
        class weight.  Planning happens *before* any worker is
        spawned, and a submit that fails after auto-starting a
        previously idle engine tears the pool back down — a raising
        ``submit`` never leaks worker processes.
        """
        if isinstance(priority, str):
            priority = JobClass(priority)
        keys = list(keys) if keys is not None else self.keys()
        # Dedupe, preserving order: a repeated key would plan two
        # identical units whose second result the duplicate guard
        # (rightly) drops — the job must expect each unit once.
        keys = list(dict.fromkeys(keys))
        started_here = not self.running
        if self.options.feedback_refresh:
            self._refresh_feedback()
        job = None
        try:
            options = self.options
            units = plan_units(keys, options.granularity,
                               options.split_threshold)
            if weights is not None:
                weight = resolve_weight_source(options, weights)
            else:
                if not self._weight_source_resolved:
                    self._weight_source = resolve_weight_source(options)
                    self._weight_source_resolved = True
                weight = self._weight_source
            ordered = lpt_order(units, weight)
            if not self.running:
                self.start()
            job = ServingJob(self, next(self._job_ids), keys, len(units),
                             priority)
            # The job's orders are pinned at submit time: every unit of
            # the job — resubmissions after worker deaths included —
            # runs under them, so one job is internally deterministic
            # even while later submits pick up refreshed feedback.
            job._spec_orders = self._current_orders
            self._jobs[job.job_id] = job
            for unit in ordered:
                job._expect(unit)
            for unit in ordered:
                self._scheduler.push(job.job_id, unit, 0, priority)
            self._dispatch()
            return job
        except BaseException:
            if job is not None:
                self._scheduler.purge(job.job_id)
                self._jobs.pop(job.job_id, None)
            if started_here and self.running and not self._jobs:
                self.shutdown()
            raise

    def serve(
        self,
        keys: Sequence[Key] | None = None,
        weights: "CorpusReport | Callable | None" = None,
        priority: "JobClass | str" = JobClass.BATCH,
    ) -> CorpusReport:
        """Submit and wait: the synchronous convenience wrapper."""
        return self.submit(keys, weights=weights,
                           priority=priority).result()

    # -- solver feedback -----------------------------------------------------

    def _refresh_feedback(self) -> None:
        """Fold accumulated unit statistics into the live store and
        re-derive the spec orders new submits run under.

        Called at ``submit`` when ``feedback_refresh`` is on — the
        self-tuning loop: completed units feed the store, the store
        re-orders the next request's searches.  Orders are derived from
        the pristine registry and usually reproduce the orders that
        generated the feedback (cost-aware ``suggest_order`` replays
        the cheapest measured continuation), so a converged session
        refreshes into a no-op.
        """
        if not self._feedback_accum:
            return
        if self._feedback is None:
            self._feedback = FeedbackStore()
        self._feedback.merge(self._feedback_accum)
        self._feedback_accum = FeedbackStore()
        orders = canonical_orders(
            self._feedback.spec_orders(self._registry())
        )
        boot_orders = (
            self._worker_options.spec_orders
            if self._worker_options is not None else None
        )
        if orders is None and boot_orders:
            # The refreshed store recommends the *authored* orders, but
            # the workers booted with artifact-derived ones — None
            # would mean "boot orders", so say "authored" explicitly
            # (an empty mapping applies no reorder in the worker).
            orders = ()
        elif orders == boot_orders:
            # Converged on what the workers already run: ship None so
            # they keep their boot registry instead of caching an
            # identical rebuild.
            orders = None
        self._current_orders = orders
        self.feedback_refreshes += 1

    def feedback_snapshot(self) -> FeedbackStore:
        """The engine's merged solver feedback, as an isolated copy.

        Initial ``feedback_from`` seed plus everything accumulated off
        completed units so far (whether or not ``feedback_refresh`` is
        on) — the store ``--save-feedback`` persists at the end of a
        serving session.
        """
        snapshot = FeedbackStore()
        if self._feedback is not None:
            snapshot.merge(self._feedback)
        snapshot.merge(self._feedback_accum)
        return snapshot

    def mean_dispatch_gap(self) -> float:
        """Mean worker-side idle between consecutive units, seconds.

        Each ``done`` message reports how long its worker waited on
        its task queue after finishing the previous unit; this is the
        running mean.  With ``prefetch_units=0`` every gap is a full
        supervisor round-trip; with a prefetch window the next unit is
        already local and the gap collapses to a queue read.
        """
        return self.idle_seconds / self.idle_samples \
            if self.idle_samples else 0.0

    # -- job bookkeeping -----------------------------------------------------

    def _cancel(self, job: ServingJob) -> int:
        drained = self._scheduler.purge(job.job_id)
        self._jobs.pop(job.job_id, None)
        return drained

    def _abandon(self, job: ServingJob) -> None:
        self._jobs.pop(job.job_id, None)
        if self.running:
            self._scheduler.purge(job.job_id)

    # -- the dispatcher ------------------------------------------------------

    def _dispatch(self) -> None:
        """Fill every worker's dispatch window from the scheduler.

        Round by round — first every worker gets a running unit, then
        the prefetch slots fill — so prefetching never starves an idle
        worker while another's queue doubles up.  Workers at their
        recycle quota are skipped: their windows drain so the graceful
        sentinel can follow.
        """
        depth = 1 + self.options.prefetch_units
        limit = self.options.max_tasks_per_worker
        handles = [
            handle for handle in self._workers.values()
            if limit is None or handle.tasks_done < limit
        ]
        for fill in range(1, depth + 1):
            for handle in handles:
                if len(handle.assignments) >= fill:
                    continue
                while True:
                    entry = self._scheduler.pop()
                    if entry is None:
                        return
                    job_id, unit, attempt, cls = entry
                    job = self._jobs.get(job_id)
                    if job is None:
                        continue  # cancelled or abandoned; drop it
                    handle.queue.put((job_id, unit, job._spec_orders))
                    handle.assignments.append((job_id, unit, attempt,
                                               cls))
                    break

    def _poll_timeout(self) -> float:
        return max(0.05, min(1.0, self.options.heartbeat_timeout / 4.0))

    def pump(self, timeout: float | None = None) -> None:
        """One public supervision step, for external drivers.

        The socket gateway (and any other driver that multiplexes many
        consumers over one engine) calls this in its own service loop
        and collects completions via :meth:`ServingJob.take_completed`
        instead of blocking in ``stream()``.  ``timeout`` bounds the
        blocking wait on the worker result pipes (None = the engine's
        heartbeat-derived default); drivers that must stay responsive
        to other traffic pass something small.
        """
        self._pump(timeout)

    def _pump(self, timeout: float | None = None) -> None:
        """One supervision step: reap results, check liveness, dispatch.

        Already-delivered messages are drained first — a worker that
        completed a unit and was killed a moment later gets credit for
        the work instead of a pointless resubmission.  Then liveness:
        a worker whose process died or whose heartbeat went stale is
        replaced and its in-flight unit requeued (front of its class)
        or, past ``max_unit_retries``, recorded as a
        :class:`UnitFailure` on its job.  Finally a bounded blocking
        wait over every worker's result pipe so the consumer's
        ``stream()`` loop makes progress without spinning.
        """
        if not self.running or self._draining:
            return
        processed = self._poll_channels(0.0)
        self._check_liveness()
        self._dispatch()
        if processed:
            return
        self._poll_channels(
            self._poll_timeout() if timeout is None else timeout
        )
        self._dispatch()

    def _poll_channels(self, timeout: float) -> int:
        """Multiplex every worker's result pipe; returns messages read.

        ``multiprocessing.connection.wait`` marks a pipe ready on data
        *or* EOF — a dead worker's closed pipe is its death notice, so
        kills surface here immediately instead of waiting for a
        liveness sweep.  A pipe that raises (EOF, a message truncated
        by a mid-send kill) condemns only its own worker.
        """
        channels = {
            handle.conn: handle for handle in self._workers.values()
        }
        if not channels:
            return 0
        try:
            ready = _wait_channels(list(channels), timeout)
        except OSError:  # pragma: no cover - defensive
            return 0
        processed = 0
        for conn in ready:
            handle = channels[conn]
            # The handle may have been recycled or condemned while an
            # earlier channel in this pass was processed.
            while handle.worker_id in self._workers:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._declare_dead(handle, "worker died")
                    break
                except Exception:  # pragma: no cover - torn message
                    self._declare_dead(handle,
                                       "worker channel corrupted")
                    break
                self._handle_message(message)
                processed += 1
        return processed

    def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "beat":
            _, worker_id = message
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.last_beat = time.monotonic()
            return
        _, worker_id, job_id, unit, digest, error, idle = message
        self.idle_seconds += idle
        self.idle_samples += 1
        handle = self._workers.get(worker_id)
        if handle is not None:
            # FIFO dispatch window: a live worker's message always
            # answers the window's head.
            if handle.assignments:
                handle.assignments.popleft()
            handle.tasks_done += 1
            handle.last_beat = time.monotonic()
            self._maybe_recycle(handle)
        job = self._jobs.get(job_id)
        if job is None:
            return  # cancelled or abandoned job; drop the result
        if error is not None:
            job._fail(unit, error)
        elif job._deliver(digest):
            # Feed the live feedback store — every *accounted* unit
            # contributes its per-spec search statistics (behind the
            # job's duplicate guard, so a unit resubmitted after a
            # false death verdict can never be counted twice): a
            # serving session's artifact covers exactly the work its
            # jobs accepted.
            for name, stats in digest.spec_stats.items():
                self._feedback_accum.merge_stats(name, stats)
            for key, obs in digest.order_obs.items():
                self._feedback_accum.merge_order_obs(key, obs)
        if job.done:
            self._jobs.pop(job_id, None)

    def _maybe_recycle(self, handle: _WorkerHandle) -> None:
        """Retire a worker that reached its task quota.

        The worker exits gracefully at the sentinel (its caches die
        with it — the recycling point), a replacement keeps the pool
        at strength, and the retired process is reaped opportunistically
        so recycling a busy pool never blocks the dispatcher.
        """
        limit = self.options.max_tasks_per_worker
        if limit is None or handle.tasks_done < limit:
            return
        if handle.assignments:
            # Prefetched units are still queued behind the quota-hitting
            # one; let the window drain (the dispatcher has stopped
            # refilling it) — this re-runs at each of their completions.
            return
        handle.queue.put(None)
        self._workers.pop(handle.worker_id, None)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._retired.append(handle.process)
        self.recycled += 1
        self._spawn_worker()

    def _check_liveness(self) -> None:
        """Replace dead or hung workers; recover their in-flight units."""
        # Reap retired processes that have exited (is_alive waitpids).
        self._retired = [p for p in self._retired if p.is_alive()]
        now = time.monotonic()
        for handle in list(self._workers.values()):
            alive = handle.process.is_alive()
            stale = (
                now - handle.last_beat > self.options.heartbeat_timeout
            )
            if alive and not stale:
                continue
            self._declare_dead(
                handle,
                "worker died" if not alive
                else "worker heartbeat went stale",
            )

    def _declare_dead(self, handle: _WorkerHandle, reason: str) -> None:
        """Condemn one worker: replace it, recover its in-flight unit.

        Idempotent per handle.  The unit is requeued at the head of
        its class while retries remain; past the budget its job
        records a :class:`UnitFailure` and completes without it.
        """
        if self._draining:
            # A consumer thread that entered its pump just before
            # shutdown raised the drain flag may see the exiting
            # workers' closed pipes here — they are not deaths, and
            # respawning into a pool being dismantled would leak.
            return
        if self._workers.pop(handle.worker_id, None) is None:
            return
        if handle.process.is_alive():
            # Hung, not dead: terminate so it cannot hold the unit (a
            # late result would be dropped by the duplicate guard, but
            # a zombie worker still wastes a core).  Only its own
            # private pipe can be torn by this.
            handle.process.terminate()
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._retired.append(handle.process)
        self.worker_deaths += 1
        # Recover the whole dispatch window — the running unit and any
        # prefetched behind it died with the worker.  Reversed +
        # push_front keeps their original order at the queue head.
        for job_id, unit, attempt, cls in reversed(handle.assignments):
            job = self._jobs.get(job_id)
            if job is None:
                continue
            if attempt < self.options.max_unit_retries:
                self._scheduler.push_front(
                    job_id, unit, attempt + 1, cls
                )
                self.resubmissions += 1
            else:
                job._lost(unit, UnitFailure(
                    name=unit.name,
                    suite=unit.suite,
                    function=unit.function,
                    error=reason,
                    attempts=attempt + 1,
                ))
                if job.done:
                    self._jobs.pop(job_id, None)
        self._spawn_worker()
