"""Persistent serving engine: long-lived workers, streamed digests.

The batch pipeline (:mod:`repro.pipeline.engine`) spins up a process
pool per run — the right shape for one corpus sweep, the wrong one for
serving-style traffic where requests arrive continuously and a pool's
start-up cost (process spawn, registry build, module compiles) would be
paid per request.  :class:`ServingEngine` keeps a fixed set of worker
processes alive across requests:

* **submission is asynchronous** — :meth:`ServingEngine.submit` plans
  the request into :class:`~repro.pipeline.shard.WorkUnit`\\ s, enqueues
  them and returns a :class:`ServingJob` immediately; several jobs may
  be in flight at once, their results routed by job id;
* **digests stream** — :meth:`ServingJob.stream` yields each program's
  :class:`~repro.pipeline.digest.ProgramDigest` the moment its last
  unit completes (completion order), so a consumer renders results
  while the rest of the corpus is still being served;
* **workers are warm** — each worker keeps its
  :class:`~repro.idioms.registry.IdiomRegistry` and a compiled-module
  cache for the life of the engine, so repeated traffic over the same
  corpus pays compiles once per worker, not once per request;
* **function-level sharding** — with
  ``PipelineOptions(granularity="function")`` a giant module's
  functions spread over all workers instead of serializing one.

Determinism is preserved exactly as in batch mode:
:meth:`ServingJob.result` reassembles units through the same checked
merge, so a serving run's :class:`~repro.pipeline.digest.CorpusReport`
is fingerprint-identical to ``detect_corpus(jobs=1)`` with the same
options (property-tested in ``tests/pipeline/test_serving.py``).

Quickstart::

    from repro.pipeline import PipelineOptions, ServingEngine

    with ServingEngine(PipelineOptions(jobs=4, extended=True,
                                       granularity="function")) as engine:
        job = engine.submit()                 # whole corpus, async
        for digest in job.stream():           # completion order
            print(digest.name, digest.counts())
        report = job.result()                 # canonical order, checked
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import time
from typing import Callable, Iterator, Sequence

from .digest import CorpusReport, ProgramDigest, UnitDigest, assemble_program
from .engine import planned_keys, resolve_weight_source
from .options import PipelineOptions
from .shard import WorkUnit, lpt_order, plan_units
from .worker import ModuleCache, _build_registry, detect_unit

Key = tuple[str, str]


def serve_worker(task_queue, result_queue, options: PipelineOptions,
                 stop=None) -> None:
    """One persistent worker process.

    Pulls ``(job_id, unit)`` tasks until the ``None`` sentinel (or the
    ``stop`` event is set — draining a queue from the parent races the
    queue's feeder thread, so shutdown needs a signal workers check
    themselves), keeping the idiom registry and compiled modules warm
    across tasks — and across jobs.  Results (or per-unit failures)
    are pushed back tagged with the job id; a failed unit never kills
    the worker, so one bad program cannot take down the engine.
    """
    registry = _build_registry(options)
    modules = ModuleCache()
    while True:
        task = task_queue.get()
        if task is None or (stop is not None and stop.is_set()):
            break
        job_id, unit = task
        try:
            digest = detect_unit(unit, options, registry, modules)
            result_queue.put((job_id, digest, None))
        except Exception as exc:  # propagate, don't die
            result_queue.put(
                (job_id, unit, f"{type(exc).__name__}: {exc}")
            )


class ServingJob:
    """One submitted request: a set of corpus keys being served."""

    def __init__(self, engine: "ServingEngine", job_id: int,
                 keys: list[Key], unit_count: int):
        self._engine = engine
        self.job_id = job_id
        self.keys = keys
        self._pending_units = unit_count
        self._by_key: dict[Key, list[UnitDigest]] = {}
        self._remaining: dict[Key, int] = {}
        self._failed_keys: set[Key] = set()
        self._completed: list[ProgramDigest] = []
        self._streamed = 0
        self._errors: list[str] = []
        self._started = time.perf_counter()
        self._wall: float | None = None

    @property
    def done(self) -> bool:
        return self._pending_units == 0

    # -- engine-side plumbing ------------------------------------------------

    def _expect(self, unit: WorkUnit) -> None:
        self._remaining[unit.key] = self._remaining.get(unit.key, 0) + 1

    def _deliver(self, digest: UnitDigest) -> None:
        self._by_key.setdefault(digest.key, []).append(digest)
        self._pending_units -= 1
        self._remaining[digest.key] -= 1
        if (self._remaining[digest.key] == 0
                and digest.key not in self._failed_keys):
            self._completed.append(assemble_program(self._by_key[digest.key]))
        if self._pending_units == 0:
            self._wall = time.perf_counter() - self._started

    def _fail(self, unit: WorkUnit, message: str) -> None:
        self._pending_units -= 1
        self._remaining[unit.key] -= 1
        self._failed_keys.add(unit.key)
        self._errors.append(f"{unit.key}/{unit.function or '*'}: {message}")
        if self._pending_units == 0:
            self._wall = time.perf_counter() - self._started

    # -- consumer API --------------------------------------------------------

    def stream(self) -> Iterator[ProgramDigest]:
        """Yield program digests as programs complete.

        Completion order — *not* canonical corpus order; use
        :meth:`result` for the canonical, fingerprint-stable report.
        Raises on the first failed unit.
        """
        while True:
            if self._errors:
                # Unregister: the consumer is done with this job, so
                # late results for it are dropped by the router instead
                # of accumulating in a job nobody will drain.  (Queued
                # units of the job still run to completion — per-job
                # cancellation is a ROADMAP item.)
                self._engine._jobs.pop(self.job_id, None)
                raise RuntimeError(
                    f"serving job {self.job_id} failed: "
                    + "; ".join(self._errors)
                )
            while self._streamed < len(self._completed):
                digest = self._completed[self._streamed]
                self._streamed += 1
                yield digest
            if self.done:
                return
            self._engine._pump()

    def result(self) -> CorpusReport:
        """Drain the job and return the canonical-order report.

        Identical (same fingerprint) to a batch ``jobs=1`` run with the
        same options — the serving engine's determinism contract.
        """
        for _ in self.stream():
            pass
        by_key = {digest.key: digest for digest in self._completed}
        missing = [key for key in self.keys if key not in by_key]
        if missing:
            raise ValueError(f"serving returned no result for {missing}")
        return CorpusReport(
            programs=tuple(by_key[key] for key in self.keys),
            jobs=self._engine.workers,
            wall_seconds=self._wall or 0.0,
        )


class ServingEngine:
    """A persistent detection service over long-lived workers."""

    def __init__(self, options: PipelineOptions | None = None, **kwargs):
        self.options = (
            options if options is not None else PipelineOptions(**kwargs)
        )
        #: Worker-process count (the options' ``jobs``).
        self.workers = self.options.jobs
        self._context = None
        self._processes: list = []
        self._task_queue = None
        self._result_queue = None
        self._stop = None
        self._jobs: dict[int, ServingJob] = {}
        self._job_ids = itertools.count()
        #: The options' weight source, resolved once for the engine's
        #: lifetime — ``weights_from`` names an immutable report file,
        #: and a persistent engine must not re-read and re-verify it
        #: per request.
        self._weight_source = None
        self._weight_source_resolved = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._processes)

    def start(self) -> "ServingEngine":
        """Spawn the worker processes (idempotent)."""
        if self.running:
            return self
        method = self.options.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._context = multiprocessing.get_context(method)
        self._task_queue = self._context.Queue()
        self._result_queue = self._context.Queue()
        self._stop = self._context.Event()
        self._processes = [
            self._context.Process(
                target=serve_worker,
                args=(self._task_queue, self._result_queue, self.options,
                      self._stop),
                daemon=True,
            )
            for _ in range(self.workers)
        ]
        for process in self._processes:
            process.start()
        return self

    def shutdown(self) -> None:
        """Stop the workers (idempotent).

        In-flight jobs are abandoned: the stop event makes each worker
        exit at its next task (draining the queue from the parent
        would race the feeder thread, so workers check the event
        themselves instead of detecting work nobody will read), and
        any job still pending is marked failed — a later
        ``stream()``/``result()`` on it raises instead of waiting on
        queues that no longer exist.
        """
        if not self.running:
            return
        self._stop.set()
        for _ in self._processes:
            self._task_queue.put(None)
        for process in self._processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join()
        for job in self._jobs.values():
            if not job.done:
                job._errors.append("engine shut down with the job pending")
                job._pending_units = 0
        self._jobs.clear()
        self._processes = []
        self._task_queue = self._result_queue = None
        self._stop = self._context = None

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------------

    def keys(self) -> list[Key]:
        """The full corpus (restricted by the options' suites)."""
        return planned_keys(self.options)

    def submit(
        self,
        keys: Sequence[Key] | None = None,
        weights: "CorpusReport | Callable | None" = None,
    ) -> ServingJob:
        """Enqueue a request; returns immediately.

        Units are planned and cost-ordered exactly as in batch mode
        (granularity, measured weights) and fed to the shared task
        queue heaviest-first, so the pool drains them LPT-style —
        whichever worker frees up takes the next-heaviest unit.
        """
        if not self.running:
            self.start()
        keys = list(keys) if keys is not None else self.keys()
        options = self.options
        units = plan_units(keys, options.granularity,
                           options.split_threshold)
        if weights is not None:
            weight = resolve_weight_source(options, weights)
        else:
            if not self._weight_source_resolved:
                self._weight_source = resolve_weight_source(options)
                self._weight_source_resolved = True
            weight = self._weight_source
        # LPT service order: heaviest unit first.  With a shared task
        # queue the *workers* balance load dynamically — whichever
        # frees up takes the next-heaviest unit — so the weight source
        # only decides service order.
        ordered = lpt_order(units, weight)
        job = ServingJob(self, next(self._job_ids), keys, len(units))
        self._jobs[job.job_id] = job
        for unit in ordered:
            job._expect(unit)
        for unit in ordered:
            self._task_queue.put((job.job_id, unit))
        return job

    def serve(
        self,
        keys: Sequence[Key] | None = None,
        weights: "CorpusReport | Callable | None" = None,
    ) -> CorpusReport:
        """Submit and wait: the synchronous convenience wrapper."""
        return self.submit(keys, weights=weights).result()

    # -- result routing ------------------------------------------------------

    def _pump(self) -> None:
        """Route one result from the shared queue to its job.

        Polls with a timeout so a crashed worker raises instead of
        hanging the consumer forever: a unit handed to a worker that
        died produces no result.  The engine does not track which
        worker took which unit, so a dead worker is only treated as
        fatal after a grace period with no results at all — a live
        worker grinding through a heavy unit must not abort the job
        just because an idle sibling was killed.  (A dead worker's
        already-queued results are delivered first — the queue drains
        before any timeout expires.)
        """
        silent_polls = 0
        while True:
            try:
                job_id, payload, error = self._result_queue.get(timeout=5.0)
                break
            except queue.Empty:
                silent_polls += 1
                dead = not all(p.is_alive() for p in self._processes)
                if dead and silent_polls >= 6:
                    raise RuntimeError(
                        "a serving worker died and no results arrived "
                        "for 30s; outstanding units may be lost"
                    ) from None
        job = self._jobs.get(job_id)
        if job is None:  # pragma: no cover - abandoned job
            return
        if error is not None:
            job._fail(payload, error)
        else:
            job._deliver(payload)
        if job.done:
            self._jobs.pop(job_id, None)
