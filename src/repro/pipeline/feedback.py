"""The persistent solver feedback store.

PR 3 made ``suggest_order`` cost-aware: given the
:class:`~repro.constraints.SolverStats` of previous runs of a spec, it
follows the cheapest *measured* continuation at every step and is never
worse than the order that produced the feedback.  What it lacked was
supply: the statistics were recomputed from scratch every run and
thrown away.  This module closes that loop — the same
redundancy-elimination instinct the paper applies to constraint
evaluation (and CoreDiag applies to constraint *sets*), applied to the
search order itself:

* every work unit of a pipeline run records **per-spec** solver
  statistics (``UnitDigest.spec_stats``, merged order-canonically
  through :func:`~repro.pipeline.digest.assemble_program`);
* :func:`feedback_from_report` aggregates them corpus-wide into a
  :class:`FeedbackStore` — one merged :class:`SolverStats` per spec
  name;
* :func:`save_feedback` / :func:`load_feedback` persist the store as a
  **versioned JSON artifact beside the report**, with an embedded
  fingerprint verified on load (the ``save_report`` pattern: a
  corrupted or hand-edited artifact fails loudly);
* :meth:`FeedbackStore.spec_orders` turns the store back into label
  enumeration orders via :func:`~repro.constraints.suggest_order`,
  which ``detect`` / ``corpus`` / ``serve`` apply to every registered
  idiom (``--feedback-from``), and which a long-running
  :class:`~repro.pipeline.serving.ServingEngine` re-derives as jobs
  complete so serving sessions self-tune (``--self-tune``).

Replay alone can never *beat* the best observed order, so the store
also supports bounded, deterministic **exploration**
(:class:`ExplorationPolicy`): on a hash-sampled fraction of functions,
one spec's enumeration order gets a single adjacent transposition in
its suffix, and the measured outcome is recorded as a per-order
observation (:class:`OrderObs`, keyed ``(spec, order, shape
bucket)``).  :meth:`FeedbackStore.order_for` then keeps the winner —
a candidate order is adopted only when its measured cost per function
is *strictly* below the incumbent's, compared within the function
shape buckets both orders were observed in.  Retention comes from
:meth:`FeedbackStore.decay` / :meth:`FeedbackStore.window`, so a
drifted workload re-learns instead of being outvoted by stale history.

Determinism is the load-bearing property: :meth:`SolverStats.merge
<repro.constraints.SolverStats.merge>` is commutative and associative,
per-function statistics are independent of sharding (each function has
its own solver context), exploration decisions are pure functions of
``(seed, suite, program, function)``, and serialization orders every
key — so ``jobs=1`` and ``jobs=N`` (fork and spawn) produce
**byte-identical** feedback artifacts, explored runs included, and
runs consuming the same artifact produce fingerprint-identical
reports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from ..constraints import IdiomSpec, SolverStats, suggest_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..idioms.registry import IdiomRegistry
    from ..idioms.reports import DetectionReport
    from .digest import CorpusReport

#: Artifact schema version; bumped on incompatible changes so an old
#: artifact fails with a clear message instead of a KeyError.
#: Version 2: :class:`SolverStats` grew the compiled-engine counters
#: (``conjuncts_pruned``, ``evals_pruned``, ``trie_reuses``), which
#: participate in ``canonical()`` and therefore in artifact
#: fingerprints.
#: Version 3: per-order observations (``orders`` rows recorded by
#: exploration runs).  Backward compatible: version-2 artifacts still
#: load (see :data:`FEEDBACK_COMPATIBLE_VERSIONS`), and a store with
#: no order observations keeps the exact version-2 canonical form, so
#: its fingerprint — embedded in old artifacts — still verifies.
FEEDBACK_VERSION = 3

#: Artifact versions :func:`load_feedback` accepts.
FEEDBACK_COMPATIBLE_VERSIONS = (2, 3)

#: Canonical wire form of a spec-orders mapping: name-sorted
#: ``(name, (label, ...))`` pairs.  Hashable, picklable, and usable as
#: a worker-side registry-cache key.
SpecOrders = tuple  # tuple[tuple[str, tuple[str, ...]], ...]


def canonical_orders(
    orders: "Mapping[str, Iterable[str]] | SpecOrders | None",
) -> SpecOrders | None:
    """``orders`` as the canonical tuple form (None when empty)."""
    if not orders:
        return None
    items = orders.items() if isinstance(orders, Mapping) else orders
    return tuple(sorted(
        (str(name), tuple(order)) for name, order in items
    )) or None


# -- function shape buckets ---------------------------------------------------

#: Upper bounds (exclusive) of the instruction-count buckets; sizes at
#: or above the last bound share the final bucket.
_SIZE_BUCKETS = (40, 160, 640)

#: Loop-nest depths at or above this share the final depth bucket.
_MAX_DEPTH_BUCKET = 3


def shape_bucket(function) -> str:
    """The shape-conditioning key of one IR function, e.g. ``"d2s1"``.

    One global order is a compromise across function shapes: the best
    enumeration order for a flat 20-instruction kernel is not
    necessarily best for a triply-nested 1000-instruction one.  Order
    observations are therefore keyed by a coarse, **pure** function of
    the IR — maximum loop-nest depth (``d``) and instruction count
    (``s``), both bucketed — so the store can tell the regimes apart
    without fragmenting its measurements into per-function noise.

    Deterministic by construction: depends only on the function's
    blocks and loops, never on search state or timing.
    """
    from ..analysis.loops import LoopInfo

    loops = LoopInfo(function)
    depth = max((loop.depth for loop in loops.loops), default=0)
    size = sum(len(block.instructions) for block in function.blocks)
    size_bucket = len(_SIZE_BUCKETS)
    for i, bound in enumerate(_SIZE_BUCKETS):
        if size < bound:
            size_bucket = i
            break
    return f"d{min(depth, _MAX_DEPTH_BUCKET)}s{size_bucket}"


# -- per-order observations ---------------------------------------------------


@dataclass
class OrderObs:
    """Measured outcome of running one enumeration order.

    Aggregated per ``(spec name, order, shape bucket)`` key; every
    field is a sum, so merging is commutative and associative exactly
    like :meth:`SolverStats.merge` — the property that keeps explored
    artifacts byte-identical across sharding shapes.

    Observations are **paired**: an explored function runs under both
    the incumbent order and the candidate, so ``baseline_evals`` is
    the incumbent's cost *on the very same functions* this row's
    ``constraint_evals`` was measured on.  The solver is
    deterministic, so the paired difference is exact — no
    cross-function noise from comparing a small candidate sample
    against a corpus-wide mean.  The incumbent's own rows are
    self-paired (``baseline_evals == constraint_evals``).
    """

    functions: int = 0
    constraint_evals: int = 0
    baseline_evals: int = 0
    solutions: int = 0
    assignments_tried: int = 0
    partial_rejections: int = 0

    @classmethod
    def from_stats(
        cls, stats: SolverStats, baseline: SolverStats | None = None,
    ) -> "OrderObs":
        """One function's observation, lifted from its solver stats.

        ``baseline`` is the incumbent order's stats for the *same*
        function (the pairing); omitted for the incumbent's own row,
        which pairs with itself.
        """
        paired = stats if baseline is None else baseline
        return cls(
            functions=1,
            constraint_evals=stats.constraint_evals,
            baseline_evals=paired.constraint_evals,
            solutions=stats.solutions,
            assignments_tried=stats.assignments_tried,
            partial_rejections=stats.partial_rejections,
        )

    def merge(self, other: "OrderObs") -> "OrderObs":
        """Accumulate ``other`` into this one (in place; returns self)."""
        self.functions += other.functions
        self.constraint_evals += other.constraint_evals
        self.baseline_evals += other.baseline_evals
        self.solutions += other.solutions
        self.assignments_tried += other.assignments_tried
        self.partial_rejections += other.partial_rejections
        return self

    def copy(self) -> "OrderObs":
        return OrderObs().merge(self)

    def decay(self, keep: float) -> "OrderObs":
        """Scale every counter to ``keep`` of its value (floored)."""
        if keep == 1.0:
            return self
        self.functions = int(self.functions * keep)
        self.constraint_evals = int(self.constraint_evals * keep)
        self.baseline_evals = int(self.baseline_evals * keep)
        self.solutions = int(self.solutions * keep)
        self.assignments_tried = int(self.assignments_tried * keep)
        self.partial_rejections = int(self.partial_rejections * keep)
        return self

    def canonical(self) -> tuple:
        return (
            self.functions,
            self.constraint_evals,
            self.baseline_evals,
            self.solutions,
            self.assignments_tried,
            self.partial_rejections,
        )

    def mean_evals(self) -> float:
        """Measured constraint evaluations per observed function."""
        return self.constraint_evals / self.functions

    def saving(self) -> int:
        """Paired eval saving vs the incumbent (positive = cheaper)."""
        return self.baseline_evals - self.constraint_evals


#: A per-order observation key: ``(spec name, order, shape bucket)``.
OrderKey = tuple  # tuple[str, tuple[str, ...], str]


def merge_order_obs(target: dict, source: Mapping) -> dict:
    """Fold ``source``'s per-order observations into ``target``.

    Both map :data:`OrderKey` to :class:`OrderObs`; target entries are
    fresh copies, so feeding an accumulator never aliases a digest's
    live objects.  Order-canonical (sums only).  Returns ``target``.
    """
    for key, obs in source.items():
        target.setdefault(key, OrderObs()).merge(obs)
    return target


# -- deterministic exploration ------------------------------------------------


@dataclass(frozen=True)
class ExplorationPolicy:
    """Bounded, deterministic ε-greedy order exploration.

    On an ``epsilon`` fraction of functions the pipeline *explores*:
    exactly one registered spec's enumeration order receives a single
    adjacent transposition inside its perturbable suffix, and the
    function runs (and is measured) under that candidate order.  All
    other functions *exploit* the incumbent orders unchanged.

    Every decision — whether a function explores, which spec is
    perturbed, and at which position — is a pure function of
    ``(seed, suite, program, function)`` via SHA-256, never of a
    process-local RNG.  Consequences:

    * ``jobs=1`` and ``jobs=N`` (fork or spawn) sample the *same*
      functions with the *same* perturbations, so explored runs stay
      byte-reproducible end to end;
    * program and function granularity agree too, because the unit of
      decision is the function, not the work unit;
    * re-running with the same seed reproduces the run exactly, while
      a new seed explores a fresh deterministic sample.

    The perturbation is deliberately minimal — one adjacent swap,
    never touching a spec's fixed prefix (an ``extends`` spec keeps
    its base's order; a base spec keeps its anchor label first).  A
    candidate order is therefore always a valid permutation, solutions
    are unchanged by construction, and the worst case costs one
    function a mildly worse search, bounded by ε.
    """

    epsilon: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(
                f"epsilon must be within [0, 1], got {self.epsilon}"
            )

    def _digest(self, suite: str, program: str, function: str) -> bytes:
        return hashlib.sha256(
            f"{self.seed}|{suite}|{program}|{function}".encode()
        ).digest()

    def explores(self, suite: str, program: str, function: str) -> bool:
        """Whether this function falls in the explored sample."""
        if self.epsilon <= 0.0:
            return False
        digest = self._digest(suite, program, function)
        draw = int.from_bytes(digest[:8], "big") / 2 ** 64
        return draw < self.epsilon

    @staticmethod
    def _suffix_start(spec: IdiomSpec) -> int:
        """First perturbable position of ``spec``'s order.

        The prefix before it is pinned: an ``extends`` spec must keep
        its base's order verbatim for prefix replay, and a standalone
        spec keeps its first label (the anchor every proposal chain
        grows from) so a single swap can never produce a
        catastrophically inverted order.
        """
        if spec.base is not None:
            return len(spec.base.label_order)
        return 1

    def perturbed_orders(
        self, registry: "IdiomRegistry",
        suite: str, program: str, function: str,
    ) -> dict[str, tuple[str, ...]] | None:
        """The full orders mapping for one explored function, or None.

        None means *exploit* (the function is outside the sample, or
        no registered spec has a perturbable suffix).  Otherwise the
        mapping carries every registered spec's current order with
        exactly one spec transposed — ready for
        :meth:`~repro.idioms.registry.IdiomRegistry.apply_orders`,
        which also re-prefixes any spec extending a perturbed base.
        """
        if not self.explores(suite, program, function):
            return None
        eligible = []
        for entry in sorted(registry, key=lambda e: e.name):
            start = self._suffix_start(entry.spec)
            if len(entry.spec.label_order) - start >= 2:
                eligible.append((entry.name, entry.spec, start))
        if not eligible:
            return None
        digest = self._digest(suite, program, function)
        name, spec, start = eligible[
            int.from_bytes(digest[8:16], "big") % len(eligible)
        ]
        span = len(spec.label_order) - start - 1
        position = start + int.from_bytes(digest[16:24], "big") % span
        order = list(spec.label_order)
        order[position], order[position + 1] = (
            order[position + 1], order[position]
        )
        orders = registry.current_orders()
        orders[name] = tuple(order)
        return orders


class FeedbackStore:
    """Corpus-wide solver feedback: one merged stats object per spec,
    plus the per-order observations exploration runs record."""

    def __init__(
        self, specs: Mapping[str, SolverStats] | None = None,
        orders: Mapping | None = None,
    ) -> None:
        #: Spec name → merged :class:`SolverStats`.  Stats objects are
        #: owned by the store (merging copies), so feeding a store
        #: never mutates a caller's live counters.
        self.specs: dict[str, SolverStats] = {}
        for name, stats in (specs or {}).items():
            self.merge_stats(name, stats)
        #: ``(spec name, order, shape bucket)`` → :class:`OrderObs`,
        #: the measured outcomes of every enumeration order the store
        #: has seen run — exploration's raw material.  Empty unless a
        #: run recorded with ``explore > 0``.
        self.orders: dict[OrderKey, OrderObs] = {}
        merge_order_obs(self.orders, orders or {})
        self._fingerprint: str | None = None

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs) or bool(self.orders)

    # -- accumulation -----------------------------------------------------

    def merge_stats(self, name: str, stats: SolverStats) -> "FeedbackStore":
        """Fold one spec's recorded statistics into the store."""
        self.specs.setdefault(name, SolverStats()).merge(stats)
        self._fingerprint = None
        return self

    def merge_order_obs(self, key: OrderKey, obs: OrderObs) -> "FeedbackStore":
        """Fold one per-order observation into the store."""
        key = (str(key[0]), tuple(key[1]), str(key[2]))
        self.orders.setdefault(key, OrderObs()).merge(obs)
        self._fingerprint = None
        return self

    def merge(self, other: "FeedbackStore") -> "FeedbackStore":
        """Fold another store into this one (in place; returns self)."""
        for name, stats in other.specs.items():
            self.merge_stats(name, stats)
        for key, obs in other.orders.items():
            self.merge_order_obs(key, obs)
        return self

    def copy(self) -> "FeedbackStore":
        """An independent deep copy."""
        return FeedbackStore(self.specs, self.orders)

    # -- retention --------------------------------------------------------

    def decay(self, keep: float) -> "FeedbackStore":
        """Scale every recorded counter to ``keep`` of its value.

        The lifecycle primitive behind ``repro feedback decay`` and
        :meth:`window`: old measurements fade instead of accumulating
        forever, so a drifted workload re-learns.  Counters floor to
        integers; spec entries that decay to nothing and order rows
        whose function count reaches zero are dropped (an empty row
        has no usable mean).  In place; returns ``self``.
        """
        if not 0.0 <= keep <= 1.0:
            raise ValueError(f"keep must be within [0, 1], got {keep}")
        if keep == 1.0:
            return self
        empty = SolverStats().canonical()
        self.specs = {
            name: stats for name, stats in self.specs.items()
            if stats.decay(keep).canonical() != empty
        }
        self.orders = {
            key: obs for key, obs in self.orders.items()
            if obs.decay(keep).functions > 0
        }
        self._fingerprint = None
        return self

    def window(self, fresh: "FeedbackStore",
               keep: float = 0.5) -> "FeedbackStore":
        """Exponentially-windowed retention: decay, then merge.

        ``store.window(run, keep=0.5)`` halves the weight of history
        and folds in the newest run's measurements, so after ``k``
        windows an observation ``k`` runs old carries ``keep**k`` of
        its original weight.  Applied to the *merged* store (decay is
        integer-floored and therefore not distributive over merge), so
        the result is independent of how the history was sharded.
        In place; returns ``self``.
        """
        return self.decay(keep).merge(fresh)

    # -- identity ---------------------------------------------------------

    def canonical(self) -> tuple:
        """Content as nested plain tuples, deterministically ordered.

        A store with no per-order observations keeps the exact
        version-2 form — the backward-compatibility hinge: a version-2
        artifact's embedded fingerprint still verifies after this
        build rebuilds the store.
        """
        specs = tuple(sorted(
            (name, stats.canonical()) for name, stats in self.specs.items()
        ))
        if not self.orders:
            return specs
        observations = tuple(sorted(
            (name, order, bucket, obs.canonical())
            for (name, order, bucket), obs in self.orders.items()
        ))
        return specs + (("orders", observations),)

    def fingerprint(self) -> str:
        """A stable SHA-256 of the store's content.

        Embedded in the artifact and verified by :func:`load_feedback`;
        also the :func:`~repro.constraints.suggest_order` cache token,
        so derived orders are memoized per store *state* (the cached
        value is invalidated whenever the store accumulates).
        """
        if self._fingerprint is None:
            self._fingerprint = hashlib.sha256(
                repr(self.canonical()).encode()
            ).hexdigest()
        return self._fingerprint

    # -- consumption ------------------------------------------------------

    def stats_for(self, name: str) -> SolverStats | None:
        return self.specs.get(name)

    def measured_orders(self, name: str) -> dict:
        """``{order: {bucket: OrderObs}}`` for one spec name."""
        measured: dict[tuple, dict[str, OrderObs]] = {}
        for (spec, order, bucket), obs in self.orders.items():
            if spec == name:
                measured.setdefault(order, {})[bucket] = obs
        return measured

    def order_for(self, spec: IdiomSpec) -> tuple[str, ...] | None:
        """The feedback-suggested enumeration order for ``spec``.

        None when the store holds no measurements for the spec — an
        unmeasured spec keeps its authored (curated) order rather than
        falling back to the static heuristic, so consuming a store can
        never degrade specs it knows nothing about.

        Two layers, and the strongest evidence available decides:

        1. **replay** — cost-aware :func:`~repro.constraints.
           suggest_order` over the spec's merged prefix-conditioned
           statistics (never worse than the observed order).  Used
           only when the store holds *no* per-order measurements for
           the spec: an exploration run samples functions into
           different orders, so its prefix statistics cover a biased
           subset and replaying them would steer by candidate counts
           — a proxy — when real eval counts are on file.
        2. **winner** — if exploration recorded per-order
           observations, a candidate order replaces the incumbent
           (the spec's current order) only on *paired* evidence:
           every explored function ran under both orders, so each
           candidate row carries the incumbent's exact cost on the
           same functions (:attr:`OrderObs.baseline_evals`).  The
           candidate must be no worse in **every** shape bucket it
           was observed in and strictly cheaper in total — a Pareto
           rule over paired, noise-free measurements.  Among multiple
           winners the largest total paired saving is kept, ties
           breaking lexicographically, so the derive is
           deterministic.

        A spec with a :attr:`~repro.constraints.IdiomSpec.base` is
        reordered with the base's label order as a fixed prefix: under
        prefix replay the search never enumerates base labels
        individually (their measured statistics all start at the
        fully-bound base set), and keeping the prefix verbatim is what
        keeps the replay available after the reorder.
        """
        measured = self.measured_orders(spec.name)
        if not measured:
            stats = self.specs.get(spec.name)
            if stats is None or not stats.candidates_per_prefix:
                return None
            prefix = spec.base.label_order if spec.base is not None else ()
            return suggest_order(
                spec, feedback=stats, prefix=prefix,
                cache_token=self.fingerprint(),
            )
        incumbent = spec.label_order
        labels = sorted(spec.label_order)
        best: tuple[int, tuple[str, ...]] | None = None
        for order, buckets in sorted(measured.items()):
            if order == incumbent or sorted(order) != labels:
                continue
            # Adopt only on *consistent* paired evidence: within every
            # shape bucket the candidate was observed in, it must cost
            # no more than the incumbent did on the very same
            # functions — and strictly less in total.  A bucket where
            # the candidate loses vetoes adoption even if other
            # buckets' savings would outvote it (functions of
            # different shapes are not interchangeable).
            if any(obs.saving() < 0 for obs in buckets.values()):
                continue
            total_saving = sum(obs.saving() for obs in buckets.values())
            if total_saving <= 0:
                continue
            if best is None or (-total_saving, order) < best:
                best = (-total_saving, order)
        return best[1] if best is not None else incumbent

    def spec_orders(self, registry: "IdiomRegistry") -> dict[str, tuple[str, ...]]:
        """Suggested orders for every measured idiom in ``registry``.

        Only *changed* orders are returned — a spec whose feedback
        reproduces its current order exactly (the common case when the
        feedback was recorded from runs of that very order) needs no
        rebuild, so the mapping a warm run ships to its workers is
        usually empty.
        """
        orders: dict[str, tuple[str, ...]] = {}
        for entry in registry:
            order = self.order_for(entry.spec)
            if order is not None and order != entry.spec.label_order:
                orders[entry.name] = order
        return orders

    # -- persistence ------------------------------------------------------

    def to_jsonable(self) -> dict:
        """The versioned artifact as JSON-serializable plain data."""
        data = {
            "version": FEEDBACK_VERSION,
            "fingerprint": self.fingerprint(),
            "specs": {
                name: self.specs[name].to_jsonable()
                for name in sorted(self.specs)
            },
        }
        if self.orders:
            data["orders"] = [
                [name, list(order), bucket,
                 obs.functions, obs.constraint_evals, obs.baseline_evals,
                 obs.solutions, obs.assignments_tried,
                 obs.partial_rejections]
                for (name, order, bucket), obs in sorted(
                    self.orders.items()
                )
            ]
        return data

    @classmethod
    def from_jsonable(cls, data: dict) -> "FeedbackStore":
        """Rebuild a store; verifies version and fingerprint.

        Every malformation — wrong top-level type, wrong version,
        non-object spec entries, garbage inside a stats record — fails
        with :class:`ValueError`, the one exception type the CLI's
        artifact error path handles.
        """
        if not isinstance(data, dict):
            raise ValueError(
                "feedback artifact must be a JSON object"
            )
        version = data.get("version")
        if version not in FEEDBACK_COMPATIBLE_VERSIONS:
            raise ValueError(
                f"feedback artifact version {version!r} is not supported "
                f"(expected one of "
                f"{', '.join(map(str, FEEDBACK_COMPATIBLE_VERSIONS))})"
            )
        specs = data.get("specs", {})
        if not isinstance(specs, dict) or not all(
            isinstance(stats, dict) for stats in specs.values()
        ):
            raise ValueError(
                "feedback artifact 'specs' must map names to objects"
            )
        try:
            store = cls({
                name: SolverStats.from_jsonable(stats)
                for name, stats in specs.items()
            })
        except (TypeError, AttributeError, KeyError) as exc:
            raise ValueError(
                f"feedback artifact holds malformed statistics: {exc}"
            ) from exc
        rows = data.get("orders", [])
        try:
            for name, order, bucket, *counters in rows:
                (functions, evals, baseline,
                 solutions, tried, rejections) = counters
                store.merge_order_obs(
                    (name, tuple(order), bucket),
                    OrderObs(
                        functions=functions, constraint_evals=evals,
                        baseline_evals=baseline,
                        solutions=solutions, assignments_tried=tried,
                        partial_rejections=rejections,
                    ),
                )
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"feedback artifact holds malformed order "
                f"observations: {exc}"
            ) from exc
        # The field is required, not optional: save_feedback always
        # writes it, so its absence is tampering too — deleting the
        # mismatching fingerprint must not bypass verification.
        recorded = data.get("fingerprint")
        if recorded is None:
            raise ValueError(
                "feedback artifact is missing its fingerprint"
            )
        if recorded != store.fingerprint():
            raise ValueError(
                "feedback artifact fingerprint does not match its contents"
            )
        return store

    def describe(self) -> str:
        """One-line overview for the CLI."""
        prefixes = sum(
            len(stats.candidates_per_prefix) for stats in self.specs.values()
        )
        explored = ""
        if self.orders:
            distinct = len({
                (name, order) for name, order, _ in self.orders
            })
            explored = (
                f", {distinct} measured order(s) over "
                f"{len(self.orders)} shape row(s)"
            )
        return (
            f"{len(self.specs)} spec(s), {prefixes} measured "
            f"prefix continuation(s){explored} [{self.fingerprint()[:12]}]"
        )


def feedback_from_report(report: "CorpusReport") -> FeedbackStore:
    """Aggregate a pipeline report's per-spec statistics corpus-wide.

    The merge is order-canonical (sums only), so ``jobs=1`` and
    ``jobs=N`` reports of the same run yield stores with identical
    fingerprints — and identical serialized bytes.  Per-order
    observations (recorded by exploration runs) ride along the same
    way.
    """
    store = FeedbackStore()
    for program in report.programs:
        for name, stats in program.spec_stats.items():
            store.merge_stats(name, stats)
        for key, obs in getattr(program, "order_obs", {}).items():
            store.merge_order_obs(key, obs)
    return store


def feedback_from_detection(report: "DetectionReport") -> FeedbackStore:
    """Aggregate one module's detection report (the ``detect`` CLI)."""
    store = FeedbackStore()
    for fr in report.functions:
        for name, stats in (fr.spec_stats or {}).items():
            store.merge_stats(name, stats)
    return store


def save_feedback(store: FeedbackStore, path: str) -> None:
    """Write ``store`` as the versioned JSON artifact.

    ``sort_keys`` plus the store's own deterministic ordering make the
    output a pure function of the store's content: two runs that
    observed the same searches write byte-identical files.
    """
    with open(path, "w") as handle:
        json.dump(store.to_jsonable(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_feedback(path: str) -> FeedbackStore:
    """Read a :func:`save_feedback` artifact (``--feedback-from``).

    Failures carry full context in the :class:`SpecFileError.render`
    style — the artifact path, what was found versus expected, and a
    fix hint — so an operator staring at a broken deployment knows
    *which* file is bad and what to do about it.
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except ValueError as exc:
            raise ValueError(
                f"{path}: error: feedback artifact is not valid JSON "
                f"({exc})\n  hint: re-record it with --save-feedback"
            ) from exc
    try:
        return FeedbackStore.from_jsonable(data)
    except ValueError as exc:
        message = str(exc)
        if "version" in message:
            hint = (
                f"this build reads versions "
                f"{', '.join(map(str, FEEDBACK_COMPATIBLE_VERSIONS))}; "
                f"re-record the artifact with --save-feedback"
            )
        elif "fingerprint" in message:
            hint = (
                "the file changed after it was written; re-record it "
                "with --save-feedback (artifacts are not hand-editable)"
            )
        else:
            hint = "re-record the artifact with --save-feedback"
        raise ValueError(
            f"{path}: error: {message}\n  hint: {hint}"
        ) from exc
