"""The persistent solver feedback store.

PR 3 made ``suggest_order`` cost-aware: given the
:class:`~repro.constraints.SolverStats` of previous runs of a spec, it
follows the cheapest *measured* continuation at every step and is never
worse than the order that produced the feedback.  What it lacked was
supply: the statistics were recomputed from scratch every run and
thrown away.  This module closes that loop — the same
redundancy-elimination instinct the paper applies to constraint
evaluation (and CoreDiag applies to constraint *sets*), applied to the
search order itself:

* every work unit of a pipeline run records **per-spec** solver
  statistics (``UnitDigest.spec_stats``, merged order-canonically
  through :func:`~repro.pipeline.digest.assemble_program`);
* :func:`feedback_from_report` aggregates them corpus-wide into a
  :class:`FeedbackStore` — one merged :class:`SolverStats` per spec
  name;
* :func:`save_feedback` / :func:`load_feedback` persist the store as a
  **versioned JSON artifact beside the report**, with an embedded
  fingerprint verified on load (the ``save_report`` pattern: a
  corrupted or hand-edited artifact fails loudly);
* :meth:`FeedbackStore.spec_orders` turns the store back into label
  enumeration orders via :func:`~repro.constraints.suggest_order`,
  which ``detect`` / ``corpus`` / ``serve`` apply to every registered
  idiom (``--feedback-from``), and which a long-running
  :class:`~repro.pipeline.serving.ServingEngine` re-derives as jobs
  complete so serving sessions self-tune (``--self-tune``).

Determinism is the load-bearing property: :meth:`SolverStats.merge
<repro.constraints.SolverStats.merge>` is commutative and associative,
per-function statistics are independent of sharding (each function has
its own solver context), and serialization orders every key — so
``jobs=1`` and ``jobs=N`` (fork and spawn, program and function
granularity) produce **byte-identical** feedback artifacts, and runs
consuming the same artifact produce fingerprint-identical reports.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Iterable, Mapping

from ..constraints import IdiomSpec, SolverStats, suggest_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..idioms.registry import IdiomRegistry
    from ..idioms.reports import DetectionReport
    from .digest import CorpusReport

#: Artifact schema version; bumped on incompatible changes so an old
#: artifact fails with a clear message instead of a KeyError.
#: Version 2: :class:`SolverStats` grew the compiled-engine counters
#: (``conjuncts_pruned``, ``evals_pruned``, ``trie_reuses``), which
#: participate in ``canonical()`` and therefore in artifact
#: fingerprints.
FEEDBACK_VERSION = 2

#: Canonical wire form of a spec-orders mapping: name-sorted
#: ``(name, (label, ...))`` pairs.  Hashable, picklable, and usable as
#: a worker-side registry-cache key.
SpecOrders = tuple  # tuple[tuple[str, tuple[str, ...]], ...]


def canonical_orders(
    orders: "Mapping[str, Iterable[str]] | SpecOrders | None",
) -> SpecOrders | None:
    """``orders`` as the canonical tuple form (None when empty)."""
    if not orders:
        return None
    items = orders.items() if isinstance(orders, Mapping) else orders
    return tuple(sorted(
        (str(name), tuple(order)) for name, order in items
    )) or None


class FeedbackStore:
    """Corpus-wide solver feedback: one merged stats object per spec."""

    def __init__(
        self, specs: Mapping[str, SolverStats] | None = None
    ) -> None:
        #: Spec name → merged :class:`SolverStats`.  Stats objects are
        #: owned by the store (merging copies), so feeding a store
        #: never mutates a caller's live counters.
        self.specs: dict[str, SolverStats] = {}
        for name, stats in (specs or {}).items():
            self.merge_stats(name, stats)
        self._fingerprint: str | None = None

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- accumulation -----------------------------------------------------

    def merge_stats(self, name: str, stats: SolverStats) -> "FeedbackStore":
        """Fold one spec's recorded statistics into the store."""
        self.specs.setdefault(name, SolverStats()).merge(stats)
        self._fingerprint = None
        return self

    def merge(self, other: "FeedbackStore") -> "FeedbackStore":
        """Fold another store into this one (in place; returns self)."""
        for name, stats in other.specs.items():
            self.merge_stats(name, stats)
        return self

    def copy(self) -> "FeedbackStore":
        """An independent deep copy."""
        return FeedbackStore(self.specs)

    # -- identity ---------------------------------------------------------

    def canonical(self) -> tuple:
        """Content as nested plain tuples, deterministically ordered."""
        return tuple(sorted(
            (name, stats.canonical()) for name, stats in self.specs.items()
        ))

    def fingerprint(self) -> str:
        """A stable SHA-256 of the store's content.

        Embedded in the artifact and verified by :func:`load_feedback`;
        also the :func:`~repro.constraints.suggest_order` cache token,
        so derived orders are memoized per store *state* (the cached
        value is invalidated whenever the store accumulates).
        """
        if self._fingerprint is None:
            self._fingerprint = hashlib.sha256(
                repr(self.canonical()).encode()
            ).hexdigest()
        return self._fingerprint

    # -- consumption ------------------------------------------------------

    def stats_for(self, name: str) -> SolverStats | None:
        return self.specs.get(name)

    def order_for(self, spec: IdiomSpec) -> tuple[str, ...] | None:
        """The feedback-suggested enumeration order for ``spec``.

        None when the store holds no prefix-conditioned measurements
        for the spec — an unmeasured spec keeps its authored (curated)
        order rather than falling back to the static heuristic, so
        consuming a store can never degrade specs it knows nothing
        about.

        A spec with a :attr:`~repro.constraints.IdiomSpec.base` is
        reordered with the base's label order as a fixed prefix: under
        prefix replay the search never enumerates base labels
        individually (their measured statistics all start at the
        fully-bound base set), and keeping the prefix verbatim is what
        keeps the replay available after the reorder.
        """
        stats = self.specs.get(spec.name)
        if stats is None or not stats.candidates_per_prefix:
            return None
        prefix = spec.base.label_order if spec.base is not None else ()
        return suggest_order(
            spec, feedback=stats, prefix=prefix,
            cache_token=self.fingerprint(),
        )

    def spec_orders(self, registry: "IdiomRegistry") -> dict[str, tuple[str, ...]]:
        """Suggested orders for every measured idiom in ``registry``.

        Only *changed* orders are returned — a spec whose feedback
        reproduces its current order exactly (the common case when the
        feedback was recorded from runs of that very order) needs no
        rebuild, so the mapping a warm run ships to its workers is
        usually empty.
        """
        orders: dict[str, tuple[str, ...]] = {}
        for entry in registry:
            order = self.order_for(entry.spec)
            if order is not None and order != entry.spec.label_order:
                orders[entry.name] = order
        return orders

    # -- persistence ------------------------------------------------------

    def to_jsonable(self) -> dict:
        """The versioned artifact as JSON-serializable plain data."""
        return {
            "version": FEEDBACK_VERSION,
            "fingerprint": self.fingerprint(),
            "specs": {
                name: self.specs[name].to_jsonable()
                for name in sorted(self.specs)
            },
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "FeedbackStore":
        """Rebuild a store; verifies version and fingerprint.

        Every malformation — wrong top-level type, wrong version,
        non-object spec entries, garbage inside a stats record — fails
        with :class:`ValueError`, the one exception type the CLI's
        artifact error path handles.
        """
        if not isinstance(data, dict):
            raise ValueError(
                "feedback artifact must be a JSON object"
            )
        version = data.get("version")
        if version != FEEDBACK_VERSION:
            raise ValueError(
                f"feedback artifact version {version!r} is not supported "
                f"(expected {FEEDBACK_VERSION})"
            )
        specs = data.get("specs", {})
        if not isinstance(specs, dict) or not all(
            isinstance(stats, dict) for stats in specs.values()
        ):
            raise ValueError(
                "feedback artifact 'specs' must map names to objects"
            )
        try:
            store = cls({
                name: SolverStats.from_jsonable(stats)
                for name, stats in specs.items()
            })
        except (TypeError, AttributeError, KeyError) as exc:
            raise ValueError(
                f"feedback artifact holds malformed statistics: {exc}"
            ) from exc
        # The field is required, not optional: save_feedback always
        # writes it, so its absence is tampering too — deleting the
        # mismatching fingerprint must not bypass verification.
        recorded = data.get("fingerprint")
        if recorded is None:
            raise ValueError(
                "feedback artifact is missing its fingerprint"
            )
        if recorded != store.fingerprint():
            raise ValueError(
                "feedback artifact fingerprint does not match its contents"
            )
        return store

    def describe(self) -> str:
        """One-line overview for the CLI."""
        prefixes = sum(
            len(stats.candidates_per_prefix) for stats in self.specs.values()
        )
        return (
            f"{len(self.specs)} spec(s), {prefixes} measured "
            f"prefix continuation(s) [{self.fingerprint()[:12]}]"
        )


def feedback_from_report(report: "CorpusReport") -> FeedbackStore:
    """Aggregate a pipeline report's per-spec statistics corpus-wide.

    The merge is order-canonical (sums only), so ``jobs=1`` and
    ``jobs=N`` reports of the same run yield stores with identical
    fingerprints — and identical serialized bytes.
    """
    store = FeedbackStore()
    for program in report.programs:
        for name, stats in program.spec_stats.items():
            store.merge_stats(name, stats)
    return store


def feedback_from_detection(report: "DetectionReport") -> FeedbackStore:
    """Aggregate one module's detection report (the ``detect`` CLI)."""
    store = FeedbackStore()
    for fr in report.functions:
        for name, stats in (fr.spec_stats or {}).items():
            store.merge_stats(name, stats)
    return store


def save_feedback(store: FeedbackStore, path: str) -> None:
    """Write ``store`` as the versioned JSON artifact.

    ``sort_keys`` plus the store's own deterministic ordering make the
    output a pure function of the store's content: two runs that
    observed the same searches write byte-identical files.
    """
    with open(path, "w") as handle:
        json.dump(store.to_jsonable(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_feedback(path: str) -> FeedbackStore:
    """Read a :func:`save_feedback` artifact (``--feedback-from``)."""
    with open(path) as handle:
        return FeedbackStore.from_jsonable(json.load(handle))
