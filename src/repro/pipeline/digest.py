"""Process-portable detection digests.

A :class:`~repro.idioms.reports.DetectionReport` holds live IR objects
and cannot cross a process boundary (nor be compared between two
processes, where object identities differ).  The pipeline therefore
reduces every report to a **digest**: plain strings and integers that
pickle cheaply and compare structurally — two runs produced the same
reports if and only if their digests (and hence their fingerprints) are
equal.  Timings are carried but excluded from comparison and from the
fingerprint: they are the only fields allowed to differ between a
serial and a sharded run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..idioms.extensions import ExtendedReport, FunctionExtensions
from ..idioms.reports import DetectionReport


@dataclass(frozen=True)
class ScalarDigest:
    """One scalar reduction, by stable names."""

    name: str
    op: str
    input_bases: tuple[str, ...]


@dataclass(frozen=True)
class HistogramDigest:
    """One histogram reduction, by stable names."""

    name: str
    op: str
    idx_affine: bool
    input_bases: tuple[str, ...]
    runtime_checks: tuple[str, ...]


@dataclass(frozen=True)
class ExtensionDigest:
    """One extension-idiom match (dot product / argminmax / nested)."""

    idiom: str
    name: str
    detail: str = ""


@dataclass(frozen=True)
class FunctionDigest:
    """One function's detections plus the search effort they cost."""

    function: str
    scalars: tuple[ScalarDigest, ...]
    histograms: tuple[HistogramDigest, ...]
    constraint_evals: int


@dataclass(frozen=True)
class ProgramDigest:
    """One corpus program's full detection outcome."""

    name: str
    suite: str
    functions: tuple[FunctionDigest, ...]
    extended: tuple[ExtensionDigest, ...] = ()
    #: Baseline model results (None when the stage was not run).
    icc: int | None = None
    polly_scops: int | None = None
    polly_reductions: int | None = None
    #: Wall-clock per pipeline stage — informational only.
    stage_seconds: dict = field(default_factory=dict, compare=False,
                                hash=False)

    @property
    def key(self) -> tuple[str, str]:
        return (self.name, self.suite)

    def counts(self) -> tuple[int, int]:
        """(scalar count, histogram count)."""
        return (
            sum(len(f.scalars) for f in self.functions),
            sum(len(f.histograms) for f in self.functions),
        )

    @property
    def constraint_evals(self) -> int:
        return sum(f.constraint_evals for f in self.functions)


@dataclass(frozen=True)
class CorpusReport:
    """The pipeline's merged, order-canonical result."""

    programs: tuple[ProgramDigest, ...]
    jobs: int = 1
    #: End-to-end wall clock of the pipeline run — informational.
    wall_seconds: float = field(default=0.0, compare=False, hash=False)

    def counts(self) -> tuple[int, int]:
        """(scalar count, histogram count) over the whole corpus."""
        scalars = sum(p.counts()[0] for p in self.programs)
        histograms = sum(p.counts()[1] for p in self.programs)
        return scalars, histograms

    @property
    def total_constraint_evals(self) -> int:
        return sum(p.constraint_evals for p in self.programs)

    def program(self, name: str, suite: str) -> ProgramDigest:
        for digest in self.programs:
            if digest.key == (name, suite):
                return digest
        raise KeyError(f"no program {name!r} in suite {suite!r}")

    def canonical(self, effort: bool = True) -> tuple:
        """The comparison-relevant content as nested plain tuples.

        ``effort=False`` drops the search-effort counters, leaving only
        the detections — the form in which a shared-cache run and the
        per-call PR-1 engine must agree (they do the same detections
        with different amounts of work).
        """
        return tuple(
            (
                p.name, p.suite,
                tuple(
                    (f.function, f.scalars, f.histograms)
                    + ((f.constraint_evals,) if effort else ())
                    for f in p.functions
                ),
                p.extended, p.icc, p.polly_scops, p.polly_reductions,
            )
            for p in self.programs
        )

    def fingerprint(self, effort: bool = True) -> str:
        """A stable hash of everything except timings.

        ``jobs=1`` and ``jobs=N`` runs of the same options must agree
        on this byte-for-byte — the pipeline's determinism contract.
        ``effort=False`` hashes detections only (see :meth:`canonical`).
        """
        return hashlib.sha256(
            repr(self.canonical(effort=effort)).encode()
        ).hexdigest()

    def summary(self) -> str:
        """One-line overview used by the CLI and the benchmark."""
        scalars, histograms = self.counts()
        extended = sum(len(p.extended) for p in self.programs)
        extra = f", {extended} extension match(es)" if extended else ""
        return (
            f"{len(self.programs)} program(s): {scalars} scalar, "
            f"{histograms} histogram reduction(s){extra} "
            f"[jobs={self.jobs}, {self.total_constraint_evals} evals, "
            f"{self.wall_seconds * 1000:.0f} ms]"
        )


def digest_report(report: DetectionReport) -> tuple[FunctionDigest, ...]:
    """Reduce a live detection report to its digests."""
    functions = []
    for fr in report.functions:
        functions.append(
            FunctionDigest(
                function=fr.function.name,
                scalars=tuple(
                    ScalarDigest(
                        name=s.name,
                        op=s.op.value,
                        input_bases=tuple(
                            b.short_name() for b in s.input_bases
                        ),
                    )
                    for s in fr.scalars
                ),
                histograms=tuple(
                    HistogramDigest(
                        name=h.name,
                        op=h.op.value,
                        idx_affine=h.idx_affine,
                        input_bases=tuple(
                            b.short_name() for b in h.input_bases
                        ),
                        runtime_checks=tuple(
                            c.describe() for c in h.runtime_checks
                        ),
                    )
                    for h in fr.histograms
                ),
                constraint_evals=(
                    fr.stats.constraint_evals if fr.stats is not None else 0
                ),
            )
        )
    return tuple(functions)


def digest_extensions(
    report: ExtendedReport | FunctionExtensions,
) -> tuple[ExtensionDigest, ...]:
    """Reduce extension-idiom matches to their digests."""
    return (
        tuple(
            ExtensionDigest("dot-product", m.name)
            for m in report.dot_products
        )
        + tuple(
            ExtensionDigest("argminmax", m.name, detail=m.kind)
            for m in report.argminmax
        )
        + tuple(
            ExtensionDigest("nested-array-reduction", m.name,
                            detail=m.op.value)
            for m in report.nested_array
        )
    )
