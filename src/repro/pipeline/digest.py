"""Process-portable detection digests.

A :class:`~repro.idioms.reports.DetectionReport` holds live IR objects
and cannot cross a process boundary (nor be compared between two
processes, where object identities differ).  The pipeline therefore
reduces every report to a **digest**: plain strings and integers that
pickle cheaply and compare structurally — two runs produced the same
reports if and only if their digests (and hence their fingerprints) are
equal.  Timings are carried but excluded from comparison and from the
fingerprint: they are the only fields allowed to differ between a
serial and a sharded run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..constraints import SolverStats
from ..idioms.extensions import ExtendedReport, FunctionExtensions
from ..idioms.reports import DetectionReport


@dataclass(frozen=True)
class ScalarDigest:
    """One scalar reduction, by stable names."""

    name: str
    op: str
    input_bases: tuple[str, ...]


@dataclass(frozen=True)
class HistogramDigest:
    """One histogram reduction, by stable names."""

    name: str
    op: str
    idx_affine: bool
    input_bases: tuple[str, ...]
    runtime_checks: tuple[str, ...]


@dataclass(frozen=True)
class ExtensionDigest:
    """One extension-idiom match (dot product / argminmax / nested)."""

    idiom: str
    name: str
    detail: str = ""


@dataclass(frozen=True)
class FunctionDigest:
    """One function's detections plus the search effort they cost."""

    function: str
    scalars: tuple[ScalarDigest, ...]
    histograms: tuple[HistogramDigest, ...]
    constraint_evals: int


#: How each extension idiom's matches digest, in the canonical
#: grouping order.  This table is the single source of truth for that
#: order: :func:`digest_extensions` concatenates groups by iterating
#: it, and function-granularity assembly stable-sorts by the derived
#: rank — so per-function partial results reproduce the whole-program
#: order byte-for-byte, including for any idiom added here later.
_EXTENSION_BUILDERS = {
    "dot-product": lambda report: tuple(
        ExtensionDigest("dot-product", m.name)
        for m in report.dot_products
    ),
    "argminmax": lambda report: tuple(
        ExtensionDigest("argminmax", m.name, detail=m.kind)
        for m in report.argminmax
    ),
    "nested-array-reduction": lambda report: tuple(
        ExtensionDigest("nested-array-reduction", m.name,
                        detail=m.op.value)
        for m in report.nested_array
    ),
}

_EXTENSION_RANK = {
    idiom: rank for rank, idiom in enumerate(_EXTENSION_BUILDERS)
}


@dataclass(frozen=True)
class UnitDigest:
    """One work unit's partial detection outcome.

    A unit is either a whole program (``function is None``) or a single
    ``(program, function)`` pair — the granularity at which the serving
    engine and function-level sharding ship work.  ``index``/``total``
    locate the unit among the program's defined functions so
    :func:`assemble_program` can re-establish module order and detect
    lost or duplicated units.
    """

    name: str
    suite: str
    function: str | None
    index: int
    total: int
    functions: tuple[FunctionDigest, ...]
    extended: tuple[ExtensionDigest, ...] = ()
    icc: int | None = None
    polly_scops: int | None = None
    polly_reductions: int | None = None
    #: Wall-clock per pipeline stage — informational only.
    stage_seconds: dict = field(default_factory=dict, compare=False,
                                hash=False)
    #: Per-spec solver statistics (spec name →
    #: :class:`~repro.constraints.SolverStats`) — the feedback store's
    #: raw material.  Deterministic per unit (each function has its own
    #: solver context), but ``compare=False`` like the timings: the
    #: fingerprint contract is about *detections and total effort*, and
    #: the feedback artifact has its own fingerprint.
    spec_stats: dict = field(default_factory=dict, compare=False,
                             hash=False)
    #: Per-order observations (``(spec, order, shape bucket)`` →
    #: :class:`~repro.pipeline.feedback.OrderObs`) recorded when the
    #: run explores enumeration orders.  ``compare=False`` like
    #: :attr:`spec_stats`: the report fingerprint is about detections
    #: and total effort, and the feedback artifact carries its own.
    order_obs: dict = field(default_factory=dict, compare=False,
                            hash=False)

    @property
    def key(self) -> tuple[str, str]:
        return (self.name, self.suite)


def merge_unit_order_obs(units) -> dict:
    """Per-order observations summed across digests, into fresh objects
    (order-canonical, exactly like :func:`merge_spec_stats`)."""
    from .feedback import merge_order_obs

    merged: dict = {}
    for unit in units:
        merge_order_obs(merged, unit.order_obs)
    return merged


def merge_spec_stats(units) -> dict:
    """Per-spec stats summed across digests, into fresh objects.

    Order-canonical by construction — :meth:`SolverStats.merge
    <repro.constraints.SolverStats.merge>` only sums — so any arrival
    order of the same units produces an equal mapping.
    """
    merged: dict[str, SolverStats] = {}
    for unit in units:
        for name, stats in unit.spec_stats.items():
            merged.setdefault(name, SolverStats()).merge(stats)
    return merged


def assemble_program(units) -> ProgramDigest:
    """Checked reassembly of one program from its unit digests.

    Units must cover indices ``0..total-1`` exactly once (a whole
    program is the single unit ``0`` of ``1``).  Functions concatenate
    in module order; extension matches are stable-sorted back into the
    idiom grouping a whole-module report produces; per-stage timings
    sum across units (each worker paid its own compile/detect time) —
    they are ``compare=False`` metadata, so the merge cannot perturb
    fingerprints.  Baseline results come from the one unit that ran
    the program-level stages.
    """
    units = sorted(units, key=lambda u: u.index)
    if not units:
        raise ValueError("no units to assemble")
    first = units[0]
    key = first.key
    total = first.total
    if any(u.key != key or u.total != total for u in units):
        raise ValueError(f"mixed units assembled for program {key}")
    indices = [u.index for u in units]
    if indices != list(range(total)) and not (
        len(units) == 1 and first.function is None
    ):
        raise ValueError(
            f"program {key}: unit indices {indices} do not cover "
            f"0..{total - 1} exactly once"
        )
    functions = tuple(f for u in units for f in u.functions)
    extended = tuple(
        sorted(
            (e for u in units for e in u.extended),
            key=lambda e: _EXTENSION_RANK.get(e.idiom, len(_EXTENSION_RANK)),
        )
    )
    baseline_units = [u for u in units if u.icc is not None
                      or u.polly_scops is not None]
    if len(baseline_units) > 1:
        raise ValueError(
            f"program {key}: baselines ran on {len(baseline_units)} units"
        )
    lead = baseline_units[0] if baseline_units else None
    stage_seconds: dict[str, float] = {}
    for unit in units:
        for stage, seconds in unit.stage_seconds.items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
    return ProgramDigest(
        name=first.name,
        suite=first.suite,
        functions=functions,
        extended=extended,
        icc=lead.icc if lead else None,
        polly_scops=lead.polly_scops if lead else None,
        polly_reductions=lead.polly_reductions if lead else None,
        stage_seconds=stage_seconds,
        spec_stats=merge_spec_stats(units),
        order_obs=merge_unit_order_obs(units),
    )


@dataclass(frozen=True)
class ProgramDigest:
    """One corpus program's full detection outcome."""

    name: str
    suite: str
    functions: tuple[FunctionDigest, ...]
    extended: tuple[ExtensionDigest, ...] = ()
    #: Baseline model results (None when the stage was not run).
    icc: int | None = None
    polly_scops: int | None = None
    polly_reductions: int | None = None
    #: Wall-clock per pipeline stage — informational only.
    stage_seconds: dict = field(default_factory=dict, compare=False,
                                hash=False)
    #: Per-spec solver statistics summed over the program's units —
    #: see :attr:`UnitDigest.spec_stats`.  Aggregated corpus-wide by
    #: :func:`~repro.pipeline.feedback.feedback_from_report`.
    spec_stats: dict = field(default_factory=dict, compare=False,
                             hash=False)
    #: Per-order observations summed over the program's units — see
    #: :attr:`UnitDigest.order_obs`.
    order_obs: dict = field(default_factory=dict, compare=False,
                            hash=False)

    @property
    def key(self) -> tuple[str, str]:
        return (self.name, self.suite)

    def counts(self) -> tuple[int, int]:
        """(scalar count, histogram count)."""
        return (
            sum(len(f.scalars) for f in self.functions),
            sum(len(f.histograms) for f in self.functions),
        )

    @property
    def constraint_evals(self) -> int:
        return sum(f.constraint_evals for f in self.functions)


@dataclass(frozen=True)
class UnitFailure:
    """One work unit the serving engine could not complete.

    Recorded on :attr:`CorpusReport.failures` when a unit's worker
    died (and the unit exhausted its resubmission budget) — the
    structured alternative to a hung or aborted job.  ``attempts``
    counts every dispatch, the original included.
    """

    name: str
    suite: str
    function: str | None
    error: str
    attempts: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.name, self.suite)

    def describe(self) -> str:
        return (
            f"{self.suite}/{self.name}/{self.function or '*'}: "
            f"{self.error} (after {self.attempts} attempt(s))"
        )


@dataclass(frozen=True)
class CorpusReport:
    """The pipeline's merged, order-canonical result."""

    programs: tuple[ProgramDigest, ...]
    jobs: int = 1
    #: End-to-end wall clock of the pipeline run — informational.
    wall_seconds: float = field(default=0.0, compare=False, hash=False)
    #: Units the serving engine abandoned after bounded retries.  A
    #: report with failures covers only the programs that completed;
    #: the fingerprint hashes those completions (a partial report can
    #: never collide with the full one — its program set differs).
    failures: tuple[UnitFailure, ...] = ()

    def counts(self) -> tuple[int, int]:
        """(scalar count, histogram count) over the whole corpus."""
        scalars = sum(p.counts()[0] for p in self.programs)
        histograms = sum(p.counts()[1] for p in self.programs)
        return scalars, histograms

    @property
    def total_constraint_evals(self) -> int:
        return sum(p.constraint_evals for p in self.programs)

    def program(self, name: str, suite: str) -> ProgramDigest:
        for digest in self.programs:
            if digest.key == (name, suite):
                return digest
        raise KeyError(f"no program {name!r} in suite {suite!r}")

    def canonical(self, effort: bool = True) -> tuple:
        """The comparison-relevant content as nested plain tuples.

        ``effort=False`` drops the search-effort counters, leaving only
        the detections — the form in which a shared-cache run and the
        per-call PR-1 engine must agree (they do the same detections
        with different amounts of work).
        """
        return tuple(
            (
                p.name, p.suite,
                tuple(
                    (f.function, f.scalars, f.histograms)
                    + ((f.constraint_evals,) if effort else ())
                    for f in p.functions
                ),
                p.extended, p.icc, p.polly_scops, p.polly_reductions,
            )
            for p in self.programs
        )

    def fingerprint(self, effort: bool = True) -> str:
        """A stable hash of everything except timings.

        ``jobs=1`` and ``jobs=N`` runs of the same options must agree
        on this byte-for-byte — the pipeline's determinism contract.
        ``effort=False`` hashes detections only (see :meth:`canonical`).
        """
        return hashlib.sha256(
            repr(self.canonical(effort=effort)).encode()
        ).hexdigest()

    def summary(self) -> str:
        """One-line overview used by the CLI and the benchmark."""
        scalars, histograms = self.counts()
        extended = sum(len(p.extended) for p in self.programs)
        extra = f", {extended} extension match(es)" if extended else ""
        if self.failures:
            extra += f", {len(self.failures)} FAILED unit(s)"
        return (
            f"{len(self.programs)} program(s): {scalars} scalar, "
            f"{histograms} histogram reduction(s){extra} "
            f"[jobs={self.jobs}, {self.total_constraint_evals} evals, "
            f"{self.wall_seconds * 1000:.0f} ms]"
        )


def digest_function(fr) -> FunctionDigest:
    """Reduce one function's live detections to its digest."""
    return FunctionDigest(
        function=fr.function.name,
        scalars=tuple(
            ScalarDigest(
                name=s.name,
                op=s.op.value,
                input_bases=tuple(
                    b.short_name() for b in s.input_bases
                ),
            )
            for s in fr.scalars
        ),
        histograms=tuple(
            HistogramDigest(
                name=h.name,
                op=h.op.value,
                idx_affine=h.idx_affine,
                input_bases=tuple(
                    b.short_name() for b in h.input_bases
                ),
                runtime_checks=tuple(
                    c.describe() for c in h.runtime_checks
                ),
            )
            for h in fr.histograms
        ),
        constraint_evals=(
            fr.stats.constraint_evals if fr.stats is not None else 0
        ),
    )


def digest_report(report: DetectionReport) -> tuple[FunctionDigest, ...]:
    """Reduce a live detection report to its digests."""
    return tuple(digest_function(fr) for fr in report.functions)


def program_to_json(p: ProgramDigest) -> dict:
    """One program digest as JSON-serializable plain data.

    The per-program unit of :func:`report_to_json`, exposed on its own
    because the socket gateway streams individual digests over the
    wire as programs complete — the same encoding in a frame as in a
    saved report, so a client can rebuild either.
    """
    data = {
        "name": p.name,
        "suite": p.suite,
        "functions": [
            {
                "function": f.function,
                "scalars": [
                    {"name": s.name, "op": s.op,
                     "input_bases": list(s.input_bases)}
                    for s in f.scalars
                ],
                "histograms": [
                    {"name": h.name, "op": h.op,
                     "idx_affine": h.idx_affine,
                     "input_bases": list(h.input_bases),
                     "runtime_checks": list(h.runtime_checks)}
                    for h in f.histograms
                ],
                "constraint_evals": f.constraint_evals,
            }
            for f in p.functions
        ],
        "extended": [
            {"idiom": e.idiom, "name": e.name, "detail": e.detail}
            for e in p.extended
        ],
        "icc": p.icc,
        "polly_scops": p.polly_scops,
        "polly_reductions": p.polly_reductions,
        "stage_seconds": dict(p.stage_seconds),
        # Per-spec solver statistics ride along (like the
        # timings, outside the fingerprint) so a saved report
        # remains a valid feedback_from_report source after a
        # load_report round trip.
        "spec_stats": {
            name: p.spec_stats[name].to_jsonable()
            for name in sorted(p.spec_stats)
        },
    }
    if p.order_obs:
        # Only exploration runs record these; the key is omitted when
        # empty so non-exploring report files are byte-unchanged.
        data["order_obs"] = [
            [name, list(order), bucket, *obs.canonical()]
            for (name, order, bucket), obs in sorted(p.order_obs.items())
        ]
    return data


def report_to_json(report: CorpusReport) -> dict:
    """The report as JSON-serializable plain data.

    The inverse of :func:`report_from_json`; round-tripping preserves
    the fingerprint (and the timing metadata the fingerprint excludes),
    which is what lets a previous run's recorded costs feed
    :func:`~repro.pipeline.shard.measured_weights` across process —
    and machine — boundaries.
    """
    return {
        "jobs": report.jobs,
        "wall_seconds": report.wall_seconds,
        "fingerprint": report.fingerprint(),
        "failures": [
            {"name": f.name, "suite": f.suite, "function": f.function,
             "error": f.error, "attempts": f.attempts}
            for f in report.failures
        ],
        "programs": [program_to_json(p) for p in report.programs],
    }


def program_from_json(p: dict) -> ProgramDigest:
    """Rebuild one :class:`ProgramDigest` from :func:`program_to_json`
    data (a saved report entry, or a gateway digest frame)."""
    from .feedback import OrderObs

    return ProgramDigest(
        name=p["name"],
        suite=p["suite"],
        functions=tuple(
            FunctionDigest(
                function=f["function"],
                scalars=tuple(
                    ScalarDigest(
                        name=s["name"], op=s["op"],
                        input_bases=tuple(s["input_bases"]),
                    )
                    for s in f["scalars"]
                ),
                histograms=tuple(
                    HistogramDigest(
                        name=h["name"], op=h["op"],
                        idx_affine=h["idx_affine"],
                        input_bases=tuple(h["input_bases"]),
                        runtime_checks=tuple(h["runtime_checks"]),
                    )
                    for h in f["histograms"]
                ),
                constraint_evals=f["constraint_evals"],
            )
            for f in p["functions"]
        ),
        extended=tuple(
            ExtensionDigest(idiom=e["idiom"], name=e["name"],
                            detail=e.get("detail", ""))
            for e in p["extended"]
        ),
        icc=p["icc"],
        polly_scops=p["polly_scops"],
        polly_reductions=p["polly_reductions"],
        stage_seconds=dict(p.get("stage_seconds", {})),
        spec_stats={
            name: SolverStats.from_jsonable(stats)
            for name, stats in p.get("spec_stats", {}).items()
        },
        order_obs={
            (name, tuple(order), bucket): OrderObs(
                functions=functions, constraint_evals=evals,
                baseline_evals=baseline,
                solutions=solutions, assignments_tried=tried,
                partial_rejections=rejections,
            )
            for name, order, bucket, functions, evals, baseline,
            solutions, tried, rejections in p.get("order_obs", [])
        },
    )


def report_from_json(data: dict) -> CorpusReport:
    """Rebuild a :class:`CorpusReport` from :func:`report_to_json` data.

    The recorded fingerprint, when present, is verified against the
    rebuilt report — a corrupted or hand-edited costs file fails loudly
    instead of silently mis-weighting shards.
    """
    programs = tuple(program_from_json(p) for p in data["programs"])
    report = CorpusReport(
        programs=programs,
        jobs=data.get("jobs", 1),
        wall_seconds=data.get("wall_seconds", 0.0),
        failures=tuple(
            UnitFailure(name=f["name"], suite=f["suite"],
                        function=f["function"], error=f["error"],
                        attempts=f["attempts"])
            for f in data.get("failures", ())
        ),
    )
    recorded = data.get("fingerprint")
    if recorded is not None and recorded != report.fingerprint():
        raise ValueError(
            "report JSON fingerprint does not match its contents"
        )
    return report


def load_report(path: str) -> CorpusReport:
    """Read a :func:`report_to_json` file (``--weights-from``)."""
    import json

    with open(path) as handle:
        return report_from_json(json.load(handle))


def save_report(report: CorpusReport, path: str) -> None:
    """Write ``report`` as JSON for later :func:`load_report` use."""
    import json

    with open(path, "w") as handle:
        json.dump(report_to_json(report), handle, indent=2)
        handle.write("\n")


def digest_extensions(
    report: ExtendedReport | FunctionExtensions,
) -> tuple[ExtensionDigest, ...]:
    """Reduce extension-idiom matches to their digests, grouped in the
    canonical ``_EXTENSION_BUILDERS`` order."""
    return tuple(
        digest
        for build in _EXTENSION_BUILDERS.values()
        for digest in build(report)
    )
